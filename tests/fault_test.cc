#include <algorithm>

#include <gtest/gtest.h>

#include "fault/rfid_cleaning.h"
#include "fault/timestamp_repair.h"
#include "fault/value_repair.h"
#include "sim/noise.h"
#include "sim/rfid.h"
#include "sim/sensor_field.h"

namespace sidq {
namespace fault {
namespace {

using geometry::BBox;
using geometry::Point;

// ------------------------------------------------------------ RFID fixture

struct RfidScenario {
  sim::RfidDeployment deployment = sim::RfidDeployment::Corridor(12);
  SymbolicTrajectory truth;
  SymbolicTrajectory dirty;
};

RfidScenario MakeScenario(double fn_rate, double fp_rate, uint64_t seed) {
  RfidScenario s;
  Rng rng(seed);
  s.truth = s.deployment.SimulateWalk(1, 40, 4, 1000, &rng);
  s.dirty = s.deployment.Degrade(s.truth, fn_rate, fp_rate, &rng);
  return s;
}

// Fraction of truth ticks that have an *explicit* matching reading in
// `observed` -- the strict per-tick view, under which dropped reads count
// as wrong (TickAccuracy's carry-forward view masks them).
double StrictTickAccuracy(const SymbolicTrajectory& observed,
                          const SymbolicTrajectory& truth) {
  size_t correct = 0;
  for (const SymbolicReading& tr : truth.readings()) {
    for (const SymbolicReading& orr : observed.readings()) {
      if (orr.t == tr.t && orr.region == tr.region) {
        ++correct;
        break;
      }
    }
  }
  return truth.empty() ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(truth.size());
}

TEST(SmoothingWindowTest, RepairsFalseNegatives) {
  const RfidScenario s = MakeScenario(0.3, 0.0, 1);
  SmoothingWindowCleaner cleaner;
  const auto repaired = cleaner.Clean(s.dirty);
  ASSERT_TRUE(repaired.ok());
  const double dirty_acc = StrictTickAccuracy(s.dirty, s.truth);
  const double clean_acc = StrictTickAccuracy(repaired.value(), s.truth);
  EXPECT_LT(dirty_acc, 0.85);  // a large share of reads is missing
  EXPECT_GT(clean_acc, dirty_acc);
  EXPECT_GT(clean_acc, 0.8);
}

TEST(SmoothingWindowTest, AdaptiveAvoidsWideWindowCollapse) {
  // The adaptive window sizes itself from the observed read rate. On a
  // reliable, fast-moving stream it must stay narrow: a fixed wide window
  // (the right choice for lossy readers) collapses there because its mode
  // lags every region transition.
  double adaptive_acc = 0.0, wide_acc = 0.0;
  for (uint64_t seed = 30; seed < 36; ++seed) {
    RfidScenario s;
    Rng rng(seed);
    s.truth = s.deployment.SimulateWalk(1, 25, 3, 1000, &rng);
    s.dirty = s.deployment.Degrade(s.truth, 0.05, 0.0, &rng);
    SmoothingWindowCleaner::Options wide_opts;
    wide_opts.half_window_ticks = 5;
    SmoothingWindowCleaner::Options adaptive_opts;
    adaptive_opts.adaptive = true;
    wide_acc += fault::TickAccuracy(
        SmoothingWindowCleaner(wide_opts).Clean(s.dirty).value(), s.truth,
        1000);
    adaptive_acc += fault::TickAccuracy(
        SmoothingWindowCleaner(adaptive_opts).Clean(s.dirty).value(),
        s.truth, 1000);
  }
  EXPECT_GT(adaptive_acc / 6, 0.85);
  EXPECT_GT(adaptive_acc, wide_acc + 0.5);
}

TEST(SmoothingWindowTest, AdaptiveTracksWideWindowUnderHeavyLoss) {
  // Under heavy read loss the adaptive window widens on its own and must
  // stay competitive with a hand-tuned wide window.
  double adaptive_acc = 0.0, wide_acc = 0.0;
  for (uint64_t seed = 50; seed < 58; ++seed) {
    RfidScenario s;
    Rng rng(seed);
    s.truth = s.deployment.SimulateWalk(1, 25, 8, 1000, &rng);
    s.dirty = s.deployment.Degrade(s.truth, 0.7, 0.0, &rng);
    SmoothingWindowCleaner::Options wide_opts;
    wide_opts.half_window_ticks = 5;
    SmoothingWindowCleaner::Options adaptive_opts;
    adaptive_opts.adaptive = true;
    wide_acc += fault::TickAccuracy(
        SmoothingWindowCleaner(wide_opts).Clean(s.dirty).value(), s.truth,
        1000);
    adaptive_acc += fault::TickAccuracy(
        SmoothingWindowCleaner(adaptive_opts).Clean(s.dirty).value(),
        s.truth, 1000);
  }
  EXPECT_GT(adaptive_acc, wide_acc - 0.4);
}

TEST(SmoothingWindowTest, AdaptiveStaysNarrowOnCleanStream) {
  // On a loss-free stream the adaptive window should not be worse than a
  // narrow fixed window (wide windows lag transitions).
  const RfidScenario s = MakeScenario(0.0, 0.0, 40);
  SmoothingWindowCleaner::Options adaptive_opts;
  adaptive_opts.adaptive = true;
  const auto repaired =
      SmoothingWindowCleaner(adaptive_opts).Clean(s.dirty).value();
  EXPECT_GT(fault::TickAccuracy(repaired, s.truth, 1000), 0.9);
}

TEST(SmoothingWindowTest, EmptyFails) {
  SmoothingWindowCleaner cleaner;
  EXPECT_FALSE(cleaner.Clean(SymbolicTrajectory(1)).ok());
}

TEST(ConstraintCleanerTest, RemovesFalsePositives) {
  const RfidScenario s = MakeScenario(0.05, 0.35, 2);
  ConstraintCleaner cleaner(&s.deployment);
  const auto repaired = cleaner.Clean(s.dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_GT(TickAccuracy(repaired.value(), s.truth, 1000), 0.8);
  // Repaired sequence must respect adjacency.
  const auto seq = repaired->RegionSequence();
  for (size_t i = 1; i < seq.size(); ++i) {
    EXPECT_TRUE(s.deployment.Adjacent(seq[i - 1], seq[i]) ||
                seq[i - 1] == seq[i]);
  }
}

TEST(HmmCleanerTest, HandlesBothFaultTypes) {
  const RfidScenario s = MakeScenario(0.25, 0.15, 3);
  HmmCleaner cleaner(&s.deployment);
  const auto repaired = cleaner.Clean(s.dirty);
  ASSERT_TRUE(repaired.ok());
  const double dirty_acc = TickAccuracy(s.dirty, s.truth, 1000);
  const double hmm_acc = TickAccuracy(repaired.value(), s.truth, 1000);
  EXPECT_GT(hmm_acc, dirty_acc);
  EXPECT_GT(hmm_acc, 0.85);
}

TEST(HmmCleanerTest, BeatsSmoothingUnderCrossReads) {
  // With many cross reads, constraint/probabilistic reasoning should beat
  // pure smoothing (tutorial claim: exploiting spatiotemporal redundancy
  // and constraints outperforms purely local repair).
  double hmm_total = 0.0, smooth_total = 0.0;
  for (uint64_t seed = 10; seed < 16; ++seed) {
    const RfidScenario s = MakeScenario(0.25, 0.30, seed);
    HmmCleaner hmm(&s.deployment);
    SmoothingWindowCleaner smooth;
    hmm_total += TickAccuracy(hmm.Clean(s.dirty).value(), s.truth, 1000);
    smooth_total +=
        TickAccuracy(smooth.Clean(s.dirty).value(), s.truth, 1000);
  }
  EXPECT_GT(hmm_total, smooth_total);
}

TEST(TickAccuracyTest, IdenticalIsPerfect) {
  const RfidScenario s = MakeScenario(0.0, 0.0, 4);
  EXPECT_DOUBLE_EQ(TickAccuracy(s.truth, s.truth, 1000), 1.0);
}

// -------------------------------------------------------- TimestampRepair

TEST(TimestampRepairTest, AlreadySortedUnchanged) {
  const std::vector<Timestamp> ts{0, 10, 20, 30};
  const auto repaired = RepairTimestamps(ts);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value(), ts);
}

TEST(TimestampRepairTest, RestoresMonotonicity) {
  const std::vector<Timestamp> ts{0, 50, 30, 40, 100};
  const auto repaired = RepairTimestamps(ts);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 1; i < repaired->size(); ++i) {
    EXPECT_GE((*repaired)[i], (*repaired)[i - 1]);
  }
  // PAVA pools {50,30,40} -> 40,40,40; endpoints untouched.
  EXPECT_EQ(repaired->front(), 0);
  EXPECT_EQ(repaired->back(), 100);
  EXPECT_EQ((*repaired)[1], 40);
}

TEST(TimestampRepairTest, MinGapEnforced) {
  const std::vector<Timestamp> ts{0, 1, 2, 3};
  const auto repaired = RepairTimestamps(ts, 10);
  ASSERT_TRUE(repaired.ok());
  for (size_t i = 1; i < repaired->size(); ++i) {
    EXPECT_GE((*repaired)[i] - (*repaired)[i - 1], 10);
  }
}

TEST(TimestampRepairTest, MinimalChangeProperty) {
  // PAVA minimises total squared change; sanity-check it does not move
  // values that are already consistent.
  Rng rng(5);
  std::vector<Timestamp> truth(200);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<Timestamp>(i) * 1000;
  }
  std::vector<Timestamp> jittered = truth;
  for (Timestamp& t : jittered) {
    t += static_cast<Timestamp>(rng.Gaussian(0, 600));
  }
  const auto repaired = RepairTimestamps(jittered);
  ASSERT_TRUE(repaired.ok());
  double err_before = 0.0, err_after = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    err_before += std::abs(static_cast<double>(jittered[i] - truth[i]));
    err_after += std::abs(static_cast<double>((*repaired)[i] - truth[i]));
  }
  // Order repair should not increase the deviation from the truth.
  EXPECT_LE(err_after, err_before * 1.05);
  for (size_t i = 1; i < repaired->size(); ++i) {
    EXPECT_GE((*repaired)[i], (*repaired)[i - 1]);
  }
}

TEST(TimestampRepairTest, NegativeGapRejected) {
  EXPECT_FALSE(RepairTimestamps({1, 2}, -5).ok());
}

TEST(TimestampRepairTest, EmptyAndTrajectoryVariants) {
  EXPECT_TRUE(RepairTimestamps({}).ok());
  Rng rng(6);
  Trajectory tr(1);
  for (int i = 0; i < 50; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 10.0, 0)));
  }
  const Trajectory jittered = sim::JitterTimestamps(tr, 1500.0, &rng);
  ASSERT_FALSE(jittered.IsTimeOrdered());
  const auto repaired = RepairTrajectoryTimestamps(jittered, 1);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->IsTimeOrdered());
  EXPECT_EQ(repaired->size(), tr.size());
}

// ------------------------------------------------------------ ValueRepair

class ValueRepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const BBox bounds(0, 0, 2000, 2000);
    field_ = std::make_unique<sim::ScalarField>(sim::ScalarField::MakeRandom(
        bounds, 3, 10.0, 20.0, 500, 900, 3600, &rng_));
    sensors_ = sim::DeploySensors(bounds, 40, &rng_);
    truth_ = sim::SampleField(*field_, sensors_, 0, 60'000, 30, "pm25");
  }

  double Rmse(const StDataset& ds) {
    double acc = 0.0;
    size_t n = 0;
    for (size_t s = 0; s < ds.num_sensors(); ++s) {
      for (size_t i = 0; i < ds.series()[s].size(); ++i) {
        const double e =
            ds.series()[s][i].value - truth_.series()[s][i].value;
        acc += e * e;
        ++n;
      }
    }
    return std::sqrt(acc / n);
  }

  Rng rng_{7};
  std::unique_ptr<sim::ScalarField> field_;
  std::vector<Point> sensors_;
  StDataset truth_;
};

TEST_F(ValueRepairTest, ConsensusFixesSpikes) {
  std::vector<std::vector<bool>> labels;
  const StDataset dirty =
      sim::AddValueSpikes(truth_, 0.05, 40.0, &rng_, &labels);
  ConsensusValueRepairer repairer;
  std::vector<std::vector<bool>> repaired_flags;
  const auto repaired = repairer.Repair(dirty, &repaired_flags);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(Rmse(repaired.value()), Rmse(dirty) * 0.5);
  // Most repairs should land on actual spikes.
  size_t hits = 0, repairs = 0;
  for (size_t s = 0; s < repaired_flags.size(); ++s) {
    for (size_t i = 0; i < repaired_flags[s].size(); ++i) {
      if (repaired_flags[s][i]) {
        ++repairs;
        if (labels[s][i]) ++hits;
      }
    }
  }
  ASSERT_GT(repairs, 0u);
  EXPECT_GT(static_cast<double>(hits) / repairs, 0.8);
}

TEST_F(ValueRepairTest, CleanDataMostlyUntouched) {
  ConsensusValueRepairer repairer;
  std::vector<std::vector<bool>> flags;
  const auto repaired = repairer.Repair(truth_, &flags);
  ASSERT_TRUE(repaired.ok());
  size_t repairs = 0, total = 0;
  for (const auto& f : flags) {
    for (bool b : f) {
      ++total;
      repairs += b ? 1 : 0;
    }
  }
  EXPECT_LT(static_cast<double>(repairs) / total, 0.05);
}

TEST_F(ValueRepairTest, DriftCorrected) {
  std::vector<bool> drifting;
  const StDataset dirty =
      sim::AddSensorDrift(truth_, 0.2, 0.5, &rng_, &drifting);
  DriftCorrector::Options dopts;
  dopts.neighbors = 8;
  DriftCorrector corrector(dopts);
  std::vector<bool> corrected;
  const auto repaired = corrector.Repair(dirty, &corrected);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(Rmse(repaired.value()), Rmse(dirty) * 0.5);
  // Correction decisions should match the injected drift flags well.
  size_t agree = 0;
  for (size_t i = 0; i < drifting.size(); ++i) {
    agree += drifting[i] == corrected[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(agree) / drifting.size(), 0.8);
}

// Parameterised: HMM cleaning degrades gracefully with the FN rate.
class FnRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(FnRateSweep, HmmKeepsAccuracyAboveFloor) {
  const RfidScenario s = MakeScenario(GetParam(), 0.1, 77);
  HmmCleaner cleaner(&s.deployment);
  const auto repaired = cleaner.Clean(s.dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_GT(TickAccuracy(repaired.value(), s.truth, 1000), 0.7)
      << "fn_rate=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FnRates, FnRateSweep,
                         ::testing::Values(0.05, 0.15, 0.30, 0.45));

}  // namespace
}  // namespace fault
}  // namespace sidq

// Chaos determinism property tests: a best-effort fleet run with armed
// FailPoints must be a pure function of (fleet, seed, failpoint configs) --
// never of worker count or OS scheduling. The pinned property from
// ISSUE/DESIGN: the chaos run equals the serial run minus exactly the
// quarantined object ids, for 1/2/8 workers. Fault rates are raised when
// SIDQ_CHAOS_AGGRESSIVE is set (the CI chaos job exports it) so the
// sanitizer jobs sweep the error paths hard.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "core/pipeline.h"
#include "core/random.h"
#include "core/status.h"
#include "core/trajectory.h"
#include "exec/fleet_runner.h"

namespace sidq {
namespace {

using exec::FailurePolicy;
using exec::FleetResult;
using exec::FleetRunner;
using exec::ObjectAnnotation;

constexpr uint64_t kSeed = 2024;

bool Aggressive() { return std::getenv("SIDQ_CHAOS_AGGRESSIVE") != nullptr; }

std::vector<Trajectory> MakeFleet(size_t num, size_t points, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trajectory> fleet;
  fleet.reserve(num);
  for (size_t i = 0; i < num; ++i) {
    Trajectory t(static_cast<ObjectId>(i));
    double x = rng.Uniform(0.0, 4000.0);
    double y = rng.Uniform(0.0, 4000.0);
    for (size_t k = 0; k < points; ++k) {
      t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 1000,
                                        geometry::Point(x, y), 5.0));
      x += rng.Gaussian(0.0, 10.0);
      y += rng.Gaussian(0.0, 10.0);
    }
    fleet.push_back(std::move(t));
  }
  return fleet;
}

// Seeded jitter, a flaky gateway (transient chaos site), a fragile decoder
// (permanent chaos site), then deterministic smoothing. The chaos sites are
// generic test sites so this test exercises the registry/runner contract
// without dragging the refine stack in.
TrajectoryPipeline MakeChaosPipeline() {
  TrajectoryPipeline pipeline;
  pipeline.AddSeeded("jitter",
                     [](const Trajectory& in, Rng& rng) -> StatusOr<Trajectory> {
                       Trajectory out(in.object_id());
                       for (const TrajectoryPoint& pt : in.points()) {
                         TrajectoryPoint moved = pt;
                         moved.p.x += rng.Gaussian(0.0, 0.5);
                         moved.p.y += rng.Gaussian(0.0, 0.5);
                         out.AppendUnordered(moved);
                       }
                       return out;
                     });
  pipeline.AddCtx("gateway",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "test.chaos.gateway", in.object_id(), ctx.exec));
                    return in;
                  });
  pipeline.AddCtx("decoder",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "test.chaos.decoder", in.object_id(), ctx.exec));
                    return in;
                  });
  pipeline.Add("smooth", [](const Trajectory& in) -> StatusOr<Trajectory> {
    Trajectory out(in.object_id());
    for (size_t i = 0; i < in.size(); ++i) {
      TrajectoryPoint pt = in[i];
      if (i > 0 && i + 1 < in.size()) {
        pt.p.x = (in[i - 1].p.x + in[i].p.x + in[i + 1].p.x) / 3.0;
        pt.p.y = (in[i - 1].p.y + in[i].p.y + in[i + 1].p.y) / 3.0;
      }
      out.AppendUnordered(pt);
    }
    return out;
  });
  return pipeline;
}

// Arms the chaos sites afresh (resetting evaluation counts, so every run
// makes identical injection decisions).
void ArmChaos() {
  FailPointConfig transient;
  transient.action = FailPointAction::kTransientError;
  transient.probability = Aggressive() ? 0.6 : 0.3;
  transient.seed = 0xC4A05;
  ArmFailPoint("test.chaos.gateway", transient);

  FailPointConfig permanent;
  permanent.action = FailPointAction::kPermanentError;
  permanent.probability = Aggressive() ? 0.25 : 0.1;
  permanent.seed = 0xC4A05 + 1;
  ArmFailPoint("test.chaos.decoder", permanent);

  FailPointConfig stall;
  stall.action = FailPointAction::kStall;
  stall.stall_ms = 40;
  stall.probability = Aggressive() ? 0.5 : 0.2;
  stall.seed = 0xC4A05 + 2;
  ArmFailPoint("test.chaos.stall", stall);
}

FleetRunner::Options ChaosOptions(int workers) {
  FleetRunner::Options options;
  options.num_threads = workers;
  options.shard_size = 3;
  options.base_seed = kSeed;
  options.failure_policy = FailurePolicy::kBestEffort;
  options.retry.max_retries = 2;
  options.retry.jitter = 0.2;
  options.virtual_time = true;  // per-object clocks: stalls stay private
  options.deadline_ms = 500;
  return options;
}

::testing::AssertionResult SameTrajectory(const Trajectory& a,
                                          const Trajectory& b) {
  if (a.object_id() != b.object_id() || a.size() != b.size()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].t != b[i].t || a[i].p.x != b[i].p.x || a[i].p.y != b[i].p.y) {
      return ::testing::AssertionFailure() << "point " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailPoints(); }
};

TEST_F(ChaosTest, BestEffortChaosRunIsSerialMinusQuarantined) {
  const size_t kFleetSize = 48;
  const auto fleet = MakeFleet(kFleetSize, 20, kSeed);
  const TrajectoryPipeline pipeline = MakeChaosPipeline();

  // Ground truth: the same pipeline with nothing armed, serially.
  const auto clean_serial = pipeline.RunBatch(fleet, kSeed);
  ASSERT_TRUE(clean_serial.ok()) << clean_serial.status();

  // Reference chaos run: one worker.
  ArmChaos();
  const FleetRunner serial_runner(&pipeline, ChaosOptions(1));
  const FleetResult reference = serial_runner.Run(fleet);
  ASSERT_TRUE(reference.partial_ok());
  const std::vector<size_t> quarantined = reference.QuarantinedIndices();
  // The configured rates make both outcomes near-certain; if this ever
  // flakes the seeds above changed, not the scheduler.
  EXPECT_GT(quarantined.size(), 0u);
  EXPECT_LT(quarantined.size(), kFleetSize);
  EXPECT_GT(reference.retries_total, 0u);

  // The chaos run IS the serial run minus exactly the quarantined ids.
  for (size_t i = 0; i < kFleetSize; ++i) {
    if (reference.statuses[i].ok()) {
      EXPECT_TRUE(SameTrajectory(reference.cleaned[i], (*clean_serial)[i]))
          << "object " << i;
    } else {
      EXPECT_NE(std::find(quarantined.begin(), quarantined.end(), i),
                quarantined.end());
    }
  }

  // Property: every worker count reproduces the reference bit-for-bit --
  // same statuses, same quarantine set, same retry counts, same output.
  for (const int workers : {2, 8}) {
    ArmChaos();  // reset evaluation counts
    const FleetRunner runner(&pipeline, ChaosOptions(workers));
    const FleetResult result = runner.Run(fleet);
    ASSERT_TRUE(result.partial_ok());
    EXPECT_EQ(result.QuarantinedIndices(), quarantined)
        << workers << " workers";
    EXPECT_EQ(result.objects_quarantined, reference.objects_quarantined);
    EXPECT_EQ(result.objects_degraded, reference.objects_degraded);
    EXPECT_EQ(result.retries_total, reference.retries_total);

    ASSERT_EQ(result.annotations.size(), reference.annotations.size());
    for (size_t k = 0; k < result.annotations.size(); ++k) {
      const ObjectAnnotation& got = result.annotations[k];
      const ObjectAnnotation& want = reference.annotations[k];
      EXPECT_EQ(got.index, want.index);
      EXPECT_EQ(got.id, want.id);
      EXPECT_EQ(got.quality, want.quality);
      EXPECT_EQ(got.retries, want.retries);
      EXPECT_EQ(got.status.code(), want.status.code());
    }
    for (size_t i = 0; i < kFleetSize; ++i) {
      EXPECT_EQ(result.statuses[i].code(), reference.statuses[i].code());
      if (result.statuses[i].ok()) {
        EXPECT_TRUE(SameTrajectory(result.cleaned[i], reference.cleaned[i]))
            << "object " << i << " with " << workers << " workers";
      }
    }
  }
}

TEST_F(ChaosTest, DisarmedResilientRunMatchesRunBatchBitIdentically) {
  // With nothing armed, the full resilience machinery (retry policy,
  // per-object deadlines on virtual clocks, best-effort accounting) must
  // leave the output bit-identical to the plain serial reference.
  const auto fleet = MakeFleet(32, 16, kSeed + 1);
  const TrajectoryPipeline pipeline = MakeChaosPipeline();
  const auto serial = pipeline.RunBatch(fleet, kSeed + 1);
  ASSERT_TRUE(serial.ok());

  for (const int workers : {1, 2, 8}) {
    FleetRunner::Options options = ChaosOptions(workers);
    options.base_seed = kSeed + 1;
    const FleetRunner runner(&pipeline, options);
    const FleetResult result = runner.Run(fleet);
    ASSERT_TRUE(result.ok()) << result.first_error;
    EXPECT_TRUE(result.annotations.empty());
    EXPECT_EQ(result.retries_total, 0u);
    for (size_t i = 0; i < fleet.size(); ++i) {
      EXPECT_TRUE(SameTrajectory(result.cleaned[i], (*serial)[i]))
          << "object " << i << " with " << workers << " workers";
    }
  }
}

TEST_F(ChaosTest, StallsNeverLeakAcrossObjectBudgets) {
  // Heavy stalls against a tight budget: in virtual time each object owns
  // its clock, so objects the stall site skips must never be pushed over
  // the deadline by their shard-mates' stalls. A stalled object itself can
  // exceed its own budget (deterministically), which best-effort then
  // quarantines -- identically for every worker count.
  const size_t kFleetSize = 24;
  const auto fleet = MakeFleet(kFleetSize, 12, kSeed + 2);
  TrajectoryPipeline pipeline;
  pipeline.AddCtx("stall_site",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "test.chaos.stall", in.object_id(), ctx.exec));
                    if (ctx.exec != nullptr) {
                      SIDQ_RETURN_IF_ERROR(ctx.exec->Check());
                    }
                    return in;
                  });

  FailPointConfig stall;
  stall.action = FailPointAction::kStall;
  stall.stall_ms = 1000;  // one stall blows the whole 500ms budget
  stall.probability = 0.4;
  stall.seed = 7;

  std::vector<Status> reference_statuses;
  for (const int workers : {1, 2, 8}) {
    ArmFailPoint("test.chaos.stall", stall);
    const FleetRunner runner(&pipeline, ChaosOptions(workers));
    const FleetResult result = runner.Run(fleet);
    ASSERT_TRUE(result.partial_ok());
    if (reference_statuses.empty()) {
      reference_statuses = result.statuses;
      size_t deadline_failures = 0;
      for (const Status& st : result.statuses) {
        if (st.code() == StatusCode::kDeadlineExceeded) ++deadline_failures;
      }
      EXPECT_GT(deadline_failures, 0u);
      EXPECT_LT(deadline_failures, kFleetSize);
    } else {
      for (size_t i = 0; i < kFleetSize; ++i) {
        EXPECT_EQ(result.statuses[i].code(), reference_statuses[i].code())
            << "object " << i << " with " << workers << " workers";
      }
    }
  }
}

}  // namespace
}  // namespace sidq

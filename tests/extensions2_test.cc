#include <gtest/gtest.h>

#include "analytics/next_location.h"
#include "core/random.h"
#include "reduce/reference_compression.h"
#include "sim/noise.h"
#include "sim/road_network.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/cotraining.h"

namespace sidq {
namespace {

using geometry::BBox;
using geometry::Point;

// ----------------------------------------------------------------- A-star

TEST(AStarTest, MatchesDijkstraOnRandomPairs) {
  Rng rng(1);
  const sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(12, 12, 150.0, 10.0, 0.05, &rng);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId a = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    const NodeId b = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    const auto dijkstra = net.ShortestPath(a, b);
    const auto astar = net.ShortestPathAStar(a, b);
    ASSERT_EQ(dijkstra.ok(), astar.ok());
    if (!dijkstra.ok()) continue;
    auto path_len = [&](const std::vector<NodeId>& p) {
      double len = 0.0;
      for (size_t i = 1; i < p.size(); ++i) {
        len += geometry::Distance(net.node(p[i - 1]).p, net.node(p[i]).p);
      }
      return len;
    };
    EXPECT_NEAR(path_len(dijkstra.value()), path_len(astar.value()), 1e-6);
  }
}

TEST(AStarTest, ExpandsFewerNodesThanDijkstra) {
  Rng rng(2);
  const sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(20, 20, 150.0, 5.0, 0.0, &rng);
  size_t dijkstra_total = 0, astar_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId a = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    const NodeId b = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
    ASSERT_TRUE(net.ShortestPath(a, b).ok());
    dijkstra_total += net.last_nodes_expanded;
    ASSERT_TRUE(net.ShortestPathAStar(a, b).ok());
    astar_total += net.last_nodes_expanded;
  }
  EXPECT_LT(astar_total, dijkstra_total);
}

TEST(AStarTest, RejectsBadNodes) {
  Rng rng(3);
  const sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(3, 3, 100.0, 0.0, 0.0, &rng);
  EXPECT_FALSE(net.ShortestPathAStar(0, 999).ok());
}

// ----------------------------------------------------- Federated learning

TEST(FederatedMergeTest, MergedModelEqualsCentralTraining) {
  Rng rng(4);
  const sim::Fleet fleet = sim::MakeFleet(8, 8, 250.0, 30, 14, &rng);
  std::vector<Trajectory> held(fleet.trajectories.end() - 6,
                               fleet.trajectories.end());
  std::vector<Trajectory> train(fleet.trajectories.begin(),
                                fleet.trajectories.end() - 6);

  // Three edge nodes each see a third of the fleet.
  analytics::NextCellPredictor nodes[3];
  for (size_t i = 0; i < train.size(); ++i) {
    nodes[i % 3].Observe(train[i]);
  }
  analytics::NextCellPredictor global;
  for (auto& node : nodes) global.MergeFrom(node);

  analytics::NextCellPredictor central;
  central.Train(train);
  EXPECT_DOUBLE_EQ(global.Evaluate(held), central.Evaluate(held));
  EXPECT_GT(global.Evaluate(held), 0.2);
  // Each single node alone is weaker than the federation.
  for (auto& node : nodes) {
    EXPECT_LE(node.Evaluate(held), global.Evaluate(held) + 1e-12);
  }
}

// ------------------------------------------------ Reference compression

class ReferenceCompressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(5);
    net_ = sim::MakeGridRoadNetwork(8, 8, 200.0, 0.0, 0.0, rng_.get());
    sim::TrajectorySimulator::Options sopts;
    sopts.mean_speed_mps = 12.0;
    sopts.speed_jitter = 0.0;  // deterministic speeds: repeated rides align
    simulator_ =
        std::make_unique<sim::TrajectorySimulator>(sopts, rng_.get());
    // Historical corpus: rides along fixed commuter routes.
    for (int r = 0; r < 6; ++r) {
      routes_.push_back(
          sim::RandomRoute(net_, 16, rng_.get()).value());
      references_.push_back(
          simulator_->AlongRoute(net_, routes_[r], 100 + r).value());
    }
    compressor_.BuildReferences(&references_);
  }

  std::unique_ptr<Rng> rng_;
  sim::RoadNetwork net_;
  std::unique_ptr<sim::TrajectorySimulator> simulator_;
  std::vector<std::vector<NodeId>> routes_;
  std::vector<Trajectory> references_;
  reduce::ReferenceCompressor compressor_;
};

TEST_F(ReferenceCompressionTest, RepeatedRideMostlyMatches) {
  // A new ride along a known route, mildly noisy.
  const Trajectory ride = sim::AddGpsNoise(
      simulator_->AlongRoute(net_, routes_[2], 1).value(), 4.0, rng_.get());
  const auto encoded = compressor_.Compress(ride);
  ASSERT_TRUE(encoded.ok());
  EXPECT_GT(encoded->MatchedFraction(), 0.8);
  EXPECT_LT(encoded->ApproxBytes(), ride.size() * 16);

  const auto decoded = compressor_.Decompress(encoded.value(), 1);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), ride.size());
  for (size_t i = 0; i < ride.size(); ++i) {
    EXPECT_EQ((*decoded)[i].t, ride[i].t);
    EXPECT_LE(geometry::Distance((*decoded)[i].p, ride[i].p), 25.0 + 1e-9);
  }
}

TEST_F(ReferenceCompressionTest, NovelRideFallsBackToLiterals) {
  // A free-space trajectory far from every reference: nothing matches,
  // decompression still round-trips exactly through literals.
  Trajectory offroad(9);
  for (int i = 0; i < 40; ++i) {
    offroad.AppendUnordered(
        TrajectoryPoint(i * 1000, Point(50'000 + i * 10.0, 50'000)));
  }
  const auto encoded = compressor_.Compress(offroad);
  ASSERT_TRUE(encoded.ok());
  EXPECT_DOUBLE_EQ(encoded->MatchedFraction(), 0.0);
  const auto decoded = compressor_.Decompress(encoded.value(), 9);
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < offroad.size(); ++i) {
    EXPECT_EQ((*decoded)[i].p, offroad[i].p);
  }
}

TEST_F(ReferenceCompressionTest, ErrorsWithoutBuild) {
  reduce::ReferenceCompressor fresh;
  EXPECT_FALSE(fresh.Compress(references_[0]).ok());
}

// ------------------------------------------------------------ Co-training

TEST(CoTrainingTest, AgreementPropagatesLabels) {
  Rng rng(6);
  const BBox bounds(0, 0, 2000, 2000);
  const auto field = sim::ScalarField::MakeRandom(bounds, 3, 10.0, 20.0, 500,
                                                  900, 7200, &rng);
  const auto sensors = sim::DeploySensors(bounds, 40, &rng);
  const StDataset labeled = sim::AddValueNoise(
      sim::SampleField(field, sensors, 0, 60'000, 30, "pm25"), 0.5, &rng);

  // Queries: a time series at unsampled locations.
  std::vector<uncertainty::CoTrainingEstimator::Query> queries;
  std::vector<double> truth_values;
  for (int loc = 0; loc < 15; ++loc) {
    const Point p(rng.Uniform(200, 1800), rng.Uniform(200, 1800));
    for (int k = 1; k < 29; ++k) {
      queries.push_back({p, k * 60'000});
      truth_values.push_back(field.Value(p, k * 60'000));
    }
  }
  uncertainty::CoTrainingEstimator estimator;
  const auto result = uncertainty::CoTrainingEstimator().Run(labeled,
                                                             queries);
  ASSERT_TRUE(result.ok());
  size_t pseudo = 0;
  double err = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    pseudo += (*result)[i].pseudo_labeled ? 1 : 0;
    err += std::abs((*result)[i].value - truth_values[i]);
  }
  // Co-training should pseudo-label a substantial share and stay accurate.
  EXPECT_GT(static_cast<double>(pseudo) / queries.size(), 0.3);
  EXPECT_LT(err / queries.size(), 4.0);
}

TEST(CoTrainingTest, FailsWithoutLabels) {
  StDataset empty("x");
  uncertainty::CoTrainingEstimator estimator;
  EXPECT_FALSE(estimator.Run(empty, {{Point(0, 0), 0}}).ok());
}

}  // namespace
}  // namespace sidq

// Error-path coverage for Status/StatusOr: code propagation through the
// macro layer, access-on-error semantics (process death, not garbage
// values), and move/copy behavior on the error channel. The compile-level
// [[nodiscard]] contract is covered by the `status_nodiscard_probe` ctest
// (tests/nodiscard_probe.cc compiled with -Werror=unused-result under
// WILL_FAIL); this file covers the runtime half.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.h"
#include "core/statusor.h"

namespace sidq {
namespace {

// ------------------------------------------------------- error propagation

Status FailsWith(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument("invalid");
    case StatusCode::kNotFound:
      return Status::NotFound("not found");
    case StatusCode::kOutOfRange:
      return Status::OutOfRange("out of range");
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition("precondition");
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists("exists");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted("exhausted");
    case StatusCode::kDataLoss:
      return Status::DataLoss("data loss");
    case StatusCode::kInternal:
      return Status::Internal("internal");
    case StatusCode::kUnimplemented:
      return Status::Unimplemented("unimplemented");
    case StatusCode::kCancelled:
      return Status::Cancelled("cancelled");
    case StatusCode::kUnavailable:
      return Status::Unavailable("unavailable");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::Internal("unreachable");
}

Status Relay(StatusCode code) {
  SIDQ_RETURN_IF_ERROR(FailsWith(code));
  return Status::OK();
}

TEST(StatusPropagationTest, ReturnIfErrorForwardsEveryCode) {
  const std::vector<StatusCode> codes = {
      StatusCode::kInvalidArgument,    StatusCode::kNotFound,
      StatusCode::kOutOfRange,         StatusCode::kFailedPrecondition,
      StatusCode::kAlreadyExists,      StatusCode::kResourceExhausted,
      StatusCode::kDataLoss,           StatusCode::kInternal,
      StatusCode::kUnimplemented,      StatusCode::kCancelled,
      StatusCode::kUnavailable,        StatusCode::kDeadlineExceeded};
  for (StatusCode code : codes) {
    const Status relayed = Relay(code);
    EXPECT_FALSE(relayed.ok());
    EXPECT_EQ(relayed.code(), code) << StatusCodeToString(code);
    EXPECT_EQ(relayed, FailsWith(code)) << "message must survive relay";
  }
  EXPECT_TRUE(Relay(StatusCode::kOk).ok());
}

StatusOr<std::string> Describe(StatusOr<int> in) {
  SIDQ_ASSIGN_OR_RETURN(const int v, in);
  return std::to_string(v);
}

TEST(StatusPropagationTest, AssignOrReturnForwardsStatusUnchanged) {
  const StatusOr<std::string> out =
      Describe(Status::DataLoss("sensor 7 dropped"));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(out.status().message(), "sensor 7 dropped");
}

TEST(StatusPropagationTest, AssignOrReturnUnwrapsValue) {
  const StatusOr<std::string> out = Describe(7);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "7");
}

// -------------------------------------------------- access-on-error paths

TEST(StatusOrDeathTest, ValueOnErrorDies) {
  const StatusOr<int> err = Status::NotFound("missing reading");
  EXPECT_DEATH({ (void)err.value(); },  // sidq: allow-ignored-status(death-test probe of the aborting accessor)
               "missing reading");
}

TEST(StatusOrDeathTest, DerefOnErrorDies) {
  const StatusOr<std::vector<int>> err = Status::OutOfRange("span");
  EXPECT_DEATH({ (void)err->size(); },  // sidq: allow-ignored-status(death-test probe of the aborting accessor)
               "span");
}

TEST(StatusOrDeathTest, ConstructingFromOkStatusDies) {
  EXPECT_DEATH({ StatusOr<int> bad{Status::OK()}; },
               "StatusOr constructed from OK status");
}

TEST(StatusOrErrorTest, ValueOrReturnsFallbackOnlyOnError) {
  const StatusOr<int> err = Status::Internal("x");
  EXPECT_EQ(err.value_or(-7), -7);
  const StatusOr<int> ok = 3;
  EXPECT_EQ(ok.value_or(-7), 3);
}

TEST(StatusOrErrorTest, MoveOutKeepsStatusChannelIntact) {
  StatusOr<std::string> ok = std::string("payload");
  const std::string moved = std::move(ok).value();
  EXPECT_EQ(moved, "payload");

  StatusOr<std::string> err = Status::ResourceExhausted("quota");
  StatusOr<std::string> copied = err;
  EXPECT_FALSE(copied.ok());
  EXPECT_EQ(copied.status(), err.status());
}

TEST(StatusOrErrorTest, StatusSurvivesCopyAndMove) {
  Status s = Status::FailedPrecondition("needs calibration");
  Status copy = s;
  Status moved = std::move(s);
  EXPECT_EQ(copy, moved);
  EXPECT_EQ(moved.message(), "needs calibration");
}

}  // namespace
}  // namespace sidq

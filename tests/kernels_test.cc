// Property tests for the kernel layer: every vectorized primitive must be
// BIT-IDENTICAL (not merely close) to its scalar reference over randomized
// trajectories including empty, single-point, and degenerate inputs, and
// PackedRTree must return the same result sets as index::RTree.

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/random.h"
#include "geometry/geo.h"
#include "index/rtree.h"
#include "kernels/distance.h"
#include "kernels/packed_rtree.h"
#include "kernels/scalar_ref.h"
#include "kernels/soa.h"
#include "query/similarity.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace kernels {
namespace {

using geometry::BBox;
using geometry::Point;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Random trajectory with degenerate features: duplicate points (zero-length
// segments), repeated timestamps, collinear runs.
Trajectory RandomTrajectory(Rng* rng, size_t n, ObjectId id = 1) {
  Trajectory tr(id);
  Timestamp t = 0;
  Point p(rng->Uniform(-500.0, 500.0), rng->Uniform(-500.0, 500.0));
  for (size_t i = 0; i < n; ++i) {
    const double roll = rng->Uniform(0.0, 1.0);
    if (roll < 0.15 && i > 0) {
      // duplicate the previous point (zero-length segment)
    } else if (roll < 0.25 && i > 0) {
      p += Point(rng->Uniform(0.0, 5.0), 0.0);  // axis-aligned step
    } else {
      p += Point(rng->Uniform(-20.0, 20.0), rng->Uniform(-20.0, 20.0));
    }
    tr.AppendUnordered(TrajectoryPoint(t, p));
    t += rng->Bernoulli(0.1) ? 0 : rng->UniformInt(100, 2000);
  }
  return tr;
}

std::vector<size_t> InterestingSizes() { return {0, 1, 2, 3, 7, 33, 64}; }

// ------------------------------------------------------- measure identity

TEST(KernelEquivalenceTest, DtwMatchesScalarBitForBit) {
  Rng rng(7);
  for (size_t n : InterestingSizes()) {
    for (size_t m : InterestingSizes()) {
      const Trajectory a = RandomTrajectory(&rng, n, 1);
      const Trajectory b = RandomTrajectory(&rng, m, 2);
      for (int band : {-1, 0, 1, 4, 32}) {
        const double got = query::DtwDistance(a, b, band);
        const double want = scalar::DtwDistance(a, b, band);
        EXPECT_EQ(got, want) << "n=" << n << " m=" << m << " band=" << band;
      }
    }
  }
}

TEST(KernelEquivalenceTest, FrechetMatchesScalarBitForBit) {
  Rng rng(11);
  for (size_t n : InterestingSizes()) {
    for (size_t m : InterestingSizes()) {
      const Trajectory a = RandomTrajectory(&rng, n, 1);
      const Trajectory b = RandomTrajectory(&rng, m, 2);
      EXPECT_EQ(query::DiscreteFrechetDistance(a, b),
                scalar::FrechetDistance(a, b))
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(KernelEquivalenceTest, EdrMatchesScalarBitForBit) {
  Rng rng(13);
  for (size_t n : InterestingSizes()) {
    for (size_t m : InterestingSizes()) {
      const Trajectory a = RandomTrajectory(&rng, n, 1);
      const Trajectory b = RandomTrajectory(&rng, m, 2);
      for (double eps : {0.0, 5.0, 50.0}) {
        EXPECT_EQ(query::EdrDistance(a, b, eps),
                  scalar::EdrDistance(a, b, eps))
            << "n=" << n << " m=" << m << " eps=" << eps;
      }
    }
  }
}

TEST(KernelEquivalenceTest, LcssMatchesScalarBitForBit) {
  Rng rng(17);
  for (size_t n : InterestingSizes()) {
    for (size_t m : InterestingSizes()) {
      const Trajectory a = RandomTrajectory(&rng, n, 1);
      const Trajectory b = RandomTrajectory(&rng, m, 2);
      EXPECT_EQ(query::LcssSimilarity(a, b, 25.0, 5000),
                scalar::LcssSimilarity(a, b, 25.0, 5000))
          << "n=" << n << " m=" << m;
    }
  }
}

// ----------------------------------------------------- primitive identity

TEST(KernelEquivalenceTest, PairwiseSqDistMatchesScalar) {
  Rng rng(19);
  for (size_t n : InterestingSizes()) {
    for (size_t m : InterestingSizes()) {
      const Trajectory a = RandomTrajectory(&rng, n, 1);
      const Trajectory b = RandomTrajectory(&rng, m, 2);
      const TrajectoryView va = TrajectoryView::Of(a);
      const TrajectoryView vb = TrajectoryView::Of(b);
      std::vector<double> got(n * m, -1.0), want(n * m, -2.0);
      PairwiseSqDist(va.x(), va.y(), n, vb.x(), vb.y(), m, got.data());
      scalar::PairwiseSqDist(a, b, want.data());
      EXPECT_EQ(got, want) << "n=" << n << " m=" << m;
    }
  }
}

TEST(KernelEquivalenceTest, ConsecutiveDistMatchesScalar) {
  Rng rng(23);
  for (size_t n : InterestingSizes()) {
    const Trajectory tr = RandomTrajectory(&rng, n);
    const TrajectoryView v = TrajectoryView::Of(tr);
    std::vector<double> got(n > 1 ? n - 1 : 0), want(n > 1 ? n - 1 : 0);
    ConsecutiveDist(v.x(), v.y(), n, got.data());
    scalar::ConsecutiveDist(tr, want.data());
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(KernelEquivalenceTest, PointToManyDistMatchesScalar) {
  Rng rng(29);
  for (size_t n : InterestingSizes()) {
    const Trajectory tr = RandomTrajectory(&rng, n);
    const TrajectoryView v = TrajectoryView::Of(tr);
    const Point p(rng.Uniform(-500.0, 500.0), rng.Uniform(-500.0, 500.0));
    std::vector<double> got(n), want(n);
    PointToManyDist(p.x, p.y, v.x(), v.y(), n, got.data());
    scalar::PointToManyDist(p, tr, want.data());
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(KernelEquivalenceTest, PointToPolylineDistMatchesScalar) {
  Rng rng(31);
  for (size_t n : InterestingSizes()) {
    const Trajectory tr = RandomTrajectory(&rng, n);
    const TrajectoryView v = TrajectoryView::Of(tr);
    for (int reps = 0; reps < 8; ++reps) {
      const Point p(rng.Uniform(-600.0, 600.0), rng.Uniform(-600.0, 600.0));
      const double got = PointToPolylineDist(p.x, p.y, v.x(), v.y(), n);
      const double want = scalar::PointToPolylineDist(p, tr);
      EXPECT_EQ(got, want) << "n=" << n;
    }
  }
}

TEST(KernelEquivalenceTest, PointToPolylineEmptyIsInfinite) {
  EXPECT_EQ(PointToPolylineDist(0.0, 0.0, nullptr, nullptr, 0), kInf);
}

// ------------------------------------------------------------ SoA caching

TEST(TrajectoryViewTest, CachesUntilMutation) {
  Rng rng(37);
  Trajectory tr = RandomTrajectory(&rng, 16);
  const TrajectoryView v1 = TrajectoryView::Of(tr);
  const TrajectoryView v2 = TrajectoryView::Of(tr);
  EXPECT_EQ(v1.buffer().get(), v2.buffer().get()) << "same revision reuses";

  tr.AppendUnordered(TrajectoryPoint(999999, Point(1.0, 2.0)));
  const TrajectoryView v3 = TrajectoryView::Of(tr);
  EXPECT_NE(v3.buffer().get(), v1.buffer().get()) << "mutation invalidates";
  EXPECT_EQ(v3.size(), tr.size());
  // The old view still describes the pre-mutation snapshot.
  EXPECT_EQ(v1.size(), tr.size() - 1);

  // mutable_points() conservatively invalidates even without a write.
  const uint64_t rev = tr.revision();
  (void)tr.mutable_points();  // sidq: allow-ignored-status(only the revision bump matters here)
  EXPECT_GT(tr.revision(), rev);
  const TrajectoryView v4 = TrajectoryView::Of(tr);
  EXPECT_NE(v4.buffer().get(), v3.buffer().get());
}

TEST(TrajectoryViewTest, ColumnsMatchPoints) {
  Rng rng(41);
  const Trajectory tr = RandomTrajectory(&rng, 33);
  const TrajectoryView v = TrajectoryView::Of(tr);
  ASSERT_EQ(v.size(), tr.size());
  for (size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(v.x()[i], tr[i].p.x);
    EXPECT_EQ(v.y()[i], tr[i].p.y);
    EXPECT_EQ(v.t()[i], tr[i].t);
  }
}

TEST(SoaBufferTest, FromLatLonMatchesManualProjection) {
  const geometry::LatLon origin(40.0, -74.0);
  const geometry::LocalProjection proj(origin);
  std::vector<std::pair<Timestamp, geometry::LatLon>> samples;
  Rng rng(43);
  for (int i = 0; i < 20; ++i) {
    samples.emplace_back(
        i * 1000,
        geometry::LatLon(40.0 + rng.Uniform(-0.01, 0.01),
                         -74.0 + rng.Uniform(-0.01, 0.01)));
  }
  const SoaBuffer buf = SoaBuffer::FromLatLon(samples, proj);
  ASSERT_EQ(buf.size(), samples.size());
  const SoaView v = buf.view();
  for (size_t i = 0; i < samples.size(); ++i) {
    const Point p = proj.Forward(samples[i].second);
    EXPECT_EQ(v.x[i], p.x);
    EXPECT_EQ(v.y[i], p.y);
    EXPECT_EQ(v.t[i], samples[i].first);
  }
}

// ------------------------------------------------------------ PackedRTree

std::vector<PackedRTree::Item> RandomBoxes(Rng* rng, size_t n) {
  std::vector<PackedRTree::Item> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->Uniform(0.0, 1000.0);
    const double y = rng->Uniform(0.0, 1000.0);
    const double w = rng->Uniform(0.0, 30.0);
    const double h = rng->Uniform(0.0, 30.0);
    items.push_back({i, BBox(x, y, x + w, y + h)});
  }
  return items;
}

TEST(PackedRTreeTest, RangeQueryMatchesRTree) {
  Rng rng(47);
  for (size_t n : {0ul, 1ul, 5ul, 16ul, 17ul, 300ul}) {
    const std::vector<PackedRTree::Item> items = RandomBoxes(&rng, n);
    PackedRTree packed;
    packed.BulkLoad(items);
    index::RTree baseline;
    std::vector<index::RTree::Item> base_items;
    for (const auto& it : items) base_items.push_back({it.id, it.box});
    baseline.BulkLoad(base_items);
    for (int q = 0; q < 20; ++q) {
      const double x = rng.Uniform(-50.0, 1050.0);
      const double y = rng.Uniform(-50.0, 1050.0);
      const BBox query(x, y, x + rng.Uniform(0.0, 200.0),
                       y + rng.Uniform(0.0, 200.0));
      std::vector<uint64_t> got = packed.RangeQuery(query);
      std::vector<uint64_t> want = baseline.RangeQuery(query);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "n=" << n;
    }
    // Empty query boxes match nothing in either tree.
    EXPECT_TRUE(packed.RangeQuery(BBox()).empty());
  }
}

// Wide leaves take the SIMD leaf sweep through full blocks, ragged tails,
// and the contains-whole-subtree span emit; the result sets must still
// match index::RTree exactly.
TEST(PackedRTreeTest, WideLeavesMatchRTree) {
  Rng rng(67);
  for (size_t max_entries : {32ul, 64ul}) {
    for (size_t n : {63ul, 64ul, 65ul, 1000ul}) {
      const std::vector<PackedRTree::Item> items = RandomBoxes(&rng, n);
      PackedRTree packed(max_entries);
      packed.BulkLoad(items);
      index::RTree baseline;
      std::vector<index::RTree::Item> base_items;
      for (const auto& it : items) base_items.push_back({it.id, it.box});
      baseline.BulkLoad(base_items);
      for (int q = 0; q < 20; ++q) {
        const double x = rng.Uniform(-50.0, 1050.0);
        const double y = rng.Uniform(-50.0, 1050.0);
        // Mix small boxes with huge ones that contain whole subtrees.
        const double side = (q % 3 == 0) ? 600.0 : rng.Uniform(0.0, 120.0);
        const BBox query(x, y, x + side, y + side);
        std::vector<uint64_t> got = packed.RangeQuery(query);
        std::vector<uint64_t> want = baseline.RangeQuery(query);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "max_entries=" << max_entries << " n=" << n;
      }
    }
  }
}

TEST(PackedRTreeTest, RangeQueryManyReusesCallerBuffers) {
  Rng rng(71);
  PackedRTree packed(64);
  packed.BulkLoad(RandomBoxes(&rng, 500));
  std::vector<BBox> queries;
  for (int q = 0; q < 40; ++q) {
    const double x = rng.Uniform(0.0, 1000.0);
    const double y = rng.Uniform(0.0, 1000.0);
    queries.emplace_back(x, y, x + 150.0, y + 150.0);
  }
  PackedRTree::BatchResults reused;
  packed.RangeQueryMany(queries, &reused);
  const PackedRTree::BatchResults fresh = packed.RangeQueryMany(queries);
  EXPECT_EQ(reused.ids, fresh.ids);
  EXPECT_EQ(reused.offsets, fresh.offsets);
  // A second in-place batch over different queries fully replaces the
  // previous contents.
  std::vector<BBox> one_query{queries.front()};
  packed.RangeQueryMany(one_query, &reused);
  ASSERT_EQ(reused.queries(), 1u);
  EXPECT_EQ(std::vector<uint64_t>(reused.begin_of(0), reused.end_of(0)),
            packed.RangeQuery(queries.front()));
}

TEST(PackedRTreeTest, RangeQueryManyMatchesSingleQueries) {
  Rng rng(53);
  PackedRTree packed;
  packed.BulkLoad(RandomBoxes(&rng, 200));
  std::vector<BBox> queries;
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0.0, 1000.0);
    const double y = rng.Uniform(0.0, 1000.0);
    queries.emplace_back(x, y, x + 100.0, y + 100.0);
  }
  const PackedRTree::BatchResults batch = packed.RangeQueryMany(queries);
  ASSERT_EQ(batch.queries(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::vector<uint64_t> single = packed.RangeQuery(queries[q]);
    const std::vector<uint64_t> from_batch(batch.begin_of(q),
                                           batch.end_of(q));
    EXPECT_EQ(from_batch, single) << "q=" << q;
  }
}

TEST(PackedRTreeTest, KnnMatchesRTreeDistances) {
  Rng rng(59);
  const std::vector<PackedRTree::Item> items = RandomBoxes(&rng, 150);
  PackedRTree packed;
  packed.BulkLoad(items);
  index::RTree baseline;
  std::vector<index::RTree::Item> base_items;
  for (const auto& it : items) base_items.push_back({it.id, it.box});
  baseline.BulkLoad(base_items);
  for (int q = 0; q < 20; ++q) {
    const Point p(rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0));
    for (size_t k : {1ul, 5ul, 151ul}) {
      const std::vector<uint64_t> got = packed.Knn(p, k);
      const std::vector<uint64_t> want = baseline.Knn(p, k);
      ASSERT_EQ(got.size(), want.size());
      // Ties at equal MinDistance may resolve differently; compare the
      // distance sequences, which must be identical and sorted.
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(items[got[i]].box.MinDistance(p),
                  items[want[i]].box.MinDistance(p));
      }
    }
  }
  const PackedRTree::BatchResults batch =
      packed.KnnMany({Point(0, 0), Point(500, 500)}, 3);
  ASSERT_EQ(batch.queries(), 2u);
  EXPECT_EQ(batch.count_of(0), 3u);
  EXPECT_EQ(batch.count_of(1), 3u);
}

TEST(PackedRTreeTest, BoxGapScanStreamsSortedOrder) {
  Rng rng(61);
  const std::vector<PackedRTree::Item> items = RandomBoxes(&rng, 173);
  PackedRTree packed;
  packed.BulkLoad(items);
  for (int q = 0; q < 10; ++q) {
    const double x = rng.Uniform(0.0, 1000.0);
    const double y = rng.Uniform(0.0, 1000.0);
    const BBox qbox(x, y, x + 40.0, y + 40.0);
    // Brute-force expected order: stable (gap, id) sort of all items.
    std::vector<std::pair<double, uint64_t>> expect;
    for (const auto& it : items) {
      expect.emplace_back(BoxGap(qbox, it.box), it.id);
    }
    std::sort(expect.begin(), expect.end());
    BoxGapScan scan(packed, qbox);
    uint64_t id = 0;
    double gap = 0.0;
    size_t i = 0;
    while (scan.Next(&id, &gap)) {
      ASSERT_LT(i, expect.size());
      EXPECT_EQ(gap, expect[i].first) << "i=" << i;
      EXPECT_EQ(id, expect[i].second) << "i=" << i;
      ++i;
    }
    EXPECT_EQ(i, expect.size()) << "scan must be exhaustive";
  }
}

TEST(PackedRTreeTest, EmptyTree) {
  PackedRTree packed;
  packed.BulkLoad({});
  EXPECT_TRUE(packed.empty());
  EXPECT_EQ(packed.height(), 0);
  EXPECT_TRUE(packed.RangeQuery(BBox(0, 0, 1, 1)).empty());
  EXPECT_TRUE(packed.Knn(Point(0, 0), 3).empty());
  BoxGapScan scan(packed, BBox(0, 0, 1, 1));
  uint64_t id;
  double gap;
  EXPECT_FALSE(scan.Next(&id, &gap));
}

// -------------------------------------------- similarity search parity

TEST(SimilaritySearchKernelTest, KnnMatchesBruteForceDtwOrder) {
  Rng rng(67);
  std::vector<Trajectory> collection;
  for (size_t i = 0; i < 40; ++i) {
    collection.push_back(
        RandomTrajectory(&rng, 20 + (i % 13), static_cast<ObjectId>(i)));
  }
  collection.push_back(Trajectory(99));  // empty candidate
  const Trajectory q = RandomTrajectory(&rng, 25, 1000);

  query::TrajectorySimilaritySearch search;
  search.Build(&collection);
  query::TrajectorySimilaritySearch::SearchStats stats;
  const auto got = search.Knn(q, 5, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(stats.candidates, collection.size());
  EXPECT_EQ(stats.pruned + stats.dtw_computed, stats.candidates);

  // Brute force: DTW against everything, same band.
  std::vector<std::pair<double, size_t>> all;
  for (size_t i = 0; i < collection.size(); ++i) {
    all.emplace_back(query::DtwDistance(q, collection[i], 32), i);
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(got.value().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got.value()[i], all[i].second) << "rank " << i;
  }
}

TEST(SimilaritySearchKernelTest, EmptyCollectionAndEmptyQuery) {
  std::vector<Trajectory> empty_collection;
  query::TrajectorySimilaritySearch search;
  search.Build(&empty_collection);
  Rng rng(71);
  const Trajectory q = RandomTrajectory(&rng, 5);
  const auto got = search.Knn(q, 3);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
  EXPECT_FALSE(search.Knn(Trajectory(1), 3).ok()) << "empty query rejected";
}

}  // namespace
}  // namespace kernels
}  // namespace sidq

// BlockCache property tests and the fixed-budget scan differential.
//
// 1. Model-based randomized test: a reference model mirrors the cache's
//    documented semantics (sharded LRU, pinning, byte budget) operation
//    for operation; after every op the real cache must match the model
//    bit-exactly -- counters included -- and the core invariants must
//    hold: unpinned resident bytes per shard never exceed the shard
//    budget, and a pinned block is never evicted.
//
// 2. Differential: the same pocked store (one quarantined interior
//    block) scanned under budgets {one block, 1 MB, 64 MB, unbounded}
//    must produce one identical FNV-1a checksum, equal to the checksum
//    of the expected in-memory record stream -- the cache budget may
//    change eviction traffic, never bytes.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/stid.h"
#include "obs/metrics.h"
#include "store/block_cache.h"
#include "store/format.h"
#include "store/store.h"
#include "store/vfs.h"

namespace sidq {
namespace store {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

uint64_t FnvRecord(uint64_t h, uint64_t row, const StRecord& r) {
  h = FnvMix(h, row);
  h = FnvMix(h, r.sensor);
  h = FnvMix(h, static_cast<uint64_t>(r.t));
  h = FnvMix(h, Bits(r.loc.x));
  h = FnvMix(h, Bits(r.loc.y));
  h = FnvMix(h, Bits(r.value));
  h = FnvMix(h, Bits(r.stddev));
  return h;
}

// Deterministic op stream for the model test (R2 bans rand()).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t x = (*state += 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Same synthetic stream as store_test.cc (NaN row keeps bit-identity
// honest through the checksum).
StRecord MakeRecord(uint64_t i) {
  StRecord r;
  r.sensor = 1 + (i % 5);
  r.t = static_cast<Timestamp>(1000 * i);
  r.loc = geometry::Point(0.25 * static_cast<double>(i),
                          -0.5 * static_cast<double>(i));
  r.value = 20.0 + 0.125 * static_cast<double>(i);
  r.stddev = 0.5;
  if (i == 7) r.value = std::numeric_limits<double>::quiet_NaN();
  return r;
}

ColumnarBlock MakeBlock(size_t rows, uint64_t salt) {
  ColumnarBlock b;
  for (size_t i = 0; i < rows; ++i) b.Add(MakeRecord(salt * 100 + i));
  return b;
}

// --- reference model -----------------------------------------------------
//
// Mirrors BlockCache semantics exactly: per-shard table + LRU list of
// unpinned keys, byte accounting, and the four counters. Shard placement
// is delegated to the real cache's own (pure) ShardOf so the two stay in
// lockstep by construction.

struct ModelEntry {
  size_t charge = 0;
  uint32_t pins = 0;
  bool in_lru = false;
  std::list<uint64_t>::iterator lru_it;
};

struct ModelShard {
  std::map<uint64_t, ModelEntry> table;
  std::list<uint64_t> lru;  // front = next victim; unpinned keys only
  size_t resident = 0;
  size_t unpinned = 0;
  uint64_t hits = 0, misses = 0, inserts = 0, evictions = 0;
};

class CacheModel {
 public:
  CacheModel(const BlockCache& cache, size_t shard_capacity)
      : cache_(cache), shard_capacity_(shard_capacity),
        shards_(cache.num_shards()) {}

  void Lookup(uint64_t key, bool hit_expected_to_pin) {
    ModelShard& sh = shards_[cache_.ShardOf(key)];
    auto it = sh.table.find(key);
    if (it == sh.table.end()) {
      ++sh.misses;
      return;
    }
    ++sh.hits;
    PinLocked(sh, it->second);
    if (!hit_expected_to_pin) Unpin(key);
  }

  bool WasHit(uint64_t key) const {
    const ModelShard& sh = shards_[cache_.ShardOf(key)];
    return sh.table.count(key) != 0;
  }

  void Insert(uint64_t key, size_t charge, bool keep_pin) {
    ModelShard& sh = shards_[cache_.ShardOf(key)];
    auto it = sh.table.find(key);
    if (it != sh.table.end()) {
      PinLocked(sh, it->second);
    } else {
      ModelEntry e;
      e.charge = charge;
      e.pins = 1;
      sh.resident += charge;
      ++sh.inserts;
      sh.table.emplace(key, e);
      Evict(sh);
    }
    if (!keep_pin) Unpin(key);
  }

  void Unpin(uint64_t key) {
    ModelShard& sh = shards_[cache_.ShardOf(key)];
    auto it = sh.table.find(key);
    if (it == sh.table.end()) return;  // invalidated while pinned
    ModelEntry& e = it->second;
    if (e.pins == 0) return;
    if (--e.pins == 0) {
      e.lru_it = sh.lru.insert(sh.lru.end(), key);
      e.in_lru = true;
      sh.unpinned += e.charge;
      Evict(sh);
    }
  }

  void EraseSegment(uint32_t segment) {
    for (ModelShard& sh : shards_) {
      for (auto it = sh.table.begin(); it != sh.table.end();) {
        auto next = std::next(it);
        if (BlockCache::SegmentOf(it->first) == segment) {
          EraseEntry(sh, it, /*eviction=*/false);
        }
        it = next;
      }
    }
  }

  void Clear() {
    for (ModelShard& sh : shards_) {
      for (auto it = sh.table.begin(); it != sh.table.end();) {
        auto next = std::next(it);
        EraseEntry(sh, it, /*eviction=*/false);
        it = next;
      }
    }
  }

  BlockCache::Stats Aggregate() const {
    BlockCache::Stats out;
    for (const ModelShard& sh : shards_) {
      out.hits += sh.hits;
      out.misses += sh.misses;
      out.inserts += sh.inserts;
      out.evictions += sh.evictions;
      out.resident_bytes += sh.resident;
      out.unpinned_bytes += sh.unpinned;
      out.resident_blocks += sh.table.size();
      for (const auto& [key, e] : sh.table) {
        (void)key;
        if (e.pins > 0) ++out.pinned_blocks;
      }
    }
    return out;
  }

  // Invariant: a pinned key is always resident.
  bool Resident(uint64_t key) const {
    const ModelShard& sh = shards_[cache_.ShardOf(key)];
    return sh.table.count(key) != 0;
  }

 private:
  void PinLocked(ModelShard& sh, ModelEntry& e) {
    if (e.in_lru) {
      sh.lru.erase(e.lru_it);
      e.in_lru = false;
      sh.unpinned -= e.charge;
    }
    ++e.pins;
  }

  void Evict(ModelShard& sh) {
    if (shard_capacity_ == 0) return;
    while (sh.unpinned > shard_capacity_ && !sh.lru.empty()) {
      auto it = sh.table.find(sh.lru.front());
      EraseEntry(sh, it, /*eviction=*/true);
    }
  }

  void EraseEntry(ModelShard& sh, std::map<uint64_t, ModelEntry>::iterator it,
                  bool eviction) {
    ModelEntry& e = it->second;
    if (e.in_lru) {
      sh.lru.erase(e.lru_it);
      sh.unpinned -= e.charge;
    }
    sh.resident -= e.charge;
    if (eviction) ++sh.evictions;
    sh.table.erase(it);
  }

  const BlockCache& cache_;
  size_t shard_capacity_;
  std::vector<ModelShard> shards_;
};

void ExpectStatsEqual(const BlockCache::Stats& got,
                      const BlockCache::Stats& want, const char* where) {
  EXPECT_EQ(got.hits, want.hits) << where;
  EXPECT_EQ(got.misses, want.misses) << where;
  EXPECT_EQ(got.inserts, want.inserts) << where;
  EXPECT_EQ(got.evictions, want.evictions) << where;
  EXPECT_EQ(got.resident_bytes, want.resident_bytes) << where;
  EXPECT_EQ(got.unpinned_bytes, want.unpinned_bytes) << where;
  EXPECT_EQ(got.resident_blocks, want.resident_blocks) << where;
  EXPECT_EQ(got.pinned_blocks, want.pinned_blocks) << where;
}

void RunModelWorkout(size_t capacity_bytes, size_t shards, uint64_t seed,
                     int ops) {
  obs::MetricsRegistry metrics;
  BlockCache cache(capacity_bytes, shards, &metrics);
  CacheModel model(cache, cache.shard_capacity_bytes());

  // Held pins: (key, rows, handle). Blocks of 1..8 rows over a small key
  // space force constant collision/eviction traffic.
  std::vector<std::pair<uint64_t, PinnedBlock>> held;
  uint64_t state = seed;
  for (int op = 0; op < ops; ++op) {
    const uint64_t r = SplitMix64(&state);
    const uint32_t segment = static_cast<uint32_t>(r % 3);
    const uint64_t offset = ((r >> 8) % 12) * 1024;
    const uint64_t key = BlockCache::KeyOf(segment, offset);
    const size_t rows = 1 + ((r >> 16) % 8);
    const bool keep = ((r >> 24) & 1) != 0;
    switch ((r >> 32) % 10) {
      case 0:
      case 1:
      case 2: {  // Lookup
        const bool expect_hit = model.WasHit(key);
        PinnedBlock pin = cache.Lookup(segment, offset);
        EXPECT_EQ(static_cast<bool>(pin), expect_hit) << "op " << op;
        model.Lookup(key, /*hit_expected_to_pin=*/expect_hit && keep);
        if (pin && keep) {
          held.emplace_back(key, std::move(pin));
        }
        // else: pin destructs here -> model already unpinned above
        break;
      }
      case 3:
      case 4:
      case 5:
      case 6: {  // Insert
        PinnedBlock pin = cache.Insert(segment, offset, MakeBlock(rows, r));
        ASSERT_TRUE(pin) << "op " << op;
        model.Insert(key, BlockCache::ChargeOf(rows), keep);
        if (keep) held.emplace_back(key, std::move(pin));
        break;
      }
      case 7: {  // Release a held pin
        if (!held.empty()) {
          const size_t victim = (r >> 40) % held.size();
          const uint64_t k = held[victim].first;
          held[victim].second.Release();
          held.erase(held.begin() + static_cast<ptrdiff_t>(victim));
          model.Unpin(k);
        }
        break;
      }
      case 8: {  // Invalidate one segment
        cache.EraseSegment(segment);
        model.EraseSegment(segment);
        break;
      }
      case 9: {  // Rarely, drop everything
        if ((r >> 48) % 8 == 0) {
          cache.Clear();
          model.Clear();
        }
        break;
      }
    }

    const BlockCache::Stats got = cache.GetStats();
    ExpectStatsEqual(got, model.Aggregate(),
                     ("op " + std::to_string(op)).c_str());
    // Budget invariant: unpinned bytes never exceed the total budget
    // (each shard is bounded individually; the sum is bounded too).
    if (capacity_bytes != 0) {
      EXPECT_LE(got.unpinned_bytes,
                cache.shard_capacity_bytes() * cache.num_shards())
          << "op " << op;
    } else {
      EXPECT_EQ(got.evictions, 0u) << "op " << op;
    }
    // Pinned entries are never evicted: every held pin's block is alive
    // and, unless explicitly invalidated, resident.
    for (const auto& [k, pin] : held) {
      ASSERT_TRUE(pin.get() != nullptr) << "op " << op;
      ASSERT_GE(pin->size(), 1u) << "op " << op;  // touch it: ASan-visible
      EXPECT_EQ(model.Resident(k),
                static_cast<bool>(cache.Lookup(BlockCache::SegmentOf(k),
                                               k & ((1ull << 40) - 1))))
          << "op " << op;
      model.Lookup(k, false);  // mirror the probe lookup just issued
    }
    if (testing::Test::HasFatalFailure() ||
        testing::Test::HasNonfatalFailure()) {
      FAIL() << "model divergence at op " << op;
    }
  }
  held.clear();

  // Metrics mirror the stats counters exactly.
  const BlockCache::Stats end = cache.GetStats();
  const obs::MetricsSnapshot snap = metrics.Snapshot();
  std::map<std::string, int64_t> exported;
  for (const obs::CounterValue& c : snap.counters) exported[c.name] = c.value;
  for (const obs::GaugeValue& g : snap.gauges) exported[g.name] = g.value;
  EXPECT_EQ(exported["store.cache.hit"], static_cast<int64_t>(end.hits));
  EXPECT_EQ(exported["store.cache.miss"], static_cast<int64_t>(end.misses));
  EXPECT_EQ(exported["store.cache.insert"],
            static_cast<int64_t>(end.inserts));
  EXPECT_EQ(exported["store.cache.eviction"],
            static_cast<int64_t>(end.evictions));
  EXPECT_EQ(exported["store.cache.resident_bytes"],
            static_cast<int64_t>(end.resident_bytes));
}

TEST(StoreCacheTest, ModelConformanceTinyBudget) {
  // Budget of ~2 blocks per shard: eviction on nearly every unpin.
  RunModelWorkout(2 * BlockCache::ChargeOf(8) * 2, 2, 0x5eed, 600);
}

TEST(StoreCacheTest, ModelConformanceSingleShard) {
  RunModelWorkout(3 * BlockCache::ChargeOf(8), 1, 0xc0ffee, 600);
}

TEST(StoreCacheTest, ModelConformanceUnbounded) {
  RunModelWorkout(0, 4, 0xdead, 400);
}

TEST(StoreCacheTest, PinnedBlockSurvivesInvalidation) {
  BlockCache cache(BlockCache::ChargeOf(8), 1, nullptr);
  PinnedBlock pin = cache.Insert(3, 0, MakeBlock(4, 9));
  ASSERT_TRUE(pin);
  cache.EraseSegment(3);
  // The entry is gone from the table (later lookups miss) ...
  EXPECT_FALSE(cache.Lookup(3, 0));
  // ... but the pinned decode stays alive until the pin drops.
  EXPECT_EQ(pin->size(), 4u);
  pin.Release();
  const BlockCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.resident_blocks, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
}

// --- fixed-budget scan differential --------------------------------------

StoreOptions DiffOptions(size_t cache_bytes) {
  StoreOptions o;
  o.block_records = 8;
  o.segment_target_blocks = 4;
  o.field_name = "diff";
  o.cache_bytes = cache_bytes;
  o.cache_shards = 1;  // makes "budget = one block" literal
  return o;
}

constexpr uint64_t kDiffRows = 64;  // 8 blocks over 2 segments

// Writes kDiffRows rows, commits, corrupts an interior block of segment
// 0, and reopens once so the quarantine verdict is established.
void BuildPockedStore(MemVfs* vfs) {
  {
    StatusOr<std::unique_ptr<Store>> store =
        Store::Open(vfs, "db", DiffOptions(0));
    ASSERT_TRUE(store.ok()) << store.status();
    for (uint64_t i = 0; i < kDiffRows; ++i) {
      ASSERT_TRUE((*store)->Append(MakeRecord(i)).ok());
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  StatusOr<std::string> seg = vfs->ReadFile("db/000000.seg");
  ASSERT_TRUE(seg.ok());
  const ParsedBlock first = ParseBlockAt(*seg, 0);
  ASSERT_EQ(first.defect, BlockDefect::kNone);
  // One flipped payload bit in block 1 (rows 8..15): kBadCrc quarantine.
  ASSERT_TRUE(vfs->CorruptByte("db/000000.seg", first.bytes_consumed + 20,
                               0x10).ok());
}

TEST(StoreCacheTest, FixedBudgetScanChecksumDifferential) {
  // Expected stream: every row except the quarantined block's 8..15.
  uint64_t want = kFnvOffset;
  for (uint64_t i = 0; i < kDiffRows; ++i) {
    if (i >= 8 && i < 16) continue;
    want = FnvRecord(want, i, MakeRecord(i));
  }

  const std::vector<size_t> budgets = {
      BlockCache::ChargeOf(8),  // exactly one decoded block
      1ull << 20,               // 1 MB
      64ull << 20,              // 64 MB
      0,                        // unbounded
  };
  for (size_t budget : budgets) {
    MemVfs vfs;
    BuildPockedStore(&vfs);
    if (HasFatalFailure()) return;
    StatusOr<std::unique_ptr<Store>> store =
        Store::Open(&vfs, "db", DiffOptions(budget));
    ASSERT_TRUE(store.ok()) << store.status();
    const Store& s = **store;
    ASSERT_EQ(s.recovery().quarantined.size(), 1u) << "budget " << budget;
    EXPECT_EQ(s.recovery().rows_lost, 8u);

    // Two full scans: the second exercises the hit path under every
    // budget (or the full-eviction path at one block).
    for (int pass = 0; pass < 2; ++pass) {
      uint64_t got = kFnvOffset;
      ASSERT_TRUE(s.Scan([&](uint64_t row, const StRecord& rec) {
                     got = FnvRecord(got, row, rec);
                   }).ok())
          << "budget " << budget << " pass " << pass;
      EXPECT_EQ(got, want) << "budget " << budget << " pass " << pass
                           << ": scan bytes depend on cache budget";
    }

    const BlockCache::Stats stats = s.cache_stats();
    if (budget == 0 || budget >= (1ull << 20)) {
      // Everything fits: the second scan (and recovery re-reads) hit.
      EXPECT_EQ(stats.evictions, 0u) << "budget " << budget;
      EXPECT_GT(stats.hits, 0u) << "budget " << budget;
    } else {
      // One-block budget: the scan cycles the cache.
      EXPECT_GT(stats.evictions, 0u);
    }
    // Budget invariant after the dust settles (no pins held here).
    if (budget != 0) {
      EXPECT_LE(stats.unpinned_bytes, budget) << "budget " << budget;
    }
  }
}

TEST(StoreCacheTest, UnboundedAndBoundedAgreeOnCleanStore) {
  // No quarantine: every budget, including "one block", serves the whole
  // stream bit-identically.
  uint64_t want = kFnvOffset;
  for (uint64_t i = 0; i < kDiffRows; ++i) {
    want = FnvRecord(want, i, MakeRecord(i));
  }
  for (size_t budget : {BlockCache::ChargeOf(8), size_t{0}}) {
    MemVfs vfs;
    {
      StatusOr<std::unique_ptr<Store>> store =
          Store::Open(&vfs, "db", DiffOptions(0));
      ASSERT_TRUE(store.ok());
      for (uint64_t i = 0; i < kDiffRows; ++i) {
        ASSERT_TRUE((*store)->Append(MakeRecord(i)).ok());
      }
      ASSERT_TRUE((*store)->Close().ok());
    }
    StatusOr<std::unique_ptr<Store>> store =
        Store::Open(&vfs, "db", DiffOptions(budget));
    ASSERT_TRUE(store.ok()) << store.status();
    uint64_t got = kFnvOffset;
    ASSERT_TRUE((*store)
                    ->Scan([&](uint64_t row, const StRecord& rec) {
                      got = FnvRecord(got, row, rec);
                    })
                    .ok());
    EXPECT_EQ(got, want) << "budget " << budget;
  }
}

}  // namespace
}  // namespace store
}  // namespace sidq

#include <gtest/gtest.h>

#include "outlier/stid_outliers.h"
#include "outlier/trajectory_outliers.h"
#include "sim/noise.h"
#include "sim/sensor_field.h"

namespace sidq {
namespace outlier {
namespace {

using geometry::BBox;
using geometry::Point;

Trajectory StraightLine(int n, double speed = 10.0) {
  Trajectory tr(1);
  for (int i = 0; i < n; ++i) {
    tr.AppendUnordered(
        TrajectoryPoint(i * 1000, Point(speed * i, 0.0)));
  }
  return tr;
}

// Dirty trajectory fixture shared by detector tests.
struct DirtyTraj {
  Trajectory truth;
  Trajectory dirty;
  std::vector<bool> labels;
};

DirtyTraj MakeDirty(double rate, uint64_t seed, int n = 600) {
  Rng rng(seed);
  DirtyTraj out;
  out.truth = StraightLine(n);
  out.dirty =
      sim::AddOutliers(out.truth, rate, 150.0, 400.0, &rng, &out.labels);
  return out;
}

// -------------------------------------------------------- SpeedConstraint

TEST(SpeedConstraintTest, FlagsJumpOutAndBack) {
  const DirtyTraj d = MakeDirty(0.05, 1);
  SpeedConstraintDetector detector;
  const auto flags = detector.Detect(d.dirty);
  ASSERT_TRUE(flags.ok());
  const DetectionQuality q = EvaluateDetection(flags.value(), d.labels);
  EXPECT_GT(q.precision, 0.9);
  EXPECT_GT(q.recall, 0.9);
}

TEST(SpeedConstraintTest, CleanTrajectoryNoFlags) {
  SpeedConstraintDetector detector;
  const auto flags = detector.Detect(StraightLine(100));
  ASSERT_TRUE(flags.ok());
  for (bool f : flags.value()) EXPECT_FALSE(f);
}

TEST(SpeedConstraintTest, RejectsUnordered) {
  Trajectory tr(1);
  tr.AppendUnordered(TrajectoryPoint(1000, {0, 0}));
  tr.AppendUnordered(TrajectoryPoint(0, {1, 0}));
  EXPECT_FALSE(SpeedConstraintDetector().Detect(tr).ok());
}

// ------------------------------------------------------------ Statistical

TEST(StatisticalTest, FlagsGrossOutliers) {
  const DirtyTraj d = MakeDirty(0.04, 2);
  StatisticalDetector detector;
  const auto flags = detector.Detect(d.dirty);
  ASSERT_TRUE(flags.ok());
  const DetectionQuality q = EvaluateDetection(flags.value(), d.labels);
  EXPECT_GT(q.f1, 0.75);
}

TEST(StatisticalTest, TinyInputNoFlags) {
  StatisticalDetector detector;
  const auto flags = detector.Detect(StraightLine(2));
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->size(), 2u);
}

// ------------------------------------------------------------- Predictive

TEST(PredictiveTest, DetectsAndRepairs) {
  const DirtyTraj d = MakeDirty(0.05, 3);
  PredictiveDetector detector;
  const auto flags = detector.Detect(d.dirty);
  ASSERT_TRUE(flags.ok());
  const DetectionQuality q = EvaluateDetection(flags.value(), d.labels);
  EXPECT_GT(q.f1, 0.8);

  const auto repaired = detector.Repair(d.dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(RmseBetween(d.truth, repaired.value()).value(),
            RmseBetween(d.truth, d.dirty).value() * 0.3);
}

TEST(PredictiveTest, HonestOnCleanData) {
  PredictiveDetector detector;
  const auto flags = detector.Detect(StraightLine(200));
  ASSERT_TRUE(flags.ok());
  size_t flagged = 0;
  for (bool f : flags.value()) flagged += f ? 1 : 0;
  EXPECT_LT(flagged, 3u);
}

// ---------------------------------------------------------- Remove/Repair

TEST(RemoveRepairTest, RemoveFlaggedDropsPoints) {
  const Trajectory tr = StraightLine(10);
  std::vector<bool> flags(10, false);
  flags[3] = flags[7] = true;
  const auto removed = RemoveFlagged(tr, flags);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->size(), 8u);
  EXPECT_FALSE(RemoveFlagged(tr, std::vector<bool>(5)).ok());
}

TEST(RemoveRepairTest, RepairFlaggedInterpolates) {
  Trajectory tr = StraightLine(10);
  tr.mutable_points()[5].p = Point(1000, 1000);  // corrupted
  std::vector<bool> flags(10, false);
  flags[5] = true;
  const auto repaired = RepairFlagged(tr, flags);
  ASSERT_TRUE(repaired.ok());
  EXPECT_NEAR((*repaired)[5].p.x, 50.0, 1e-9);
  EXPECT_NEAR((*repaired)[5].p.y, 0.0, 1e-9);
}

TEST(RemoveRepairTest, RepairFlaggedEndpoints) {
  Trajectory tr = StraightLine(5);
  tr.mutable_points()[0].p = Point(-500, 0);
  std::vector<bool> flags(5, false);
  flags[0] = true;
  const auto repaired = RepairFlagged(tr, flags);
  ASSERT_TRUE(repaired.ok());
  // Snaps to the nearest unflagged neighbour.
  EXPECT_NEAR((*repaired)[0].p.x, 10.0, 1e-9);
}

TEST(RemoveRepairTest, StageRepairsSpeedOutliers) {
  const DirtyTraj d = MakeDirty(0.05, 4);
  SpeedOutlierRepairStage stage;
  EXPECT_EQ(stage.name(), "speed_outlier_repair");
  const auto repaired = stage.Apply(d.dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(RmseBetween(d.truth, repaired.value()).value(),
            RmseBetween(d.truth, d.dirty).value());
}

TEST(EvaluateDetectionTest, Formulas) {
  const std::vector<bool> pred{true, true, false, false};
  const std::vector<bool> truth{true, false, true, false};
  const DetectionQuality q = EvaluateDetection(pred, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.f1, 0.5);
}

// --------------------------------------------------------------- STDBSCAN

std::vector<StRecord> MakeTwoClustersAndNoise() {
  std::vector<StRecord> records;
  Rng rng(5);
  // Cluster A near (0,0), value ~10.
  for (int i = 0; i < 30; ++i) {
    records.emplace_back(i, i * 1000,
                         Point(rng.Gaussian(0, 30), rng.Gaussian(0, 30)),
                         10.0 + rng.Gaussian(0, 0.5));
  }
  // Cluster B near (5000,0), value ~12, same time range.
  for (int i = 0; i < 30; ++i) {
    records.emplace_back(100 + i, i * 1000,
                         Point(5000 + rng.Gaussian(0, 30),
                               rng.Gaussian(0, 30)),
                         12.0 + rng.Gaussian(0, 0.5));
  }
  // Isolated noise points.
  records.emplace_back(200, 15'000, Point(2500, 2500), 11.0);
  records.emplace_back(201, 15'000, Point(-2500, 2500), 11.0);
  return records;
}

TEST(StDbscanTest, FindsTwoClustersAndNoise) {
  StDbscan::Options opts;
  opts.eps_space_m = 120.0;
  opts.eps_time_ms = 10'000;
  opts.delta_value = 3.0;
  opts.min_pts = 4;
  const auto result = StDbscan(opts).Cluster(MakeTwoClustersAndNoise());
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.labels[60], -1);
  EXPECT_EQ(result.labels[61], -1);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_NE(result.labels[0], result.labels[35]);
}

TEST(StDbscanTest, TemporalSeparationSplitsClusters) {
  // Same location, two far-apart time windows: eps_time separates them.
  std::vector<StRecord> records;
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    records.emplace_back(i, i * 1000,
                         Point(rng.Gaussian(0, 20), rng.Gaussian(0, 20)),
                         5.0);
  }
  for (int i = 0; i < 20; ++i) {
    records.emplace_back(50 + i, 10'000'000 + i * 1000,
                         Point(rng.Gaussian(0, 20), rng.Gaussian(0, 20)),
                         5.0);
  }
  StDbscan::Options opts;
  opts.eps_space_m = 100.0;
  opts.eps_time_ms = 60'000;
  opts.min_pts = 4;
  const auto result = StDbscan(opts).Cluster(records);
  EXPECT_EQ(result.num_clusters, 2);
}

TEST(StDbscanTest, EmptyInput) {
  const auto result = StDbscan().Cluster({});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.labels.empty());
}

// ------------------------------------------------------- StNeighborhood

TEST(StNeighborhoodTest, FlagsThematicSpikes) {
  Rng rng(7);
  const BBox bounds(0, 0, 2000, 2000);
  const auto field = sim::ScalarField::MakeRandom(bounds, 3, 10.0, 20.0, 400,
                                                  800, 3600, &rng);
  const auto sensors = sim::DeploySensors(bounds, 40, &rng);
  const StDataset truth =
      sim::SampleField(field, sensors, 0, 60'000, 25, "pm25");
  std::vector<std::vector<bool>> labels;
  const StDataset spiked =
      sim::AddValueSpikes(truth, 0.03, 60.0, &rng, &labels);

  StNeighborhoodDetector detector;
  const auto records = spiked.AllRecords();
  const auto flags = detector.Detect(records);

  // Align flags with labels (records are emitted series by series).
  std::vector<bool> flat_labels;
  for (const auto& series_labels : labels) {
    flat_labels.insert(flat_labels.end(), series_labels.begin(),
                       series_labels.end());
  }
  const DetectionQuality q = EvaluateDetection(flags, flat_labels);
  EXPECT_GT(q.recall, 0.75);
  EXPECT_GT(q.precision, 0.5);
}

TEST(StNeighborhoodTest, NoNeighborsNoFlags) {
  std::vector<StRecord> records{
      StRecord(1, 0, Point(0, 0), 100.0),
      StRecord(2, 0, Point(100000, 0), -50.0),
  };
  const auto flags = StNeighborhoodDetector().Detect(records);
  EXPECT_FALSE(flags[0]);
  EXPECT_FALSE(flags[1]);
}

// Parameterised contamination sweep: detection stays useful as the outlier
// rate grows, degrading gracefully (tutorial claim about statistics-based
// methods needing enough clean context).
class ContaminationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ContaminationSweep, PredictiveF1AboveFloor) {
  const DirtyTraj d = MakeDirty(GetParam(), 42);
  PredictiveDetector detector;
  const auto flags = detector.Detect(d.dirty);
  ASSERT_TRUE(flags.ok());
  const DetectionQuality q = EvaluateDetection(flags.value(), d.labels);
  EXPECT_GT(q.f1, 0.55) << "rate=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rates, ContaminationSweep,
                         ::testing::Values(0.01, 0.05, 0.10, 0.15));

}  // namespace
}  // namespace outlier
}  // namespace sidq

#include <cmath>

#include <gtest/gtest.h>

#include "sim/noise.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/calibration.h"
#include "uncertainty/completion.h"
#include "uncertainty/fusion.h"
#include "uncertainty/interpolation.h"
#include "uncertainty/smoothing.h"

namespace sidq {
namespace uncertainty {
namespace {

using geometry::BBox;
using geometry::Point;

Trajectory StraightLine(int n, Timestamp dt = 1000, double speed = 10.0) {
  Trajectory tr(1);
  for (int i = 0; i < n; ++i) {
    tr.AppendUnordered(TrajectoryPoint(
        i * dt, Point(speed * TimestampToSeconds(i * dt), 0.0)));
  }
  return tr;
}

// --------------------------------------------------------------- Smoothing

TEST(SmoothingTest, MovingAverageReducesNoise) {
  Rng rng(1);
  const Trajectory truth = StraightLine(300);
  const Trajectory noisy = sim::AddGpsNoise(truth, 10.0, &rng);
  const auto smooth = MovingAverageSmooth(noisy, 3);
  ASSERT_TRUE(smooth.ok());
  EXPECT_LT(RmseBetween(truth, smooth.value()).value(),
            RmseBetween(truth, noisy).value() * 0.6);
}

TEST(SmoothingTest, MovingAveragePreservesTimestamps) {
  const Trajectory truth = StraightLine(20);
  const auto smooth = MovingAverageSmooth(truth, 2);
  ASSERT_TRUE(smooth.ok());
  ASSERT_EQ(smooth->size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ((*smooth)[i].t, truth[i].t);
  }
}

TEST(SmoothingTest, ExponentialAlphaOneIsIdentity) {
  const Trajectory truth = StraightLine(10);
  const auto out = ExponentialSmooth(truth, 1.0);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(MeanErrorBetween(truth, out.value()).value(), 0.0, 1e-12);
}

TEST(SmoothingTest, ExponentialRejectsBadAlpha) {
  const Trajectory truth = StraightLine(10);
  EXPECT_FALSE(ExponentialSmooth(truth, 0.0).ok());
  EXPECT_FALSE(ExponentialSmooth(truth, 1.5).ok());
}

TEST(SmoothingTest, StagesWork) {
  Rng rng(2);
  const Trajectory truth = StraightLine(100);
  const Trajectory noisy = sim::AddGpsNoise(truth, 8.0, &rng);
  MovingAverageStage ma(2);
  ExponentialSmoothStage ex(0.4);
  EXPECT_EQ(ma.name(), "moving_average_smooth");
  EXPECT_EQ(ex.name(), "exponential_smooth");
  EXPECT_TRUE(ma.Apply(noisy).ok());
  EXPECT_TRUE(ex.Apply(noisy).ok());
}

// ------------------------------------------------------------- Calibration

TEST(CalibrationTest, SnapsToCorpusAnchors) {
  Rng rng(3);
  // Corpus: many clean trajectories on the same straight road.
  std::vector<Trajectory> corpus;
  for (int k = 0; k < 10; ++k) {
    corpus.push_back(StraightLine(100));
  }
  TrajectoryCalibrator::Options opts;
  opts.anchor_cell_m = 20.0;
  opts.min_points_per_anchor = 5;
  opts.snap_radius_m = 30.0;
  TrajectoryCalibrator calibrator(opts);
  calibrator.BuildAnchors(corpus);
  EXPECT_GT(calibrator.num_anchors(), 10u);

  const Trajectory truth = StraightLine(100);
  const Trajectory noisy = sim::AddGpsNoise(truth, 8.0, &rng);
  const auto calibrated = calibrator.Calibrate(noisy);
  ASSERT_TRUE(calibrated.ok());
  EXPECT_LT(RmseBetween(truth, calibrated.value()).value(),
            RmseBetween(truth, noisy).value());
}

TEST(CalibrationTest, FarPointsUntouched) {
  TrajectoryCalibrator calibrator;
  calibrator.SetAnchors({Point(0, 0)});
  Trajectory tr(1);
  tr.AppendUnordered(TrajectoryPoint(0, Point(1000, 1000)));
  const auto out = calibrator.Calibrate(tr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].p, Point(1000, 1000));
}

TEST(CalibrationTest, NeedsAnchors) {
  TrajectoryCalibrator calibrator;
  EXPECT_FALSE(calibrator.Calibrate(StraightLine(5)).ok());
}

// -------------------------------------------------------------- Completion

TEST(CompletionTest, LinearCompleteFillsGaps) {
  Trajectory sparse(1);
  sparse.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));
  sparse.AppendUnordered(TrajectoryPoint(10'000, Point(100, 0)));
  const auto full = LinearComplete(sparse, 1000);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 11u);
  EXPECT_NEAR((*full)[5].p.x, 50.0, 1e-9);
  EXPECT_TRUE(full->IsTimeOrdered());
}

TEST(CompletionTest, LinearCompleteRejectsBadInterval) {
  EXPECT_FALSE(LinearComplete(StraightLine(3), 0).ok());
}

TEST(CompletionTest, RoadCompleteFollowsNetwork) {
  Rng rng(4);
  sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(8, 8, 150.0, 0.0, 0.0, &rng);
  sim::TrajectorySimulator::Options sopts;
  sopts.mean_speed_mps = 12.0;
  sopts.speed_jitter = 0.5;
  sim::TrajectorySimulator simulator(sopts, &rng);
  const auto truth = simulator.RandomOnNetwork(net, 16, 1);
  ASSERT_TRUE(truth.ok());
  // Keep one point in 15 (sparse sampling).
  const Trajectory sparse = sim::Resample(truth.value(), 15'000);
  ASSERT_LT(sparse.size(), truth->size() / 5);

  RoadCompleter::Options opts;
  opts.target_interval_ms = 1000;
  RoadCompleter completer(&net, opts);
  const auto road = completer.Complete(sparse);
  const auto linear = LinearComplete(sparse, 1000);
  ASSERT_TRUE(road.ok());
  ASSERT_TRUE(linear.ok());
  EXPECT_GT(road->size(), sparse.size() * 5);

  // Error vs ground truth at reconstructed times: the road-aware completion
  // should beat straight-line interpolation on a grid network.
  auto mean_err = [&](const Trajectory& reconstructed) {
    double err = 0.0;
    size_t n = 0;
    for (const auto& pt : reconstructed.points()) {
      auto p = truth->InterpolateAt(pt.t);
      if (p.ok()) {
        err += geometry::Distance(pt.p, p.value());
        ++n;
      }
    }
    return err / std::max<size_t>(1, n);
  };
  EXPECT_LT(mean_err(road.value()), mean_err(linear.value()));
}

// ----------------------------------------------------------- Interpolation

class InterpolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bounds_ = BBox(0, 0, 3000, 3000);
    field_ = std::make_unique<sim::ScalarField>(sim::ScalarField::MakeRandom(
        bounds_, 4, 10.0, 30.0, 400, 900, 3600, &rng_));
    sensors_ = sim::DeploySensors(bounds_, 60, &rng_);
    data_ = sim::SampleField(*field_, sensors_, 0, 60'000, 30, "pm25");
  }

  double EvalError(const StInterpolator& interp, int trials) {
    double err = 0.0;
    int n = 0;
    Rng rng(99);
    for (int i = 0; i < trials; ++i) {
      const Point p(rng.Uniform(200, 2800), rng.Uniform(200, 2800));
      const Timestamp t = 60'000 * rng.UniformInt(1, 28);
      auto est = interp.Estimate(p, t);
      if (est.ok()) {
        err += std::abs(est.value() - field_->Value(p, t));
        ++n;
      }
    }
    return n > 0 ? err / n : 1e9;
  }

  Rng rng_{5};
  BBox bounds_;
  std::unique_ptr<sim::ScalarField> field_;
  std::vector<Point> sensors_;
  StDataset data_;
};

TEST_F(InterpolationTest, IdwBeatsGlobalMeanBaseline) {
  IdwInterpolator idw(&data_);
  // Baseline: predict the global mean everywhere.
  double mean = 0.0;
  size_t n = 0;
  for (const auto& r : data_.AllRecords()) {
    mean += r.value;
    ++n;
  }
  mean /= n;
  Rng rng(98);
  double idw_err = 0.0, base_err = 0.0;
  for (int i = 0; i < 100; ++i) {
    const Point p(rng.Uniform(200, 2800), rng.Uniform(200, 2800));
    const Timestamp t = 60'000 * rng.UniformInt(1, 28);
    idw_err += std::abs(idw.Estimate(p, t).value() - field_->Value(p, t));
    base_err += std::abs(mean - field_->Value(p, t));
  }
  EXPECT_LT(idw_err, base_err);
}

TEST_F(InterpolationTest, KernelReasonableError) {
  KernelInterpolator::Options opts;
  opts.bandwidth_m = 350.0;
  KernelInterpolator kern(&data_, opts);
  EXPECT_LT(EvalError(kern, 100), 8.0);
}

TEST_F(InterpolationTest, TrendClustersFormed) {
  TrendClusterInterpolator tc(&data_);
  EXPECT_GT(tc.num_clusters(), 0);
  EXPECT_EQ(tc.cluster_of().size(), data_.num_sensors());
  EXPECT_LT(EvalError(tc, 100), 10.0);
}

TEST_F(InterpolationTest, ExactAtSensorLocation) {
  IdwInterpolator::Options opts;
  opts.k = 1;
  IdwInterpolator idw(&data_, opts);
  const auto est = idw.Estimate(sensors_[0], 60'000);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value(), field_->Value(sensors_[0], 60'000), 1e-6);
}

TEST(InterpolationEdgeTest, EmptyDatasetFails) {
  StDataset empty("x");
  IdwInterpolator idw(&empty);
  EXPECT_FALSE(idw.Estimate(Point(0, 0), 0).ok());
  KernelInterpolator kern(&empty);
  EXPECT_FALSE(kern.Estimate(Point(0, 0), 0).ok());
}

TEST(PearsonTest, KnownValues) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

// ----------------------------------------------------------------- Fusion

TEST(FusionTest, ReducesMeasurementError) {
  Rng rng(6);
  const BBox bounds(0, 0, 1000, 1000);
  const auto field = sim::ScalarField::MakeRandom(bounds, 2, 10.0, 20.0, 300,
                                                  600, 3600, &rng);
  const auto sensors = sim::DeploySensors(bounds, 20, &rng);
  const StDataset truth =
      sim::SampleField(field, sensors, 0, 60'000, 20, "pm25");
  // Two noisy observations of the same deployment.
  const StDataset primary = sim::AddValueNoise(truth, 4.0, &rng);
  const StDataset auxiliary = sim::AddValueNoise(truth, 4.0, &rng);

  StidFusionOptions opts;
  opts.radius_m = 1.0;  // fuse only the co-located sensor
  opts.window_ms = 1000;
  const auto fused = FuseStid(primary, auxiliary, opts);
  ASSERT_TRUE(fused.ok());

  auto rmse = [&](const StDataset& ds) {
    double acc = 0.0;
    size_t n = 0;
    for (size_t s = 0; s < ds.num_sensors(); ++s) {
      for (size_t i = 0; i < ds.series()[s].size(); ++i) {
        const double e =
            ds.series()[s][i].value - truth.series()[s][i].value;
        acc += e * e;
        ++n;
      }
    }
    return std::sqrt(acc / n);
  };
  // Averaging two independent sigma=4 sources gives ~ 4/sqrt(2) = 2.83.
  EXPECT_LT(rmse(fused.value()), rmse(primary) * 0.8);
}

TEST(FusionTest, RejectsBadOptions) {
  StDataset a("x"), b("x");
  StidFusionOptions opts;
  opts.radius_m = -1;
  EXPECT_FALSE(FuseStid(a, b, opts).ok());
}

// Parameterised sparsity sweep: completion keeps error bounded as sampling
// drops (the tutorial's time-sparsity dimension).
class SparsitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SparsitySweep, LinearCompletionRestoresDensity) {
  const int keep_every = GetParam();
  const Trajectory truth = StraightLine(240);
  const auto sparse = sim::Resample(truth, keep_every * 1000);
  const auto full = LinearComplete(sparse, 1000);
  ASSERT_TRUE(full.ok());
  // On straight-line motion linear completion is exact.
  double err = 0.0;
  for (const auto& pt : full->points()) {
    err += std::abs(pt.p.x - 10.0 * TimestampToSeconds(pt.t));
  }
  EXPECT_LT(err / full->size(), 1e-9);
  EXPECT_GE(full->size(), truth.size() - keep_every);
}

INSTANTIATE_TEST_SUITE_P(KeepRates, SparsitySweep,
                         ::testing::Values(2, 5, 10, 30));

}  // namespace
}  // namespace uncertainty
}  // namespace sidq

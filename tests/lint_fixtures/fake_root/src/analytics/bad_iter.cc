#include <algorithm>
#include <unordered_map>
#include <vector>

namespace bad {

std::unordered_map<int, int> Counts();

int BadExport() {
  std::unordered_map<int, int> counts = Counts();
  int checksum = 0;
  for (const auto& [k, v] : counts) {  // expect-lint: R11
    checksum = checksum * 31 + k + v;
  }
  return checksum;
}

int SortedExport() {
  std::unordered_map<int, int> counts = Counts();
  std::vector<int> keys;
  for (const auto& [k, v] : counts) keys.push_back(k);  // cleared by sort
  std::sort(keys.begin(), keys.end());
  int checksum = 0;
  for (int k : keys) checksum = checksum * 31 + k;
  return checksum;
}

int JustifiedSum() {
  std::unordered_map<int, int> counts = Counts();
  int sum = 0;
  // sidq: allow-unordered-iter(fixture: commutative sum, order cannot
  // reach the caller)
  for (const auto& [k, v] : counts) {
    sum += v;
  }
  return sum;
}

}  // namespace bad

// R13 fixture: wall-clock sources in the streaming layer. A watermark fed
// by the machine clock makes lateness depend on arrival wall time, so the
// same event log replays differently every run.

#include <chrono>

namespace bad {

long WallClockWatermark() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // expect-lint: R13
}

long GlobalSteadyClockWatermark(long lateness_ms) {
  const long now = SteadyClock::Global()->NowMs();  // expect-lint: R13
  return now - lateness_ms;
}

// Clean pattern: the watermark is a pure function of admitted EVENT time.
long EventTimeWatermark(long max_admitted_event_t, long lateness_ms) {
  return max_admitted_event_t - lateness_ms;
}

}  // namespace bad

// expect-lint: R4
namespace bad {
using namespace std;  // expect-lint: R3
inline int Seed() { return rand(); }  // expect-lint: R2
inline int* Leak() { return new int(7); }  // expect-lint: R5
}  // namespace bad

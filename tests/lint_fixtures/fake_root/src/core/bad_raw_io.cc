#include <cstdio>
#include <fstream>

namespace bad {

void WriteReportOfstream(const char* path) {
  std::ofstream out(path);  // expect-lint: R15
  out << "data\n";
}

void WriteReportFopen(const char* path) {
  FILE* f = std::fopen(path, "wb");  // expect-lint: R15
  if (f != nullptr) {
    std::fclose(f);
  }
}

void WriteScratch(const char* path) {
  // Suppressed: the annotation names the rule and carries a reason, so
  // this raw writer is accepted.
  std::ofstream scratch(path);  // sidq: allow-raw-io(fixture: throwaway scratch file)
  scratch << "ok\n";
}

void ReadOnlyIsFine(const char* path) {
  // Reads cannot lose data; std::ifstream stays legal outside the Vfs.
  std::ifstream in(path);
  char c;
  in.get(c);
}

}  // namespace bad

namespace bad {

int Run();

void Legacy() {
  (void)Run();  // sidq: ignore-status(old spelling)  // expect-lint: R1,S1
}

void Unknown() {
  int z = 3;  // sidq: allow-bogus-rule(because)  // expect-lint: S2
  (void)z;
}

void NoReason() {
  (void)Run();  // sidq: allow-ignored-status  // expect-lint: R1,S3
}

void Stale() {
  int x = 1;  // sidq: allow-wallclock(nothing here sleeps)  // expect-lint: S4
  (void)x;
}

void Fine() {
  (void)Run();  // sidq: allow-ignored-status(fixture: result unused by design)
}

}  // namespace bad

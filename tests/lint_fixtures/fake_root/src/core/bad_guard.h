#pragma once

#define SIDQ_GUARDED_BY(x) int  // expect-lint: R12

namespace bad {

class Mutex {
 public:
  void Lock();
};
class SharedMutex {
 public:
  void Lock();
};

class Good {
  Mutex mu_;
  int counter_ SIDQ_GUARDED_BY(mu_);  // resolves: no finding
};

class AlsoGood {
  SharedMutex mu_;
  int gauge_ SIDQ_GUARDED_BY(mu_);  // resolves: no finding
};

class MissingLock {
  int counter_ SIDQ_GUARDED_BY(mu_);  // expect-lint: R12
};

class ExprGuard {
  Mutex mu_;
  int value_ SIDQ_GUARDED_BY(&mu_);  // expect-lint: R12
};

}  // namespace bad

#include <chrono>
#include <thread>

namespace bad {

double HaversineDistance(double a, double b);

double Sum(int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += HaversineDistance(1.0, 2.0);  // expect-lint: R7
  }
  for (int i = 0; i < n; ++i) {
    // sidq: allow-scalar-haversine(fixture: cold setup loop)
    total += HaversineDistance(3.0, 4.0);
  }
  std::thread t([] {});  // expect-lint: R6
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect-lint: R8
  t.join();
  return total;
}

}  // namespace bad

#include <chrono>

namespace bad {

long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // expect-lint: R9
}

}  // namespace bad

// R14 fixture: heap allocation inside kernel-layer hot loops. Kernel
// scratch comes from the arena (core/arena.h); the sanctioned growth
// paths are ArenaVec and vectors reserved before the loop. The naked-new
// case also trips R5 (new outside src/index/).

#include <cstdlib>
#include <vector>

namespace bad {

void MallocPerIteration(int n) {
  for (int i = 0; i < n; ++i) {
    void* scratch = std::malloc(64);  // expect-lint: R14
    std::free(scratch);  // expect-lint: R14
  }
}

void NakedNewPerIteration(int n) {
  for (int i = 0; i < n; ++i) {
    double* row = new double[8];  // expect-lint: R5, R14
    delete[] row;  // expect-lint: R5, R14
  }
}

// NOTE: reserve evidence is per-file and name-based, so this vector must
// not share a name with the reserved one below.
int UnreservedPushBackPerIteration(int n) {
  std::vector<int> grown;
  for (int i = 0; i < n; ++i) {
    grown.push_back(i);  // expect-lint: R14
  }
  return static_cast<int>(grown.size());
}

// Clean pattern: reserve before the loop is the capacity evidence R14
// looks for.
int ReservedPushBack(int n) {
  std::vector<int> hits;
  hits.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    hits.push_back(i);
  }
  return static_cast<int>(hits.size());
}

// Clean pattern: ArenaVec growth is arena-backed, not heap traffic.
template <typename Arena>
int ArenaVecPushBack(Arena* arena, int n) {
  ArenaVec<int> stack(arena, 16);
  int sum = 0;
  while (n-- > 0) {
    stack.push_back(n);
    sum += stack.back();
  }
  return sum;
}

// Clean pattern: allocation outside any loop is construction, not a hot
// path.
std::vector<int> BuildOnce(int n) {
  std::vector<int> out;
  out.push_back(n);
  return out;
}

// Suppressed: a written reason waives the finding.
void SuppressedColdPath(int n) {
  std::vector<int> pages;
  for (int i = 0; i < n; ++i) {
    // sidq: allow-hotloop-heap-alloc(cold bulk-load construction, runs
    // once per tree build, not per query)
    pages.push_back(i);
  }
}

}  // namespace bad

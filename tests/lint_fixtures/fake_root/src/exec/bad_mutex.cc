#include <condition_variable>
#include <mutex>

namespace bad {

std::mutex g_mu;  // expect-lint: R10
std::condition_variable g_cv;  // expect-lint: R10

int Locked() {
  std::lock_guard<std::mutex> lock(g_mu);  // expect-lint: R10
  return 1;
}

int Tolerated() {
  // sidq: allow-raw-mutex(fixture: interop with an external API)
  std::unique_lock<std::mutex> lock(g_mu);
  return 2;
}

}  // namespace bad

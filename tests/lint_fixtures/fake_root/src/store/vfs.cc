#include <cstdio>
#include <fstream>

namespace fake_store {

// The one file allowed to touch raw OS file APIs: the real Vfs seam lives
// at src/store/vfs.cc, so the linter must stay quiet about raw writers
// here and only here.
void RealVfsWrite(const char* path) {
  std::ofstream out(path, std::ios::binary);
  out << "payload";
  FILE* f = std::fopen(path, "ab");
  if (f != nullptr) {
    std::fclose(f);
  }
}

}  // namespace fake_store

#include <string>

namespace fake_store {

struct FakeVfs {
  std::string ReadFile(const std::string& path) const { return path; }
};

// Whole-segment slurp inside src/store/: exactly what the bounded
// BlockReader exists to replace.
std::string LoadSegment(const FakeVfs& vfs, const std::string& path) {
  return vfs.ReadFile(path);  // expect-lint: R16
}

std::string LoadManifest(const FakeVfs& vfs, const std::string& path) {
  // Suppressed: manifests are small bounded control files.
  // sidq: allow-raw-read(fixture: bounded control file)
  return vfs.ReadFile(path);
}

}  // namespace fake_store

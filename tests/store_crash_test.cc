// The headline robustness gate of the durable store: a crash-point sweep.
//
// A seeded workload (appends + periodic commits, crossing block and
// segment boundaries) runs against a FaultVfs that kills I/O at exactly
// one numbered vfs operation, for EVERY operation the fault-free run
// performs, under three crash styles (clean power cut before the op, torn
// append, bit-flipped append). After each injected crash the surviving
// MemVfs state -- exactly the synced bytes plus fsynced directory entries
// -- is recovered with a plain Store::Open, and the sweep asserts:
//
//   (a) recovery always succeeds (Open never errors on crash debris);
//   (b) the recovered state is prefix-consistent and bit-identical to the
//       fault-free run on every surviving record, and rows committed
//       before the crash are never lost;
//   (c) a second recovery is a no-op (idempotent), and the store accepts
//       appends afterwards.
//
// The chaos CI legs run this under ASan/TSan with SIDQ_CHAOS_AGGRESSIVE,
// which widens the sweep with extra torn/bit-flip seeds and adds seeded
// FailPoint chaos (injected EIO and lost fsyncs) on top.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "core/stid.h"
#include "store/store.h"
#include "store/vfs.h"

namespace sidq {
namespace store {
namespace {

bool Aggressive() { return std::getenv("SIDQ_CHAOS_AGGRESSIVE") != nullptr; }

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

bool BitIdentical(const StRecord& a, const StRecord& b) {
  return a.sensor == b.sensor && a.t == b.t && Bits(a.loc.x) == Bits(b.loc.x) &&
         Bits(a.loc.y) == Bits(b.loc.y) && Bits(a.value) == Bits(b.value) &&
         Bits(a.stddev) == Bits(b.stddev);
}

// Same deterministic record stream as store_test.cc, NaN included so the
// bit-identity assertion has teeth.
StRecord MakeRecord(uint64_t i) {
  StRecord r;
  r.sensor = 1 + (i % 5);
  r.t = static_cast<Timestamp>(1000 * i);
  r.loc = geometry::Point(0.25 * static_cast<double>(i),
                          -0.5 * static_cast<double>(i));
  r.value = 20.0 + 0.125 * static_cast<double>(i);
  r.stddev = 0.5;
  if (i == 7) r.value = std::numeric_limits<double>::quiet_NaN();
  return r;
}

StoreOptions SweepOptions() {
  StoreOptions o;
  o.block_records = 8;        // many small blocks -> many vfs ops
  o.segment_target_blocks = 3;  // roll segments inside the workload
  o.field_name = "sweep";
  return o;
}

constexpr uint64_t kWorkloadRows = 60;
constexpr uint64_t kCommitEvery = 20;

// Drives the seeded workload. Stops at the first I/O failure (the injected
// crash); `durable_rows` reports the rows covered by the last Commit() that
// returned OK -- the durability floor recovery must honour.
Status RunWorkload(Vfs* vfs, uint64_t* durable_rows) {
  *durable_rows = 0;
  SIDQ_ASSIGN_OR_RETURN(std::unique_ptr<Store> store,
                        Store::Open(vfs, "db", SweepOptions()));
  for (uint64_t i = 0; i < kWorkloadRows; ++i) {
    SIDQ_RETURN_IF_ERROR(store->Append(MakeRecord(i)));
    if ((i + 1) % kCommitEvery == 0) {
      SIDQ_RETURN_IF_ERROR(store->Commit());
      *durable_rows = i + 1;
    }
  }
  SIDQ_RETURN_IF_ERROR(store->Close());
  *durable_rows = kWorkloadRows;
  return Status::OK();
}

// Scans a store into row-id -> record form.
std::map<uint64_t, StRecord> ScanAll(const Store& store) {
  std::map<uint64_t, StRecord> rows;
  const Status st = store.Scan([&](uint64_t row, const StRecord& rec) {
    rows[row] = rec;
  });
  EXPECT_TRUE(st.ok()) << st;
  return rows;
}

// One full crash experiment at (style, at_op, seed). Sets *fired iff the
// plan actually triggered (at_op within the workload's op range).
void RunCrashExperiment(FaultVfs::CrashStyle style, int64_t at_op,
                        uint64_t seed, const std::map<uint64_t, StRecord>& want,
                        const char* label, bool* fired) {
  *fired = false;
  MemVfs base;
  FaultVfs fault(&base);
  FaultVfs::CrashPlan plan;
  plan.at_op = at_op;
  plan.style = style;
  plan.seed = seed;
  fault.set_plan(plan);

  uint64_t durable_rows = 0;
  const Status workload = RunWorkload(&fault, &durable_rows);
  if (!fault.crashed()) {
    // Plan out of range: the run must have completed cleanly.
    EXPECT_TRUE(workload.ok()) << label << ": " << workload;
    return;
  }
  *fired = true;
  EXPECT_FALSE(workload.ok()) << label << ": crash fired but workload passed";

  // (a) Recovery always succeeds, on exactly the crash-durable state.
  StatusOr<std::unique_ptr<Store>> recovered =
      Store::Open(&base, "db", SweepOptions());
  ASSERT_TRUE(recovered.ok()) << label << ": " << recovered.status();
  const RecoveryReport& report = (*recovered)->recovery();

  // (b) Prefix-consistent: the readable rows are exactly 0..K-1 for some K
  // (crash injection never corrupts committed interior blocks, so nothing
  // may be quarantined), K covers every committed row, and every surviving
  // record is bit-identical to the fault-free run.
  const std::map<uint64_t, StRecord> got = ScanAll(**recovered);
  EXPECT_TRUE(report.quarantined.empty())
      << label << ": " << report.Summary();
  EXPECT_EQ(report.rows_lost, 0u) << label;
  const uint64_t recovered_rows = (*recovered)->rows_readable();
  ASSERT_EQ(got.size(), recovered_rows) << label;
  EXPECT_GE(recovered_rows, durable_rows)
      << label << ": committed rows lost (" << report.Summary() << ")";
  EXPECT_LE(recovered_rows, kWorkloadRows) << label;
  uint64_t next = 0;
  for (const auto& [row, rec] : got) {
    ASSERT_EQ(row, next) << label << ": row-id gap";
    const auto it = want.find(row);
    ASSERT_NE(it, want.end()) << label;
    EXPECT_TRUE(BitIdentical(rec, it->second))
        << label << ": row " << row << " differs from fault-free run";
    ++next;
  }

  // (c) Reopen-after-recovery is idempotent: same rows, same generation,
  // nothing further to repair.
  StatusOr<std::unique_ptr<Store>> again =
      Store::Open(&base, "db", SweepOptions());
  ASSERT_TRUE(again.ok()) << label << ": " << again.status();
  EXPECT_EQ((*again)->manifest_gen(), (*recovered)->manifest_gen()) << label;
  EXPECT_FALSE((*again)->recovery().tail_truncated)
      << label << ": second recovery repaired again (not idempotent)";
  EXPECT_EQ((*again)->recovery().orphan_segments_removed, 0u) << label;
  const std::map<uint64_t, StRecord> got2 = ScanAll(**again);
  ASSERT_EQ(got2.size(), got.size()) << label;
  for (const auto& [row, rec] : got2) {
    EXPECT_TRUE(BitIdentical(rec, got.at(row))) << label << ": row " << row;
  }

  // The recovered store accepts and persists new appends.
  {
    Store& w = **again;
    const uint64_t base_row = w.rows();
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(w.Append(MakeRecord(base_row + i)).ok()) << label;
    }
    ASSERT_TRUE(w.Close().ok()) << label;
  }
  StatusOr<std::unique_ptr<Store>> final_open =
      Store::Open(&base, "db", SweepOptions());
  ASSERT_TRUE(final_open.ok()) << label;
  EXPECT_EQ((*final_open)->rows_readable(), recovered_rows + 5) << label;
}

TEST(StoreCrashTest, FaultFreeBaseline) {
  MemVfs base;
  FaultVfs fault(&base);  // no plan
  uint64_t durable_rows = 0;
  const Status st = RunWorkload(&fault, &durable_rows);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(durable_rows, kWorkloadRows);
  ASSERT_GT(fault.ops(), 0);

  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&base, "db", SweepOptions());
  ASSERT_TRUE(reopened.ok());
  const std::map<uint64_t, StRecord> rows = ScanAll(**reopened);
  ASSERT_EQ(rows.size(), kWorkloadRows);
  for (const auto& [row, rec] : rows) {
    EXPECT_TRUE(BitIdentical(rec, MakeRecord(row))) << row;
  }
}

TEST(StoreCrashTest, SweepEveryFaultSite) {
  // Fault-free reference: total op count and expected bytes.
  int64_t total_ops = 0;
  std::map<uint64_t, StRecord> want;
  {
    MemVfs base;
    FaultVfs fault(&base);
    uint64_t durable_rows = 0;
    ASSERT_TRUE(RunWorkload(&fault, &durable_rows).ok());
    total_ops = fault.ops();
    StatusOr<std::unique_ptr<Store>> reopened =
        Store::Open(&base, "db", SweepOptions());
    ASSERT_TRUE(reopened.ok());
    want = ScanAll(**reopened);
  }
  ASSERT_EQ(want.size(), kWorkloadRows);

  struct StyleSeed {
    FaultVfs::CrashStyle style;
    uint64_t seed;
    const char* name;
  };
  std::vector<StyleSeed> styles = {
      {FaultVfs::CrashStyle::kBeforeOp, 0, "before-op"},
      {FaultVfs::CrashStyle::kTornAppend, 1, "torn"},
      {FaultVfs::CrashStyle::kBitFlip, 2, "flip"},
  };
  if (Aggressive()) {
    styles.push_back({FaultVfs::CrashStyle::kTornAppend, 101, "torn-b"});
    styles.push_back({FaultVfs::CrashStyle::kBitFlip, 202, "flip-b"});
  }

  int fired = 0;
  for (const StyleSeed& s : styles) {
    for (int64_t at_op = 0; at_op < total_ops; ++at_op) {
      const std::string label = std::string(s.name) + "@op" +
                                std::to_string(at_op) + " seed " +
                                std::to_string(s.seed);
      bool did_fire = false;
      RunCrashExperiment(s.style, at_op, s.seed, want, label.c_str(),
                         &did_fire);
      if (did_fire) ++fired;
      if (HasFatalFailure()) {
        FAIL() << "sweep aborted at " << label;
      }
    }
  }
  // The sweep is vacuous unless the plans actually fired.
  EXPECT_GE(fired, static_cast<int>(styles.size()) *
                       (total_ops > 4 ? total_ops - 4 : 1));
}

// Seeded FailPoint chaos on the vfs sites, no crash plan: injected EIO on
// appends/renames must surface as errors without wedging the store, and a
// LOST fsync (reported success, nothing durable) followed by a crash must
// still recover to a consistent prefix -- the commit protocol may trust an
// fsync only as far as the manifest chain can verify afterwards.
TEST(StoreCrashTest, TransientAppendErrorsSurfaceAndDoNotWedge) {
  FailPointConfig cfg;
  cfg.action = FailPointAction::kTransientError;
  cfg.fail_first_n = 1;  // first append on each key errors, then passes
  ArmFailPoint(kVfsAppendFailPoint, cfg);

  MemVfs base;
  FaultVfs fault(&base);
  uint64_t durable_rows = 0;
  const Status st = RunWorkload(&fault, &durable_rows);
  EXPECT_FALSE(st.ok());  // the injected EIO surfaced, never swallowed
  DisarmAllFailPoints();

  // The surviving bytes still recover.
  StatusOr<std::unique_ptr<Store>> recovered =
      Store::Open(&base, "db", SweepOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (const auto& [row, rec] : ScanAll(**recovered)) {
    EXPECT_TRUE(BitIdentical(rec, MakeRecord(row))) << row;
  }
}

TEST(StoreCrashTest, LostFsyncThenCrashStillRecoversConsistently) {
  // Every fsync lies (reports success, persists nothing), then the power
  // cut hits after the workload. Everything unsynced vanishes; recovery
  // must still come up consistent -- possibly empty, never wrong.
  FailPointConfig cfg;
  cfg.action = FailPointAction::kCorrupt;  // vfs sync site: lost fsync
  cfg.probability = 1.0;
  ArmFailPoint(kVfsSyncFailPoint, cfg);

  MemVfs base;
  FaultVfs fault(&base);
  uint64_t durable_rows = 0;
  // sidq: allow-ignored-status(workload may "succeed" -- the lost fsyncs lie)
  (void)RunWorkload(&fault, &durable_rows);
  DisarmAllFailPoints();
  base.SimulateCrash();

  StatusOr<std::unique_ptr<Store>> recovered =
      Store::Open(&base, "db", SweepOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  const std::map<uint64_t, StRecord> got = ScanAll(**recovered);
  uint64_t next = 0;
  for (const auto& [row, rec] : got) {
    ASSERT_EQ(row, next++);
    EXPECT_TRUE(BitIdentical(rec, MakeRecord(row))) << row;
  }
  // Idempotent reopen, as everywhere.
  StatusOr<std::unique_ptr<Store>> again =
      Store::Open(&base, "db", SweepOptions());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ScanAll(**again).size(), got.size());
}

// --- compaction crash sweep ----------------------------------------------
//
// Compaction rewrites committed segment files in place (via .cmp temps,
// a manifest publish, and atomic renames), so its crash surface is
// different from the append path: a crash must leave recovery serving
// either the PRE-compaction or the POST-compaction generation
// bit-identically -- never a blend of old and new segment layouts -- and
// reopening again must change nothing further.

StoreOptions CompactionOptions() {
  StoreOptions o;
  o.block_records = 8;
  o.segment_target_blocks = 3;
  o.field_name = "compact-sweep";
  return o;
}

constexpr uint64_t kCompactionRows = 48;  // 6 blocks over segments 0..1

// Deterministically builds a quarantine-pocked store: 48 rows committed,
// one interior block of (rolled) segment 0 corrupted, one reopen+close so
// the quarantine verdict is itself committed. Byte-identical every call.
void BuildPockedStore(MemVfs* base) {
  {
    StatusOr<std::unique_ptr<Store>> store =
        Store::Open(base, "db", CompactionOptions());
    ASSERT_TRUE(store.ok()) << store.status();
    for (uint64_t i = 0; i < kCompactionRows; ++i) {
      ASSERT_TRUE((*store)->Append(MakeRecord(i)).ok());
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  StatusOr<std::string> seg = base->ReadFile("db/000000.seg");
  ASSERT_TRUE(seg.ok());
  const ParsedBlock first = ParseBlockAt(*seg, 0);
  ASSERT_EQ(first.defect, BlockDefect::kNone);
  ASSERT_TRUE(base->CorruptByte("db/000000.seg", first.bytes_consumed + 20,
                                0x10).ok());
  {
    StatusOr<std::unique_ptr<Store>> store =
        Store::Open(base, "db", CompactionOptions());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_EQ((*store)->recovery().quarantined.size(), 1u);
    ASSERT_TRUE((*store)->Close().ok());  // commits the quarantine
  }
}

// Runs Open + Compact + Close through `vfs`; *report holds the last
// successful pass.
Status RunCompaction(Vfs* vfs, CompactionReport* report) {
  SIDQ_ASSIGN_OR_RETURN(std::unique_ptr<Store> store,
                        Store::Open(vfs, "db", CompactionOptions()));
  SIDQ_RETURN_IF_ERROR(store->Compact(report));
  return store->Close();
}

TEST(StoreCrashTest, CompactionFaultFreeReclaimsAndPreservesRows) {
  MemVfs base;
  BuildPockedStore(&base);
  if (HasFatalFailure()) return;

  std::map<uint64_t, StRecord> pre;
  uint64_t pre_gen = 0;
  {
    StatusOr<std::unique_ptr<Store>> store =
        Store::Open(&base, "db", CompactionOptions());
    ASSERT_TRUE(store.ok());
    pre = ScanAll(**store);
    pre_gen = (*store)->manifest_gen();
  }
  const StatusOr<uint64_t> size_before = base.FileSize("db/000000.seg");
  ASSERT_TRUE(size_before.ok());

  CompactionReport report;
  ASSERT_TRUE(RunCompaction(&base, &report).ok());
  EXPECT_EQ(report.segments_compacted, 1u);
  EXPECT_EQ(report.blocks_dropped, 1u);
  EXPECT_EQ(report.blocks_rewritten, 2u);  // 3-block segment minus 1 dead
  EXPECT_GT(report.bytes_reclaimed, 0u);
  EXPECT_GT(report.manifest_gen, pre_gen);

  // The dead block's bytes are physically gone ...
  const StatusOr<uint64_t> size_after = base.FileSize("db/000000.seg");
  ASSERT_TRUE(size_after.ok());
  EXPECT_EQ(*size_before - *size_after, report.bytes_reclaimed);
  EXPECT_FALSE(base.Exists("db/000000.seg.cmp"));

  // ... while every readable row, the row-id gap, and the quarantine
  // verdict (now a tombstone) survive bit-identically.
  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&base, "db", CompactionOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const Store& r = **reopened;
  ASSERT_EQ(r.recovery().quarantined.size(), 1u);
  EXPECT_EQ(r.recovery().quarantined[0].length, 0u);  // tombstoned
  EXPECT_EQ(r.recovery().quarantined[0].defect, BlockDefect::kBadCrc);
  EXPECT_EQ(r.recovery().rows_lost, 8u);
  const std::map<uint64_t, StRecord> post = ScanAll(r);
  ASSERT_EQ(post.size(), pre.size());
  for (const auto& [row, rec] : post) {
    EXPECT_TRUE(BitIdentical(rec, pre.at(row))) << row;
  }
  // Idempotent: a second pass finds nothing eligible.
  CompactionReport again;
  ASSERT_TRUE((*reopened)->Compact(&again).ok());
  EXPECT_EQ(again.segments_compacted, 0u);
}

TEST(StoreCrashTest, CompactionCrashSweepNeverBlendsGenerations) {
  // Fault-free reference: op count, pre/post row images, pre/post gens.
  std::map<uint64_t, StRecord> want;
  uint64_t pre_gen = 0, post_gen = 0;
  int64_t total_ops = 0;
  {
    MemVfs base;
    BuildPockedStore(&base);
    if (HasFatalFailure()) return;
    {
      StatusOr<std::unique_ptr<Store>> store =
          Store::Open(&base, "db", CompactionOptions());
      ASSERT_TRUE(store.ok());
      pre_gen = (*store)->manifest_gen();
      want = ScanAll(**store);
    }
    FaultVfs fault(&base);
    CompactionReport report;
    ASSERT_TRUE(RunCompaction(&fault, &report).ok());
    total_ops = fault.ops();
    post_gen = report.manifest_gen;
  }
  ASSERT_GT(total_ops, 0);
  ASSERT_GT(post_gen, pre_gen);
  ASSERT_EQ(want.size(), kCompactionRows - 8);

  struct StyleSeed {
    FaultVfs::CrashStyle style;
    uint64_t seed;
    const char* name;
  };
  std::vector<StyleSeed> styles = {
      {FaultVfs::CrashStyle::kBeforeOp, 0, "before-op"},
      {FaultVfs::CrashStyle::kTornAppend, 7, "torn"},
      {FaultVfs::CrashStyle::kBitFlip, 11, "flip"},
  };
  if (Aggressive()) {
    styles.push_back({FaultVfs::CrashStyle::kTornAppend, 131, "torn-b"});
    styles.push_back({FaultVfs::CrashStyle::kBitFlip, 257, "flip-b"});
  }

  int fired = 0;
  for (const StyleSeed& s : styles) {
    for (int64_t at_op = 0; at_op < total_ops; ++at_op) {
      const std::string label = std::string("compact-") + s.name + "@op" +
                                std::to_string(at_op);
      MemVfs base;
      BuildPockedStore(&base);
      if (HasFatalFailure()) {
        FAIL() << "fixture build failed at " << label;
      }
      FaultVfs fault(&base);
      FaultVfs::CrashPlan plan;
      plan.at_op = at_op;
      plan.style = s.style;
      plan.seed = s.seed;
      fault.set_plan(plan);
      CompactionReport report;
      const Status st = RunCompaction(&fault, &report);
      if (!fault.crashed()) {
        EXPECT_TRUE(st.ok()) << label << ": " << st;
        continue;
      }
      ++fired;
      EXPECT_FALSE(st.ok()) << label << ": crash fired but pass succeeded";

      // Recovery on the crash-durable bytes: never an error, and the
      // served generation is exactly pre or post -- a blend would show
      // as lost rows, changed bytes, or a gen outside the pair.
      StatusOr<std::unique_ptr<Store>> recovered =
          Store::Open(&base, "db", CompactionOptions());
      ASSERT_TRUE(recovered.ok()) << label << ": " << recovered.status();
      const Store& r = **recovered;
      EXPECT_TRUE(r.manifest_gen() == pre_gen || r.manifest_gen() == post_gen)
          << label << ": gen " << r.manifest_gen() << " not in {" << pre_gen
          << "," << post_gen << "}";
      ASSERT_EQ(r.recovery().quarantined.size(), 1u) << label;
      EXPECT_EQ(r.recovery().rows_lost, 8u) << label;
      const std::map<uint64_t, StRecord> got = ScanAll(r);
      ASSERT_EQ(got.size(), want.size()) << label << ": readable rows blended";
      for (const auto& [row, rec] : got) {
        const auto it = want.find(row);
        ASSERT_NE(it, want.end()) << label << ": unexpected row " << row;
        ASSERT_TRUE(BitIdentical(rec, it->second))
            << label << ": row " << row << " bytes blended";
      }
      // Recovery leaves no compaction debris behind.
      EXPECT_FALSE(base.Exists("db/000000.seg.cmp")) << label;

      // Idempotent reopen: same generation, nothing further repaired.
      StatusOr<std::unique_ptr<Store>> again =
          Store::Open(&base, "db", CompactionOptions());
      ASSERT_TRUE(again.ok()) << label << ": " << again.status();
      EXPECT_EQ((*again)->manifest_gen(), r.manifest_gen()) << label;
      EXPECT_FALSE((*again)->recovery().tail_truncated) << label;
      EXPECT_EQ((*again)->recovery().orphan_segments_removed, 0u) << label;
      EXPECT_EQ(ScanAll(**again).size(), got.size()) << label;

      // And a re-run of compaction completes the interrupted pass.
      CompactionReport retry;
      ASSERT_TRUE((*again)->Compact(&retry).ok()) << label;
      ASSERT_TRUE((*again)->Close().ok()) << label;
      StatusOr<std::unique_ptr<Store>> final_open =
          Store::Open(&base, "db", CompactionOptions());
      ASSERT_TRUE(final_open.ok()) << label;
      ASSERT_EQ(ScanAll(**final_open).size(), want.size()) << label;
      if (HasFatalFailure()) {
        FAIL() << "sweep aborted at " << label;
      }
    }
  }
  EXPECT_GE(fired, static_cast<int>(styles.size()));
}

}  // namespace
}  // namespace store
}  // namespace sidq

// Golden snapshots of the stream engine's quarantine ledger and windowed
// KPI/alert exports, pinned byte-for-byte. The scenario is a hand-authored
// arrival sequence (no library-math draws, only IEEE arithmetic), so the
// literals are stable across platforms; the exports must also be identical
// for 1, 2, and 8 replay workers and across repeated runs.
//
// An intentional change to the export format or the cleaning arithmetic
// regenerates them:
//
//   SIDQ_REGEN_GOLDEN=1 ./stream_golden_test
//
// prints the current ledger/KPI/alert JSON and output checksum to stdout
// for pasting back into this file. An *unintentional* diff means worker
// count, arrival wall time, or map iteration order leaked into the stream
// outputs -- a determinism bug, not a stale golden.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "stream/engine.h"
#include "stream/event_log.h"
#include "stream/replay.h"
#include "stream/rules.h"

namespace sidq {
namespace stream {
namespace {

// Sensors 1 and 2 have rules; sensor 3 is unknown (strict policy). The
// sequence exercises every quarantine reason the batch path can produce:
// out-of-order-but-in-lateness admits, a late straggler, a duplicate
// delivery, a range violation, a NaN, and an unknown sensor.
EventLog MakeGoldenLog() {
  EventLog log;
  log.field_name = "pm25";
  auto add = [&log](SensorId sensor, Timestamp t, double value) {
    StreamEvent ev;
    ev.seq = log.events.size();
    ev.arrival_ms = t;
    ev.record = StRecord(sensor, t,
                         geometry::Point(100.0 * static_cast<double>(sensor),
                                         50.0),
                         value, 0.5);
    log.events.push_back(ev);
  };
  add(1, 1000, 10.0);
  add(2, 1000, 20.0);
  add(1, 3000, 10.5);
  add(1, 2000, 10.25);  // out of order, within lateness: admitted
  add(3, 1000, 5.0);    // unknown sensor
  add(1, 3000, 10.5);   // duplicate delivery
  add(2, 2000, 150.0);  // out of range
  add(1, 9000, 11.0);
  add(1, 14'000, 11.5);  // watermark 9000: closes window [0, 10000)
  add(1, 2500, 10.0);    // late (2500 <= watermark 9000)
  add(2, 9000, 20.5);
  add(1, 15'000, std::nan(""));  // non-finite
  add(1, 16'000, 12.0);
  add(2, 14'000, 21.0);
  return log;
}

StreamConfig GoldenConfig() {
  StreamConfig config;
  SensorRule rule;
  rule.min_value = 0.0;
  rule.max_value = 100.0;
  rule.expected_interval_ms = 1000;
  rule.max_lateness_ms = 5000;
  rule.max_rate_per_s = 1.0;
  config.rules.set_default_rule(rule);
  config.rules.AddRule(1, rule);
  config.rules.AddRule(2, rule);
  config.rules.set_quarantine_unknown(true);
  config.window_ms = 10'000;
  config.window_capacity = 16;
  config.robust_z.min_samples = 8;
  return config;
}

struct GoldenRun {
  std::string ledger_json;
  std::string kpis_json;
  std::string alerts_json;
  std::string output_json;
  uint64_t checksum = 0;
};

GoldenRun RunGolden(int workers) {
  ReplayOptions options;
  options.num_threads = workers;
  const StatusOr<StreamOutput> streamed =
      Replay(MakeGoldenLog(), GoldenConfig(), options);
  EXPECT_TRUE(streamed.ok()) << streamed.status();
  GoldenRun run;
  if (!streamed.ok()) return run;
  run.ledger_json = streamed->ledger.ToJson();
  for (const WindowKpis& kpis : streamed->kpis) {
    run.kpis_json += WindowKpisToJson(kpis) + "\n";
  }
  for (const KpiAlert& alert : streamed->alerts) {
    run.alerts_json += KpiAlertToJson(alert) + "\n";
  }
  run.output_json = StreamOutputToJson(*streamed);
  run.checksum = OutputChecksum(*streamed);
  return run;
}

// --- golden literals (regenerate with SIDQ_REGEN_GOLDEN=1) ---

const char kGoldenLedger[] = R"golden([
  {"seq":4,"sensor":3,"t":1000,"value":5,"reason":"unknown_sensor"},
  {"seq":5,"sensor":1,"t":3000,"value":10.5,"reason":"duplicate"},
  {"seq":6,"sensor":2,"t":2000,"value":150,"reason":"out_of_range"},
  {"seq":9,"sensor":1,"t":2500,"value":10,"reason":"late"},
  {"seq":11,"sensor":1,"t":15000,"value":nan,"reason":"non_finite"}
])golden";

const char kGoldenKpis[] =
    R"golden({"sensor":1,"window_start":0,"window_end":10000,"count":4,"outliers":0,"duplicates":1,"completeness":0.4,"redundancy":0.2,"max_gap_ms":6000,"precision_stddev":0.4499927823689622,"consistency_violations":0,"mean_value":10.4375,"min_value":10,"max_value":11,"drift":false}
{"sensor":1,"window_start":10000,"window_end":20000,"count":2,"outliers":0,"duplicates":0,"completeness":0.2,"redundancy":0,"max_gap_ms":4000,"precision_stddev":0.46801493558834617,"consistency_violations":0,"mean_value":11.75,"min_value":11.5,"max_value":12,"drift":false}
{"sensor":2,"window_start":0,"window_end":10000,"count":2,"outliers":0,"duplicates":0,"completeness":0.2,"redundancy":0,"max_gap_ms":8000,"precision_stddev":0.42677181922363194,"consistency_violations":0,"mean_value":20.25,"min_value":20,"max_value":20.5,"drift":false}
{"sensor":2,"window_start":10000,"window_end":20000,"count":1,"outliers":0,"duplicates":0,"completeness":0.1,"redundancy":0,"max_gap_ms":6000,"precision_stddev":0.4900978849889676,"consistency_violations":0,"mean_value":21,"min_value":21,"max_value":21,"drift":false}
)golden";

const char kGoldenAlerts[] =
    R"golden({"sensor":1,"window_start":0,"dimension":"completeness","observed":0.4,"threshold":0.5}
{"sensor":1,"window_start":10000,"dimension":"completeness","observed":0.2,"threshold":0.5}
{"sensor":2,"window_start":0,"dimension":"completeness","observed":0.2,"threshold":0.5}
{"sensor":2,"window_start":10000,"dimension":"completeness","observed":0.1,"threshold":0.5}
)golden";

constexpr uint64_t kGoldenChecksum = 13662514292944334687ull;

class StreamGoldenTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailPoints(); }
};

TEST_F(StreamGoldenTest, SerialReplayMatchesGoldenLiterals) {
  const GoldenRun run = RunGolden(1);

  if (std::getenv("SIDQ_REGEN_GOLDEN") != nullptr) {
    std::printf(
        "--- ledger ---\n%s\n--- kpis ---\n%s--- alerts ---\n%s"
        "--- checksum ---\n%lluull\n",
        run.ledger_json.c_str(), run.kpis_json.c_str(),
        run.alerts_json.c_str(),
        static_cast<unsigned long long>(run.checksum));
    GTEST_SKIP() << "regen mode: printed current goldens";
  }

  EXPECT_EQ(run.ledger_json, kGoldenLedger);
  EXPECT_EQ(run.kpis_json, kGoldenKpis);
  EXPECT_EQ(run.alerts_json, kGoldenAlerts);
  EXPECT_EQ(run.checksum, kGoldenChecksum);
}

TEST_F(StreamGoldenTest, ExportsAreIdenticalForAnyWorkerCount) {
  const GoldenRun reference = RunGolden(1);
  for (const int workers : {2, 8}) {
    const GoldenRun run = RunGolden(workers);
    EXPECT_EQ(run.output_json, reference.output_json)
        << workers << " workers changed the stream output";
    EXPECT_EQ(run.checksum, reference.checksum);
  }
}

TEST_F(StreamGoldenTest, RepeatedRunsAreByteIdentical) {
  const GoldenRun a = RunGolden(4);
  const GoldenRun b = RunGolden(4);
  EXPECT_EQ(a.output_json, b.output_json);
  EXPECT_EQ(a.checksum, b.checksum);
}

// The golden scenario matches the batch reference too -- the differential
// contract holds on the pinned scenario itself.
TEST_F(StreamGoldenTest, GoldenScenarioSatisfiesTheDifferentialContract) {
  const GoldenRun run = RunGolden(1);
  const StreamOutput batch = BatchReference(MakeGoldenLog(), GoldenConfig());
  EXPECT_EQ(run.output_json, StreamOutputToJson(batch));
}

}  // namespace
}  // namespace stream
}  // namespace sidq

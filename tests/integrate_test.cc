#include <gtest/gtest.h>

#include "integrate/attachment.h"
#include "integrate/entity_linking.h"
#include "integrate/semantic.h"
#include "integrate/stid_fusion.h"
#include "sim/noise.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace integrate {
namespace {

using geometry::BBox;
using geometry::Point;

// ---------------------------------------------------------- EntityLinking

TEST(EntityLinkerTest, LinksNoisyCopiesOfSameFleet) {
  Rng rng(1);
  const sim::Fleet fleet = sim::MakeFleet(8, 8, 200.0, 12, 14, &rng);
  // Source A and B observe the same objects with different noise and IDs.
  std::vector<Trajectory> a, b;
  for (size_t i = 0; i < fleet.trajectories.size(); ++i) {
    a.push_back(sim::AddGpsNoise(fleet.trajectories[i], 10.0, &rng));
    Trajectory bt = sim::AddGpsNoise(fleet.trajectories[i], 10.0, &rng);
    bt.set_object_id(1000 + i);
    b.push_back(std::move(bt));
  }
  // Shuffle B so index != identity.
  std::vector<size_t> perm(b.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(perm);
  std::vector<Trajectory> b_shuffled;
  for (size_t i : perm) b_shuffled.push_back(b[i]);

  const EntityLinker linker;
  const auto links = linker.Link(a, b_shuffled);
  EXPECT_EQ(links.size(), a.size());
  size_t correct = 0;
  for (const auto& link : links) {
    if (perm[link.b_index] == link.a_index) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) / links.size(), 0.9);
}

TEST(EntityLinkerTest, SimilaritySelfIsHighest) {
  Rng rng(2);
  const sim::Fleet fleet = sim::MakeFleet(6, 6, 200.0, 4, 10, &rng);
  const EntityLinker linker;
  const Trajectory& t0 = fleet.trajectories[0];
  const double self_sim =
      linker.Similarity(t0, sim::AddGpsNoise(t0, 5.0, &rng));
  EXPECT_GT(self_sim, 0.5);
  for (size_t j = 1; j < fleet.trajectories.size(); ++j) {
    EXPECT_GT(self_sim, linker.Similarity(t0, fleet.trajectories[j]));
  }
}

TEST(EntityLinkerTest, NoSpuriousLinksBelowThreshold) {
  // Two trajectories in disjoint areas and times: no link.
  Trajectory a(1), b(2);
  for (int i = 0; i < 20; ++i) {
    a.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 10.0, 0)));
    b.AppendUnordered(
        TrajectoryPoint(1'000'000 + i * 1000, Point(50000 + i * 10.0, 0)));
  }
  const EntityLinker linker;
  EXPECT_TRUE(linker.Link({a}, {b}).empty());
}

// -------------------------------------------------------------- Attachment

TEST(AttachmentTest, AttachesFieldValues) {
  Rng rng(3);
  const BBox bounds(0, 0, 2000, 2000);
  const auto field = sim::ScalarField::MakeRandom(bounds, 3, 10.0, 25.0, 400,
                                                  800, 3600, &rng);
  const auto sensors = sim::DeploySensors(bounds, 50, &rng);
  const StDataset data =
      sim::SampleField(field, sensors, 0, 60'000, 30, "pm25");
  uncertainty::IdwInterpolator interp(&data);

  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory traj = simulator.RandomWaypoint(bounds, 200, 1);
  const auto enriched = AttachStid(traj, interp);
  ASSERT_TRUE(enriched.ok());
  EXPECT_EQ(enriched->values.size(), traj.size());
  EXPECT_GT(enriched->AttachmentRate(), 0.95);

  // Attached values should approximate the true field along the way.
  double err = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < traj.size(); ++i) {
    if (!enriched->values[i].has_value()) continue;
    err += std::abs(*enriched->values[i] -
                    field.Value(traj[i].p, traj[i].t));
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(err / n, 6.0);
}

TEST(AttachmentTest, MeanAttachedValueRangeChecks) {
  Rng rng(4);
  const BBox bounds(0, 0, 500, 500);
  const auto field =
      sim::ScalarField::MakeRandom(bounds, 1, 5.0, 10.0, 100, 200, 3600, &rng);
  const StDataset data = sim::SampleField(
      field, sim::DeploySensors(bounds, 10, &rng), 0, 60'000, 10, "x");
  uncertainty::IdwInterpolator interp(&data);
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory traj = simulator.RandomWaypoint(bounds, 50, 1);
  const auto enriched = AttachStid(traj, interp);
  ASSERT_TRUE(enriched.ok());
  EXPECT_TRUE(MeanAttachedValue(enriched.value(), 0, 50'000).ok());
  EXPECT_FALSE(
      MeanAttachedValue(enriched.value(), 10'000'000, 20'000'000).ok());
}

// -------------------------------------------------------------- GridFuser

TEST(GridFuserTest, DownweightsUnreliableSource) {
  Rng rng(5);
  const BBox bounds(0, 0, 2000, 2000);
  const auto field = sim::ScalarField::MakeRandom(bounds, 3, 10.0, 20.0, 400,
                                                  800, 3600, &rng);
  const auto sensors = sim::DeploySensors(bounds, 40, &rng);
  const StDataset truth =
      sim::SampleField(field, sensors, 0, 60'000, 20, "pm25");
  // Truth discovery needs >= 3 sources to break the two-source symmetry.
  const StDataset good_a = sim::AddValueNoise(truth, 1.0, &rng);
  const StDataset good_b = sim::AddValueNoise(truth, 1.0, &rng);
  const StDataset bad = sim::AddValueNoise(truth, 10.0, &rng);

  const GridFuser fuser;
  const auto result = fuser.Fuse({good_a, good_b, bad});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->source_weights.size(), 3u);
  EXPECT_GT(result->source_weights[0], result->source_weights[2] * 3.0);
  EXPECT_GT(result->source_weights[1], result->source_weights[2] * 3.0);
  EXPECT_GT(result->fused.num_sensors(), 0u);
}

TEST(GridFuserTest, FusedBeatsBadSource) {
  Rng rng(6);
  const BBox bounds(0, 0, 1500, 1500);
  const auto field = sim::ScalarField::MakeRandom(bounds, 2, 10.0, 15.0, 300,
                                                  600, 3600, &rng);
  const auto sensors = sim::DeploySensors(bounds, 30, &rng);
  const StDataset truth =
      sim::SampleField(field, sensors, 0, 60'000, 20, "pm25");
  const StDataset good = sim::AddValueNoise(truth, 1.5, &rng);
  const StDataset bad = sim::AddValueNoise(truth, 8.0, &rng);
  GridFuser::Options opts;
  opts.cell_m = 300.0;
  opts.slot_ms = 300'000;
  const auto result = GridFuser(opts).Fuse({good, bad});
  ASSERT_TRUE(result.ok());

  // Compare fused cell values against the true field at cell centres.
  double fused_err = 0.0;
  size_t n = 0;
  for (const StSeries& s : result->fused.series()) {
    for (const StRecord& r : s.records()) {
      fused_err += std::abs(r.value - field.Value(r.loc, r.t));
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  fused_err /= n;
  // An 8-sigma source alone would average ~6.4 error; fusion must do
  // clearly better (cell-centre displacement adds some baseline error).
  EXPECT_LT(fused_err, 6.0);
}

TEST(GridFuserTest, EmptyInputFails) {
  EXPECT_FALSE(GridFuser().Fuse({}).ok());
}

// ---------------------------------------------------------------- Semantic

Trajectory TrajectoryWithStops() {
  Trajectory tr(1);
  Timestamp t = 0;
  // Move 0 -> 1000 m.
  for (int i = 0; i <= 20; ++i) {
    tr.AppendUnordered(TrajectoryPoint(t, Point(i * 50.0, 0)));
    t += 30'000;
  }
  // Stay near (1000, 0) for 10 minutes.
  for (int i = 0; i < 20; ++i) {
    tr.AppendUnordered(
        TrajectoryPoint(t, Point(1000.0 + (i % 3) * 5.0, 2.0)));
    t += 30'000;
  }
  // Move on to (2000, 0).
  for (int i = 1; i <= 20; ++i) {
    tr.AppendUnordered(TrajectoryPoint(t, Point(1000.0 + i * 50.0, 0)));
    t += 30'000;
  }
  return tr;
}

TEST(StayPointTest, DetectsTheStop) {
  const Trajectory tr = TrajectoryWithStops();
  const auto stays = DetectStayPoints(tr, 60.0, 120'000);
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_NEAR(stays[0].centroid.x, 1003.0, 10.0);
  EXPECT_GE(stays[0].Duration(), 120'000);
}

TEST(StayPointTest, NoStayOnConstantMotion) {
  Trajectory tr(1);
  for (int i = 0; i < 50; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 10'000, Point(i * 100.0, 0)));
  }
  EXPECT_TRUE(DetectStayPoints(tr, 60.0, 120'000).empty());
}

TEST(SemanticAnnotatorTest, LabelsStayWithNearestPoi) {
  std::vector<Poi> pois{
      {Point(1010, 0), "Cafe Aroma", "food"},
      {Point(5000, 5000), "Gym", "sport"},
  };
  SemanticAnnotator annotator(pois);
  const auto episodes = annotator.Annotate(TrajectoryWithStops());
  ASSERT_TRUE(episodes.ok());
  // move, stay, move.
  ASSERT_EQ(episodes->size(), 3u);
  EXPECT_EQ((*episodes)[0].kind, Episode::Kind::kMove);
  EXPECT_EQ((*episodes)[1].kind, Episode::Kind::kStay);
  EXPECT_EQ((*episodes)[1].label, "Cafe Aroma");
  EXPECT_EQ((*episodes)[1].category, "food");
  EXPECT_EQ((*episodes)[2].kind, Episode::Kind::kMove);
}

TEST(SemanticAnnotatorTest, UnknownWhenNoPoiNearby) {
  SemanticAnnotator annotator(std::vector<Poi>{});
  const auto episodes = annotator.Annotate(TrajectoryWithStops());
  ASSERT_TRUE(episodes.ok());
  bool found_stay = false;
  for (const Episode& e : episodes.value()) {
    if (e.kind == Episode::Kind::kStay) {
      found_stay = true;
      EXPECT_EQ(e.label, "unknown");
    }
  }
  EXPECT_TRUE(found_stay);
}

TEST(SemanticAnnotatorTest, EmptyTrajectoryFails) {
  SemanticAnnotator annotator(std::vector<Poi>{});
  EXPECT_FALSE(annotator.Annotate(Trajectory(1)).ok());
}

// Parameterised: linking accuracy degrades gracefully with noise
// (integration claim: spatiotemporal signatures tolerate moderate error).
class LinkingNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinkingNoiseSweep, AccuracyAboveFloor) {
  Rng rng(42);
  const sim::Fleet fleet = sim::MakeFleet(8, 8, 200.0, 10, 14, &rng);
  std::vector<Trajectory> a, b;
  for (size_t i = 0; i < fleet.trajectories.size(); ++i) {
    a.push_back(sim::AddGpsNoise(fleet.trajectories[i], GetParam(), &rng));
    b.push_back(sim::AddGpsNoise(fleet.trajectories[i], GetParam(), &rng));
  }
  const EntityLinker linker;
  const auto links = linker.Link(a, b);
  size_t correct = 0;
  for (const auto& link : links) {
    if (link.a_index == link.b_index) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) /
                std::max<size_t>(1, fleet.trajectories.size()),
            0.7)
      << "noise=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, LinkingNoiseSweep,
                         ::testing::Values(5.0, 15.0, 30.0));

}  // namespace
}  // namespace integrate
}  // namespace sidq

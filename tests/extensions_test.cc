#include <sstream>

#include <gtest/gtest.h>

#include "analytics/burst.h"
#include "analytics/next_location.h"
#include "core/io.h"
#include "core/random.h"
#include "core/trajectory.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

using geometry::BBox;
using geometry::Point;

// ------------------------------------------------------------- SplitByGap

TEST(SplitByGapTest, SplitsAtLargeGaps) {
  Trajectory tr(7);
  for (int i = 0; i < 10; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 1000, Point(i, 0)));
  }
  for (int i = 0; i < 5; ++i) {
    tr.AppendUnordered(
        TrajectoryPoint(100'000 + i * 1000, Point(100 + i, 0)));
  }
  const auto pieces = SplitByGap(tr, 10'000);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].size(), 10u);
  EXPECT_EQ(pieces[1].size(), 5u);
  EXPECT_EQ(pieces[0].object_id(), 7u);
}

TEST(SplitByGapTest, DropsShortPieces) {
  Trajectory tr(1);
  tr.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));            // lone point
  tr.AppendUnordered(TrajectoryPoint(100'000, Point(1, 0)));
  tr.AppendUnordered(TrajectoryPoint(101'000, Point(2, 0)));
  const auto pieces = SplitByGap(tr, 10'000, 2);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), 2u);
}

TEST(SplitByGapTest, NoGapsSinglePiece) {
  Trajectory tr(1);
  for (int i = 0; i < 5; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 1000, Point(i, 0)));
  }
  const auto pieces = SplitByGap(tr, 10'000);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].size(), 5u);
  EXPECT_TRUE(SplitByGap(Trajectory(1), 1000).empty());
}

// -------------------------------------------------------------------- IO

TEST(IoTest, TrajectoryCsvRoundTrip) {
  Rng rng(1);
  sim::TrajectorySimulator simulator({}, &rng);
  std::vector<Trajectory> original;
  for (int i = 0; i < 3; ++i) {
    Trajectory tr = simulator.RandomWaypoint(BBox(0, 0, 500, 500), 20, i);
    original.push_back(std::move(tr));
  }
  std::stringstream ss;
  ASSERT_TRUE(WriteTrajectoriesCsv(original, ss).ok());
  const auto loaded = ReadTrajectoriesCsv(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t k = 0; k < original.size(); ++k) {
    ASSERT_EQ((*loaded)[k].size(), original[k].size());
    EXPECT_EQ((*loaded)[k].object_id(), original[k].object_id());
    for (size_t i = 0; i < original[k].size(); ++i) {
      EXPECT_EQ((*loaded)[k][i].t, original[k][i].t);
      EXPECT_NEAR((*loaded)[k][i].p.x, original[k][i].p.x, 1e-6);
      EXPECT_NEAR((*loaded)[k][i].p.y, original[k][i].p.y, 1e-6);
    }
  }
}

TEST(IoTest, TrajectoryCsvRejectsGarbage) {
  {
    std::stringstream ss("");
    EXPECT_FALSE(ReadTrajectoriesCsv(ss).ok());
  }
  {
    std::stringstream ss("header\n1,2\n");
    EXPECT_FALSE(ReadTrajectoriesCsv(ss).ok());
  }
  {
    std::stringstream ss("header\n1,notatime,3,4\n");
    EXPECT_FALSE(ReadTrajectoriesCsv(ss).ok());
  }
}

TEST(IoTest, StidCsvRoundTrip) {
  Rng rng(2);
  const BBox bounds(0, 0, 1000, 1000);
  const auto field =
      sim::ScalarField::MakeRandom(bounds, 2, 5.0, 10.0, 200, 400, 3600, &rng);
  const StDataset original = sim::SampleField(
      field, sim::DeploySensors(bounds, 5, &rng), 0, 60'000, 10, "pm25");
  std::stringstream ss;
  ASSERT_TRUE(WriteStidCsv(original, ss).ok());
  const auto loaded = ReadStidCsv(ss, "pm25");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->field_name(), "pm25");
  ASSERT_EQ(loaded->num_sensors(), original.num_sensors());
  EXPECT_EQ(loaded->TotalRecords(), original.TotalRecords());
  for (size_t s = 0; s < original.num_sensors(); ++s) {
    const auto found = loaded->FindSeries(original.series()[s].sensor());
    ASSERT_TRUE(found.ok());
    for (size_t i = 0; i < original.series()[s].size(); ++i) {
      EXPECT_NEAR((**found)[i].value, original.series()[s][i].value, 1e-6);
    }
  }
}

TEST(IoTest, FileRoundTrip) {
  Trajectory tr(42);
  tr.AppendUnordered(TrajectoryPoint(0, Point(1.5, -2.5), 3.0));
  tr.AppendUnordered(TrajectoryPoint(1000, Point(2.5, -3.5)));
  const std::string path = "/tmp/sidq_io_test.csv";
  ASSERT_TRUE(WriteTrajectoriesCsvFile({tr}, path).ok());
  const auto loaded = ReadTrajectoriesCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_DOUBLE_EQ((*loaded)[0][0].accuracy, 3.0);
  EXPECT_FALSE(ReadTrajectoriesCsvFile("/nonexistent/nope.csv").ok());
}

// ----------------------------------------------------------------- Burst

TEST(BurstTest, DetectsInjectedBurst) {
  analytics::BurstDetector::Options opts;
  opts.cell_m = 100.0;
  opts.window_ms = 10'000;
  opts.min_count = 5;
  opts.burst_factor = 3.0;
  opts.warmup_windows = 3;
  analytics::BurstDetector detector(opts);
  Rng rng(3);
  std::vector<analytics::BurstDetector::BurstRegion> fired;
  // Steady background: ~2 events per window spread over a wide area.
  Timestamp t = 0;
  for (int w = 0; w < 20; ++w) {
    const bool burst_window = w == 15;
    for (int e = 0; e < 2; ++e) {
      auto f = detector.Feed(Point(rng.Uniform(0, 1000),
                                   rng.Uniform(0, 1000)),
                             t + e * 1000);
      fired.insert(fired.end(), f.begin(), f.end());
    }
    if (burst_window) {
      // 30 events in one cell: an incident.
      for (int e = 0; e < 30; ++e) {
        auto f = detector.Feed(Point(455.0 + (e % 3), 455.0), t + 5000);
        fired.insert(fired.end(), f.begin(), f.end());
      }
    }
    t += 10'000;
  }
  // Flush the final window.
  auto f = detector.Feed(Point(0, 0), t + 20'000);
  fired.insert(fired.end(), f.begin(), f.end());
  ASSERT_GE(fired.size(), 1u);
  bool found = false;
  for (const auto& region : fired) {
    found = found || region.bounds.Contains(Point(455, 455));
  }
  EXPECT_TRUE(found);
  // The burst region is localized.
  for (const auto& region : fired) {
    EXPECT_LE(region.cells, 4u);
  }
}

TEST(BurstTest, SteadyTrafficNeverFires) {
  analytics::BurstDetector detector;
  Rng rng(4);
  size_t fired = 0;
  Timestamp t = 0;
  for (int i = 0; i < 3000; ++i) {
    fired += detector
                 .Feed(Point(rng.Uniform(0, 2000), rng.Uniform(0, 2000)),
                       t)
                 .size();
    t += 500;
  }
  EXPECT_EQ(fired, 0u);
  EXPECT_GT(detector.windows_processed(), 10u);
}

TEST(BurstTest, ScanOverStidRecords) {
  // Background readings plus a burst of co-located records.
  std::vector<StRecord> records;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    records.emplace_back(i, rng.UniformInt(0, 200'000),
                         Point(rng.Uniform(0, 3000), rng.Uniform(0, 3000)),
                         1.0);
  }
  for (int i = 0; i < 40; ++i) {
    records.emplace_back(1000 + i, 150'000 + i * 10,
                         Point(1500.0, 1500.0), 1.0);
  }
  analytics::BurstDetector::Options opts;
  opts.window_ms = 30'000;
  opts.min_count = 10;
  analytics::BurstDetector detector(opts);
  const auto regions = detector.Scan(records);
  ASSERT_GE(regions.size(), 1u);
  EXPECT_TRUE(regions.front().bounds.Contains(Point(1500, 1500)));
}

// ----------------------------------------------------- Incremental learn

TEST(IncrementalLearningTest, ObserveImprovesModel) {
  Rng rng(6);
  const sim::Fleet fleet = sim::MakeFleet(8, 8, 250.0, 40, 14, &rng);
  std::vector<Trajectory> initial(fleet.trajectories.begin(),
                                  fleet.trajectories.begin() + 5);
  std::vector<Trajectory> stream(fleet.trajectories.begin() + 5,
                                 fleet.trajectories.end() - 10);
  std::vector<Trajectory> held(fleet.trajectories.end() - 10,
                               fleet.trajectories.end());
  analytics::NextCellPredictor predictor;
  predictor.Train(initial);
  const double before = predictor.Evaluate(held);
  for (const auto& tr : stream) predictor.Observe(tr);
  const double after = predictor.Evaluate(held);
  EXPECT_GT(after, before);

  // Observe must be equivalent to batch training on the union.
  analytics::NextCellPredictor batch;
  std::vector<Trajectory> all = initial;
  all.insert(all.end(), stream.begin(), stream.end());
  batch.Train(all);
  EXPECT_DOUBLE_EQ(batch.Evaluate(held), after);
}

}  // namespace
}  // namespace sidq

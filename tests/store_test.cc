// Unit tests for the durable trajectory store: CRC32C, block/manifest
// codecs and their defect ladders, MemVfs crash semantics, AtomicWriteFile
// atomicity, and Store append/commit/scan/recovery behaviour under media
// corruption and torn tails. The exhaustive crash-point sweep lives in
// store_crash_test.cc.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/stid.h"
#include "obs/metrics.h"
#include "store/format.h"
#include "store/segment.h"
#include "store/store.h"
#include "store/vfs.h"
#include "stream/quarantine.h"

namespace sidq {
namespace store {
namespace {

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Deterministic synthetic record stream; row 7 carries a NaN payload and
// row 11 a signed zero, so round-trip assertions are genuinely bit-level.
StRecord MakeRecord(uint64_t i) {
  StRecord r;
  r.sensor = 1 + (i % 5);
  r.t = static_cast<Timestamp>(1000 * i);
  r.loc = geometry::Point(0.25 * static_cast<double>(i),
                          -0.5 * static_cast<double>(i));
  r.value = 20.0 + 0.125 * static_cast<double>(i);
  r.stddev = 0.5;
  if (i == 7) r.value = std::numeric_limits<double>::quiet_NaN();
  if (i == 11) r.value = -0.0;
  return r;
}

void ExpectBitIdentical(const StRecord& a, const StRecord& b) {
  EXPECT_EQ(a.sensor, b.sensor);
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(Bits(a.loc.x), Bits(b.loc.x));
  EXPECT_EQ(Bits(a.loc.y), Bits(b.loc.y));
  EXPECT_EQ(Bits(a.value), Bits(b.value));
  EXPECT_EQ(Bits(a.stddev), Bits(b.stddev));
}

// --- CRC32C ---

TEST(Crc32cTest, KnownAnswer) {
  // RFC 3720 test vector for CRC32C ("123456789").
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  const std::string data = "sidq durable store";
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    std::string mutated = data;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 1);
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base) << byte;
  }
}

// --- block codec ---

TEST(BlockFormatTest, EncodeParseRoundTripIsBitExact) {
  ColumnarBlock block;
  for (uint64_t i = 0; i < 16; ++i) block.Add(MakeRecord(i));
  const std::string encoded = EncodeBlock(block);
  ASSERT_GT(encoded.size(), kBlockHeaderSize);

  const ParsedBlock parsed = ParseBlockAt(encoded, 0);
  ASSERT_EQ(parsed.defect, BlockDefect::kNone);
  EXPECT_EQ(parsed.bytes_consumed, encoded.size());
  ASSERT_EQ(parsed.block.size(), block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    ExpectBitIdentical(parsed.block.Record(i), block.Record(i));
  }
}

TEST(BlockFormatTest, DefectLadder) {
  ColumnarBlock block;
  for (uint64_t i = 0; i < 4; ++i) block.Add(MakeRecord(i));
  const std::string good = EncodeBlock(block);

  // Torn header.
  EXPECT_EQ(ParseBlockAt(good.substr(0, kBlockHeaderSize - 1), 0).defect,
            BlockDefect::kShortHeader);
  // Not a block boundary.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_EQ(ParseBlockAt(bad, 0).defect, BlockDefect::kBadMagic);
  // Future version byte.
  bad = good;
  bad[4] = 99;
  EXPECT_EQ(ParseBlockAt(bad, 0).defect, BlockDefect::kBadVersion);
  // Length beyond the sanity bound (flip a high bit of payload_len).
  bad = good;
  bad[11] = static_cast<char>(0x7f);
  EXPECT_EQ(ParseBlockAt(bad, 0).defect, BlockDefect::kBadLength);
  // Torn payload.
  EXPECT_EQ(ParseBlockAt(good.substr(0, good.size() - 1), 0).defect,
            BlockDefect::kShortPayload);
  // Single flipped payload bit fails the checksum.
  bad = good;
  bad[kBlockHeaderSize + 3] = static_cast<char>(bad[kBlockHeaderSize + 3] ^ 8);
  EXPECT_EQ(ParseBlockAt(bad, 0).defect, BlockDefect::kBadCrc);
}

// --- manifest codec ---

Manifest SampleManifest() {
  Manifest m;
  m.gen = 3;
  m.prev_gen = 2;
  m.prev_crc = 0xdeadbeef;
  m.field_name = "pm2.5";
  m.num_segments = 2;
  m.rows = 40;
  BlockEntry b;
  b.segment = 0;
  b.index = 0;
  b.offset = 0;
  b.length = 784;
  b.crc = 0x12345678;
  b.row_start = 0;
  b.row_count = 16;
  b.sensor_rows = {{1, 10}, {2, 6}};
  m.blocks.push_back(b);
  QuarantinedBlockEntry q;
  q.segment = 0;
  q.index = 1;
  q.defect = BlockDefect::kBadCrc;
  q.offset = 784;
  q.length = 784;
  q.row_start = 16;
  q.row_count = 16;
  q.sensor_rows = {{1, 16}};
  m.quarantined.push_back(q);
  return m;
}

TEST(ManifestTest, SerializeParseRoundTrip) {
  const Manifest m = SampleManifest();
  const std::string text = SerializeManifest(m);
  const StatusOr<ParsedManifest> parsed = ParseManifest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Manifest& r = parsed->manifest;
  EXPECT_EQ(r.gen, m.gen);
  EXPECT_EQ(r.prev_gen, m.prev_gen);
  EXPECT_EQ(r.prev_crc, m.prev_crc);
  EXPECT_EQ(r.field_name, m.field_name);
  EXPECT_EQ(r.num_segments, m.num_segments);
  EXPECT_EQ(r.rows, m.rows);
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_EQ(r.blocks[0].length, 784u);
  EXPECT_EQ(r.blocks[0].sensor_rows, m.blocks[0].sensor_rows);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].defect, BlockDefect::kBadCrc);
  EXPECT_EQ(r.quarantined[0].offset, 784u);
}

TEST(ManifestTest, TornOrFlippedManifestFailsItsOwnChecksum) {
  const std::string text = SerializeManifest(SampleManifest());
  // Any strict prefix either loses the commit line (InvalidArgument) or
  // keeps it with mismatched coverage -- never parses as valid.
  for (size_t len = 0; len < text.size(); ++len) {
    EXPECT_FALSE(ParseManifest(text.substr(0, len)).ok()) << len;
  }
  // A flipped bit in the body fails the commit CRC with DataLoss.
  std::string flipped = text;
  flipped[10] = static_cast<char>(flipped[10] ^ 4);
  const StatusOr<ParsedManifest> got = ParseManifest(flipped);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(ManifestTest, FileNames) {
  EXPECT_EQ(ManifestFileName(7), "MANIFEST-000007");
  EXPECT_EQ(SegmentFileName(3), "000003.seg");
  uint64_t gen = 0;
  uint32_t seg = 0;
  EXPECT_TRUE(ParseManifestFileName("MANIFEST-000007", &gen));
  EXPECT_EQ(gen, 7u);
  EXPECT_TRUE(ParseSegmentFileName("000003.seg", &seg));
  EXPECT_EQ(seg, 3u);
  EXPECT_FALSE(ParseManifestFileName("MANIFEST-xyz", &gen));
  EXPECT_FALSE(ParseSegmentFileName("CURRENT", &seg));
  EXPECT_FALSE(ParseSegmentFileName("000003.seg.tmp", &seg));
}

// --- MemVfs crash semantics ---

TEST(MemVfsTest, UnsyncedBytesVanishOnCrash) {
  MemVfs vfs;
  ASSERT_TRUE(vfs.CreateDir("d").ok());
  StatusOr<std::unique_ptr<WritableFile>> f =
      vfs.NewWritableFile("d/a", WriteMode::kTruncate);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("durable").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE(vfs.SyncDir("d").ok());
  ASSERT_TRUE((*f)->Append(" volatile").ok());
  vfs.SimulateCrash();
  // Post-crash: synced prefix survives, the stale handle fails.
  const StatusOr<std::string> data = vfs.ReadFile("d/a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "durable");
  EXPECT_FALSE((*f)->Append("x").ok());
}

TEST(MemVfsTest, UnfsyncedDirOpsAreUndoneNewestFirst) {
  MemVfs vfs;
  ASSERT_TRUE(vfs.CreateDir("d").ok());
  ASSERT_TRUE(AtomicWriteFile(&vfs, "d/t", "old").ok());
  // Overwrite d/t via rename without the directory fsync: on crash the
  // rename rolls back to the old content and the tmp file reappears only
  // as its synced self -- which AtomicWriteFile's journal then undoes too.
  {
    StatusOr<std::unique_ptr<WritableFile>> f =
        vfs.NewWritableFile("d/t.tmp", WriteMode::kTruncate);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("new").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
    ASSERT_TRUE(vfs.Rename("d/t.tmp", "d/t").ok());
    // no SyncDir -- crash now
  }
  vfs.SimulateCrash();
  const StatusOr<std::string> data = vfs.ReadFile("d/t");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "old");
  EXPECT_FALSE(vfs.Exists("d/t.tmp"));
}

TEST(MemVfsTest, AtomicWriteFileSurvivesCrashAfterPublish) {
  MemVfs vfs;
  ASSERT_TRUE(vfs.CreateDir("d").ok());
  ASSERT_TRUE(AtomicWriteFile(&vfs, "d/c", "v1").ok());
  vfs.SimulateCrash();
  const StatusOr<std::string> data = vfs.ReadFile("d/c");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "v1");
}

// --- store round trips ---

StoreOptions SmallBlocks() {
  StoreOptions o;
  o.block_records = 8;
  o.segment_target_blocks = 4;
  o.field_name = "pm2.5";
  return o;
}

TEST(StoreTest, AppendScanCommitReopenRoundTrip) {
  MemVfs vfs;
  StatusOr<std::unique_ptr<Store>> opened =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(opened.ok()) << opened.status();
  Store& store = **opened;
  EXPECT_EQ(store.manifest_gen(), 0u);

  constexpr uint64_t kRows = 100;  // crosses block and segment boundaries
  for (uint64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(store.Append(MakeRecord(i)).ok());
  }
  // Scan sees sealed, pending, and open-block rows before any commit.
  uint64_t seen = 0;
  ASSERT_TRUE(store
                  .Scan([&](uint64_t row, const StRecord& rec) {
                    EXPECT_EQ(row, seen);
                    ExpectBitIdentical(rec, MakeRecord(row));
                    ++seen;
                  })
                  .ok());
  EXPECT_EQ(seen, kRows);

  ASSERT_TRUE(store.Close().ok());
  EXPECT_EQ(store.manifest_gen(), 1u);

  // Reopen: clean recovery, identical bytes.
  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const Store& r = **reopened;
  EXPECT_EQ(r.manifest_gen(), 1u);
  EXPECT_EQ(r.rows(), kRows);
  EXPECT_EQ(r.rows_readable(), kRows);
  EXPECT_TRUE(r.recovery().current_valid);
  EXPECT_TRUE(r.recovery().quarantined.empty());
  EXPECT_FALSE(r.recovery().tail_truncated);
  EXPECT_EQ(r.field_name(), "pm2.5");
  seen = 0;
  ASSERT_TRUE(r.Scan([&](uint64_t row, const StRecord& rec) {
                 EXPECT_EQ(row, seen);
                 ExpectBitIdentical(rec, MakeRecord(row));
                 ++seen;
               })
                  .ok());
  EXPECT_EQ(seen, kRows);
}

TEST(StoreTest, ManifestGenerationsChainAcrossCommits) {
  MemVfs vfs;
  StatusOr<std::unique_ptr<Store>> opened =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(opened.ok());
  Store& store = **opened;
  for (int commit = 0; commit < 3; ++commit) {
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          store.Append(MakeRecord(static_cast<uint64_t>(commit) * 10 + i))
              .ok());
    }
    ASSERT_TRUE(store.Commit().ok());
    EXPECT_EQ(store.manifest_gen(), static_cast<uint64_t>(commit) + 1);
  }
  ASSERT_TRUE(store.Close().ok());

  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->manifest_gen(), 3u);
  EXPECT_EQ((*reopened)->rows(), 30u);
  // All three surviving generation links verify.
  EXPECT_EQ((*reopened)->recovery().chain_links_verified, 2u);
  EXPECT_TRUE((*reopened)->recovery().chain_intact);
}

TEST(StoreTest, UncommittedSealedBlocksAreRecoveredFromTail) {
  MemVfs vfs;
  {
    StatusOr<std::unique_ptr<Store>> opened =
        Store::Open(&vfs, "db", SmallBlocks());
    ASSERT_TRUE(opened.ok());
    Store& store = **opened;
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.Append(MakeRecord(i)).ok());
    }
    ASSERT_TRUE(store.Commit().ok());
    // 20 more rows = 2 sealed blocks + 4 in the open block; drop the
    // store without committing, like a crash. Sealed blocks were written
    // but never synced -- simulate the power cut.
    for (uint64_t i = 10; i < 30; ++i) {
      ASSERT_TRUE(store.Append(MakeRecord(i)).ok());
    }
  }
  // No SimulateCrash: the bytes reached the (Mem)page cache and the file
  // still holds them; recovery adopts the sealed-but-unmanifested tail.
  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const Store& r = **reopened;
  EXPECT_EQ(r.manifest_gen(), 1u);
  EXPECT_EQ(r.recovery().tail_blocks_recovered, 2u);
  EXPECT_EQ(r.rows(), 26u);  // 10 committed + 16 sealed; open block lost
  uint64_t seen = 0;
  ASSERT_TRUE(r.Scan([&](uint64_t row, const StRecord& rec) {
                 ExpectBitIdentical(rec, MakeRecord(row));
                 ++seen;
               })
                  .ok());
  EXPECT_EQ(seen, 26u);
}

TEST(StoreTest, CorruptInteriorBlockIsQuarantinedWithReason) {
  MemVfs vfs;
  {
    StatusOr<std::unique_ptr<Store>> opened =
        Store::Open(&vfs, "db", SmallBlocks());
    ASSERT_TRUE(opened.ok());
    Store& store = **opened;
    for (uint64_t i = 0; i < 32; ++i) {
      ASSERT_TRUE(store.Append(MakeRecord(i)).ok());
    }
    ASSERT_TRUE(store.Close().ok());
  }
  // Flip one payload bit inside the second block of segment 0 (blocks are
  // back-to-back; every block here holds 8 rows of 48 bytes + 4 length
  // prefix + 16 header).
  const StatusOr<std::string> seg = vfs.ReadFile("db/000000.seg");
  ASSERT_TRUE(seg.ok());
  const ParsedBlock first = ParseBlockAt(*seg, 0);
  ASSERT_EQ(first.defect, BlockDefect::kNone);
  ASSERT_TRUE(
      vfs.CorruptByte("db/000000.seg", first.bytes_consumed + 20, 0x10).ok());

  obs::MetricsRegistry metrics;
  StoreOptions options = SmallBlocks();
  options.obs.metrics = &metrics;
  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&vfs, "db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const Store& r = **reopened;

  // The dead block is itemized, not dropped: reason code, row span, and
  // per-sensor losses all survive.
  ASSERT_EQ(r.recovery().quarantined.size(), 1u);
  const QuarantinedBlockEntry& q = r.recovery().quarantined[0];
  EXPECT_EQ(q.defect, BlockDefect::kBadCrc);
  EXPECT_EQ(q.row_start, 8u);
  EXPECT_EQ(q.row_count, 8u);
  EXPECT_EQ(r.recovery().rows_lost, 8u);
  EXPECT_EQ(r.rows(), 32u);
  EXPECT_EQ(r.rows_readable(), 24u);

  // Scan serves everything readable; row ids of lost rows stay gaps.
  std::vector<uint64_t> rows_seen;
  ASSERT_TRUE(r.Scan([&](uint64_t row, const StRecord& rec) {
                 rows_seen.push_back(row);
                 ExpectBitIdentical(rec, MakeRecord(row));
               })
                  .ok());
  ASSERT_EQ(rows_seen.size(), 24u);
  for (uint64_t row : rows_seen) {
    EXPECT_TRUE(row < 8 || row >= 16) << row;
  }

  // Per-trajectory quality annotations: sensors in the dead block are
  // flagged degraded.
  uint64_t lost_total = 0;
  for (const auto& [sensor, quality] : r.recovery().sensor_quality) {
    lost_total += quality.rows_lost;
    EXPECT_EQ(quality.complete(), quality.rows_lost == 0) << sensor;
  }
  EXPECT_EQ(lost_total, 8u);

  // Ledger surfacing with the store-specific reason code.
  stream::QuarantineLedger ledger;
  r.AppendQuarantineTo(&ledger);
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].reason,
            stream::QuarantineReason::kStoreCorruptBlock);
  EXPECT_EQ(ledger.entries()[0].seq, 8u);

  // Metrics surfaced the loss.
  int64_t quarantined_counter = 0;
  for (const obs::CounterValue& c : metrics.Snapshot().counters) {
    if (c.name == "store.recovery.blocks_quarantined") {
      quarantined_counter = c.value;
    }
  }
  EXPECT_EQ(quarantined_counter, 1);

  // The quarantine verdict is carried forward: commit on the recovered
  // store, reopen, and the dead block is still itemized.
  StatusOr<std::unique_ptr<Store>> w = Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Close().ok());
  StatusOr<std::unique_ptr<Store>> again =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ((*again)->recovery().quarantined.size(), 1u);
  EXPECT_EQ((*again)->recovery().quarantined[0].defect, BlockDefect::kBadCrc);
  EXPECT_EQ((*again)->rows_readable(), 24u);
}

TEST(StoreTest, TornTailIsTruncatedAndReopenIsIdempotent) {
  MemVfs vfs;
  {
    StatusOr<std::unique_ptr<Store>> opened =
        Store::Open(&vfs, "db", SmallBlocks());
    ASSERT_TRUE(opened.ok());
    Store& store = **opened;
    for (uint64_t i = 0; i < 24; ++i) {
      ASSERT_TRUE(store.Append(MakeRecord(i)).ok());
    }
    ASSERT_TRUE(store.Close().ok());
  }
  // Tear the last block: cut 17 bytes off the segment end, then invalidate
  // the manifest chain's view by removing CURRENT? No -- the manifest
  // references the full block, so the cut shows up as a manifested block
  // failing verification (quarantine), not a tail. To exercise *tail*
  // truncation, append garbage past the manifested end instead.
  const StatusOr<uint64_t> size = vfs.FileSize("db/000000.seg");
  ASSERT_TRUE(size.ok());
  {
    StatusOr<std::unique_ptr<WritableFile>> f =
        vfs.NewWritableFile("db/000000.seg", WriteMode::kAppend);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("SBLK torn garbage").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
  }

  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->recovery().tail_truncated);
  EXPECT_EQ((*reopened)->recovery().tail_bytes_discarded, 17u);
  EXPECT_EQ((*reopened)->rows_readable(), 24u);
  const StatusOr<uint64_t> size_after = vfs.FileSize("db/000000.seg");
  ASSERT_TRUE(size_after.ok());
  EXPECT_EQ(*size_after, *size);

  // Second open: nothing left to repair.
  StatusOr<std::unique_ptr<Store>> again =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)->recovery().tail_truncated);
  EXPECT_EQ((*again)->rows_readable(), 24u);
}

TEST(StoreTest, AppendAfterRecoveryContinuesRowIds) {
  MemVfs vfs;
  {
    StatusOr<std::unique_ptr<Store>> opened =
        Store::Open(&vfs, "db", SmallBlocks());
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE((*opened)->Append(MakeRecord(i)).ok());
    }
    ASSERT_TRUE((*opened)->Close().ok());
  }
  StatusOr<std::unique_ptr<Store>> reopened =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(reopened.ok());
  Store& store = **reopened;
  for (uint64_t i = 20; i < 40; ++i) {
    ASSERT_TRUE(store.Append(MakeRecord(i)).ok());
  }
  ASSERT_TRUE(store.Close().ok());

  StatusOr<std::unique_ptr<Store>> final_open =
      Store::Open(&vfs, "db", SmallBlocks());
  ASSERT_TRUE(final_open.ok());
  uint64_t seen = 0;
  ASSERT_TRUE((*final_open)
                  ->Scan([&](uint64_t row, const StRecord& rec) {
                    EXPECT_EQ(row, seen);
                    ExpectBitIdentical(rec, MakeRecord(row));
                    ++seen;
                  })
                  .ok());
  EXPECT_EQ(seen, 40u);
}

TEST(StoreTest, RejectsBadOptions) {
  MemVfs vfs;
  StoreOptions bad;
  bad.block_records = 0;
  EXPECT_FALSE(Store::Open(&vfs, "db", bad).ok());
}

}  // namespace
}  // namespace store
}  // namespace sidq

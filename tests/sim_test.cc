#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sim/fingerprint.h"
#include "sim/noise.h"
#include "sim/rfid.h"
#include "sim/road_network.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace sim {
namespace {

using geometry::BBox;
using geometry::Point;

// ------------------------------------------------------------ RoadNetwork

TEST(RoadNetworkTest, AddNodesAndEdges) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point(0, 0));
  const NodeId b = net.AddNode(Point(100, 0));
  ASSERT_TRUE(net.AddEdge(a, b).ok());
  EXPECT_EQ(net.num_nodes(), 2u);
  EXPECT_EQ(net.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(net.edge(0).length, 100.0);
  EXPECT_EQ(net.Opposite(0, a), b);
  EXPECT_FALSE(net.AddEdge(a, a).ok());
  EXPECT_FALSE(net.AddEdge(a, 99).ok());
}

TEST(RoadNetworkTest, ShortestPathOnSquare) {
  RoadNetwork net;
  // 0 -- 1
  // |    |
  // 2 -- 3, with the 0-1 edge long and 0-2-3-1 short overall.
  const NodeId n0 = net.AddNode(Point(0, 0));
  const NodeId n1 = net.AddNode(Point(100, 0));
  const NodeId n2 = net.AddNode(Point(0, 10));
  const NodeId n3 = net.AddNode(Point(100, 10));
  ASSERT_TRUE(net.AddEdge(n0, n1).ok());
  ASSERT_TRUE(net.AddEdge(n0, n2).ok());
  ASSERT_TRUE(net.AddEdge(n2, n3).ok());
  ASSERT_TRUE(net.AddEdge(n3, n1).ok());
  const auto path = net.ShortestPath(n0, n1);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (std::vector<NodeId>{n0, n1}));
  EXPECT_NEAR(net.ShortestPathLength(n0, n3), 110.0, 1e-9);
}

TEST(RoadNetworkTest, ShortestPathUnreachable) {
  RoadNetwork net;
  const NodeId a = net.AddNode(Point(0, 0));
  const NodeId b = net.AddNode(Point(10, 0));
  net.AddNode(Point(1000, 1000));  // isolated
  ASSERT_TRUE(net.AddEdge(a, b).ok());
  EXPECT_FALSE(net.ShortestPath(a, 2).ok());
  EXPECT_TRUE(std::isinf(net.ShortestPathLength(a, 2)));
}

TEST(RoadNetworkTest, NearestEdgeAndProjection) {
  Rng rng(1);
  RoadNetwork net = MakeGridRoadNetwork(5, 5, 100.0, 0.0, 0.0, &rng);
  const auto e = net.NearestEdge(Point(50, 2));
  ASSERT_TRUE(e.ok());
  EXPECT_LE(net.DistanceToEdge(e.value(), Point(50, 2)), 2.0 + 1e-9);
  const Point proj = net.ProjectToEdge(e.value(), Point(50, 2));
  EXPECT_NEAR(proj.y, 0.0, 1e-9);
}

TEST(RoadNetworkTest, GridGeneratorConnectivity) {
  Rng rng(2);
  RoadNetwork net = MakeGridRoadNetwork(6, 6, 100.0, 5.0, 0.0, &rng);
  EXPECT_EQ(net.num_nodes(), 36u);
  EXPECT_EQ(net.num_edges(), 60u);  // 2*6*5 with no drops
  // All pairs reachable when no edges dropped.
  EXPECT_TRUE(net.ShortestPath(0, 35).ok());
}

TEST(RoadNetworkTest, RandomRouteLongEnough) {
  Rng rng(3);
  RoadNetwork net = MakeGridRoadNetwork(8, 8, 100.0, 5.0, 0.05, &rng);
  const auto route = RandomRoute(net, 12, &rng);
  ASSERT_TRUE(route.ok());
  EXPECT_GE(route.value().size(), 12u);
  // Route edges must exist.
  for (size_t i = 1; i < route.value().size(); ++i) {
    const NodeId u = route.value()[i - 1];
    const NodeId v = route.value()[i];
    bool found = false;
    for (EdgeId e : net.incident_edges(u)) {
      found = found || net.Opposite(e, u) == v;
    }
    EXPECT_TRUE(found) << "hop " << i;
  }
}

// ----------------------------------------------------- TrajectorySimulator

TEST(TrajectorySimTest, AlongRouteRespectsSpeed) {
  Rng rng(4);
  RoadNetwork net = MakeGridRoadNetwork(6, 6, 200.0, 0.0, 0.0, &rng);
  TrajectorySimulator::Options opts;
  opts.mean_speed_mps = 10.0;
  opts.speed_jitter = 0.0;
  TrajectorySimulator simulator(opts, &rng);
  const auto route = RandomRoute(net, 10, &rng);
  ASSERT_TRUE(route.ok());
  const auto tr = simulator.AlongRoute(net, route.value(), 1);
  ASSERT_TRUE(tr.ok());
  EXPECT_GT(tr->size(), 10u);
  EXPECT_TRUE(tr->IsTimeOrdered());
  for (size_t i = 1; i < tr->size(); ++i) {
    EXPECT_LE(tr->SpeedAt(i), 10.5);
  }
}

TEST(TrajectorySimTest, AlongRouteRejectsBadInput) {
  Rng rng(5);
  RoadNetwork net = MakeGridRoadNetwork(3, 3, 100.0, 0.0, 0.0, &rng);
  TrajectorySimulator simulator({}, &rng);
  EXPECT_FALSE(simulator.AlongRoute(net, {0}, 1).ok());
  EXPECT_FALSE(simulator.AlongRoute(net, {0, 999}, 1).ok());
}

TEST(TrajectorySimTest, RandomWaypointStaysInBounds) {
  Rng rng(6);
  TrajectorySimulator simulator({}, &rng);
  const BBox bounds(0, 0, 500, 500);
  const Trajectory tr = simulator.RandomWaypoint(bounds, 200, 9);
  EXPECT_EQ(tr.size(), 200u);
  EXPECT_EQ(tr.object_id(), 9u);
  for (const auto& pt : tr.points()) {
    EXPECT_TRUE(bounds.Expanded(1e-6).Contains(pt.p));
  }
}

TEST(TrajectorySimTest, MakeFleet) {
  Rng rng(7);
  const Fleet fleet = MakeFleet(6, 6, 150.0, 5, 8, &rng);
  EXPECT_EQ(fleet.trajectories.size(), 5u);
  for (const auto& tr : fleet.trajectories) {
    EXPECT_GT(tr.size(), 5u);
  }
}

// ------------------------------------------------------------- Injectors

Trajectory StraightLine(int n) {
  Trajectory tr(1);
  for (int i = 0; i < n; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 10.0, 0.0)));
  }
  return tr;
}

TEST(NoiseTest, GpsNoiseMagnitude) {
  Rng rng(8);
  const Trajectory truth = StraightLine(500);
  const Trajectory noisy = AddGpsNoise(truth, 15.0, &rng);
  ASSERT_EQ(noisy.size(), truth.size());
  const double err = MeanErrorBetween(truth, noisy).value();
  // Mean of |N2(0, 15^2 I)| is 15 * sqrt(pi/2) ~ 18.8.
  EXPECT_NEAR(err, 18.8, 2.5);
  EXPECT_DOUBLE_EQ(noisy[0].accuracy, 15.0);
}

TEST(NoiseTest, OutliersLabelled) {
  Rng rng(9);
  const Trajectory truth = StraightLine(1000);
  std::vector<bool> labels;
  const Trajectory dirty =
      AddOutliers(truth, 0.10, 100.0, 200.0, &rng, &labels);
  ASSERT_EQ(labels.size(), truth.size());
  size_t count = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i]) {
      ++count;
      const double d = geometry::Distance(dirty[i].p, truth[i].p);
      EXPECT_GE(d, 100.0 - 1e-9);
      EXPECT_LE(d, 200.0 + 1e-9);
    } else {
      EXPECT_EQ(dirty[i].p, truth[i].p);
    }
  }
  EXPECT_NEAR(static_cast<double>(count) / labels.size(), 0.10, 0.03);
}

TEST(NoiseTest, DropKeepsEndpoints) {
  Rng rng(10);
  const Trajectory truth = StraightLine(100);
  const Trajectory sparse = DropSamples(truth, 0.5, &rng);
  EXPECT_LT(sparse.size(), 75u);
  EXPECT_EQ(sparse.front().t, truth.front().t);
  EXPECT_EQ(sparse.back().t, truth.back().t);
}

TEST(NoiseTest, ResampleInterval) {
  const Trajectory truth = StraightLine(100);
  const Trajectory coarse = Resample(truth, 5000);
  // 0, 5000, ..., 95000 plus the preserved final point at 99000.
  EXPECT_EQ(coarse.size(), 21u);
  for (size_t i = 1; i + 1 < coarse.size(); ++i) {
    EXPECT_GE(coarse[i].t - coarse[i - 1].t, 5000);
  }
}

TEST(NoiseTest, DuplicatesIncreaseSize) {
  Rng rng(11);
  const Trajectory truth = StraightLine(200);
  const Trajectory dup = DuplicateSamples(truth, 0.3, &rng);
  EXPECT_GT(dup.size(), truth.size());
  EXPECT_TRUE(dup.IsTimeOrdered());
}

TEST(NoiseTest, JitterBreaksOrder) {
  Rng rng(12);
  const Trajectory truth = StraightLine(200);
  const Trajectory jittered = JitterTimestamps(truth, 2000.0, &rng);
  EXPECT_FALSE(jittered.IsTimeOrdered());
}

TEST(NoiseTest, QuantizeSnapsToGrid) {
  const Trajectory truth = StraightLine(10);
  const Trajectory q = QuantizeCoordinates(truth, 25.0);
  for (const auto& pt : q.points()) {
    EXPECT_NEAR(std::fmod(pt.p.x, 25.0), 0.0, 1e-9);
  }
}

TEST(NoiseTest, TruncateTailShortens) {
  const Trajectory truth = StraightLine(100);
  const Trajectory stale = TruncateTail(truth, 30'000);
  EXPECT_EQ(stale.back().t, truth.back().t - 30'000);
}

// ------------------------------------------------------------ SensorField

TEST(SensorFieldTest, SpatialAutocorrelation) {
  Rng rng(13);
  const BBox bounds(0, 0, 3000, 3000);
  const auto field =
      ScalarField::MakeRandom(bounds, 4, 10.0, 40.0, 400, 800, 3600, &rng);
  // Nearby points have closer values than distant ones, on average.
  double near_diff = 0.0, far_diff = 0.0;
  for (int i = 0; i < 100; ++i) {
    const Point p(rng.Uniform(500, 2500), rng.Uniform(500, 2500));
    const Point q_near(p.x + 20, p.y);
    const Point q_far(p.x + 1500 > 3000 ? p.x - 1500 : p.x + 1500, p.y);
    near_diff += std::abs(field.Value(p, 0) - field.Value(q_near, 0));
    far_diff += std::abs(field.Value(p, 0) - field.Value(q_far, 0));
  }
  EXPECT_LT(near_diff, far_diff);
}

TEST(SensorFieldTest, SampleFieldShape) {
  Rng rng(14);
  const BBox bounds(0, 0, 1000, 1000);
  const auto field =
      ScalarField::MakeRandom(bounds, 2, 5.0, 20.0, 200, 400, 3600, &rng);
  const auto sensors = DeploySensors(bounds, 10, &rng);
  const StDataset ds = SampleField(field, sensors, 0, 60'000, 30, "pm25");
  EXPECT_EQ(ds.num_sensors(), 10u);
  EXPECT_EQ(ds.TotalRecords(), 300u);
  EXPECT_EQ(ds.field_name(), "pm25");
}

TEST(SensorFieldTest, SpikesLabelled) {
  Rng rng(15);
  const BBox bounds(0, 0, 1000, 1000);
  const auto field =
      ScalarField::MakeRandom(bounds, 2, 5.0, 20.0, 200, 400, 3600, &rng);
  const StDataset truth =
      SampleField(field, DeploySensors(bounds, 20, &rng), 0, 60'000, 50,
                  "pm25");
  std::vector<std::vector<bool>> labels;
  const StDataset spiked = AddValueSpikes(truth, 0.05, 50.0, &rng, &labels);
  ASSERT_EQ(labels.size(), 20u);
  size_t total = 0, flagged = 0;
  for (size_t s = 0; s < labels.size(); ++s) {
    for (size_t i = 0; i < labels[s].size(); ++i) {
      ++total;
      if (labels[s][i]) {
        ++flagged;
        EXPECT_NEAR(std::abs(spiked.series()[s][i].value -
                             truth.series()[s][i].value),
                    50.0, 1e-9);
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(flagged) / total, 0.05, 0.02);
}

TEST(SensorFieldTest, StuckSensors) {
  Rng rng(16);
  const BBox bounds(0, 0, 1000, 1000);
  const auto field =
      ScalarField::MakeRandom(bounds, 2, 5.0, 20.0, 200, 400, 3600, &rng);
  const StDataset truth =
      SampleField(field, DeploySensors(bounds, 30, &rng), 0, 60'000, 40,
                  "pm25");
  std::vector<bool> stuck;
  const StDataset dirty = AddStuckSensors(truth, 0.5, &rng, &stuck);
  ASSERT_EQ(stuck.size(), 30u);
  size_t stuck_count = 0;
  for (size_t s = 0; s < stuck.size(); ++s) {
    if (!stuck[s]) continue;
    ++stuck_count;
    const auto& recs = dirty.series()[s].records();
    // The tail must contain at least two equal consecutive values.
    EXPECT_EQ(recs.back().value, recs[recs.size() - 2].value);
  }
  EXPECT_GT(stuck_count, 5u);
}

TEST(SensorFieldTest, DropSensorsKeepsAtLeastOne) {
  Rng rng(17);
  const BBox bounds(0, 0, 500, 500);
  const auto field =
      ScalarField::MakeRandom(bounds, 1, 5.0, 10.0, 100, 200, 3600, &rng);
  const StDataset truth =
      SampleField(field, DeploySensors(bounds, 10, &rng), 0, 60'000, 5,
                  "x");
  const StDataset few = DropSensors(truth, 0.0, &rng);
  EXPECT_EQ(few.num_sensors(), 1u);
}

// ------------------------------------------------------------- RSSI world

TEST(RssiWorldTest, PathLossMonotone) {
  std::vector<AccessPoint> aps{{Point(0, 0), -30.0, 3.0}};
  const RssiWorld world(std::move(aps));
  EXPECT_GT(world.TrueRssi(0, Point(10, 0)), world.TrueRssi(0, Point(100, 0)));
  EXPECT_DOUBLE_EQ(world.TrueRssi(0, Point(0.5, 0)), -30.0);  // d floored at 1
}

TEST(RssiWorldTest, MeasureNoise) {
  Rng rng(18);
  const RssiWorld world =
      RssiWorld::MakeRandom(BBox(0, 0, 100, 100), 5, &rng);
  const auto m = world.Measure(Point(50, 50), 2.0, &rng);
  EXPECT_EQ(m.size(), 5u);
}

TEST(RssiWorldTest, FingerprintDatabaseLayout) {
  Rng rng(19);
  const BBox bounds(0, 0, 100, 80);
  const RssiWorld world = RssiWorld::MakeRandom(bounds, 6, &rng);
  const auto db = BuildFingerprintDatabase(world, bounds, 10, 8, 4, 2.0, &rng);
  EXPECT_EQ(db.size(), 80u);
  EXPECT_EQ(db.front().rssi.size(), 6u);
  // Cell centres are inside the bounds.
  for (const auto& fp : db) {
    EXPECT_TRUE(bounds.Contains(fp.p));
  }
}

// ------------------------------------------------------------------ RFID

TEST(RfidTest, CorridorAdjacency) {
  const RfidDeployment d = RfidDeployment::Corridor(5);
  EXPECT_EQ(d.num_readers(), 5u);
  EXPECT_TRUE(d.Adjacent(0, 1));
  EXPECT_TRUE(d.Adjacent(3, 2));
  EXPECT_FALSE(d.Adjacent(0, 2));
  EXPECT_FALSE(d.Adjacent(0, 0));
}

TEST(RfidTest, RingAdjacencyWraps) {
  const RfidDeployment d = RfidDeployment::Ring(6);
  EXPECT_TRUE(d.Adjacent(0, 5));
  EXPECT_TRUE(d.Adjacent(5, 0));
  EXPECT_FALSE(d.Adjacent(0, 3));
}

TEST(RfidTest, WalkIsAdjacencyRespecting) {
  Rng rng(20);
  const RfidDeployment d = RfidDeployment::Corridor(10);
  const SymbolicTrajectory walk = d.SimulateWalk(1, 20, 3, 1000, &rng);
  EXPECT_EQ(walk.size(), 60u);
  const auto seq = walk.RegionSequence();
  for (size_t i = 1; i < seq.size(); ++i) {
    EXPECT_TRUE(d.Adjacent(seq[i - 1], seq[i]));
  }
}

TEST(RfidTest, DegradeDropsAndGhosts) {
  Rng rng(21);
  const RfidDeployment d = RfidDeployment::Corridor(8);
  const SymbolicTrajectory truth = d.SimulateWalk(1, 30, 4, 1000, &rng);
  const SymbolicTrajectory none = d.Degrade(truth, 0.0, 0.0, &rng);
  EXPECT_EQ(none.size(), truth.size());
  const SymbolicTrajectory fn_only = d.Degrade(truth, 0.4, 0.0, &rng);
  EXPECT_LT(fn_only.size(), truth.size());
  const SymbolicTrajectory fp_only = d.Degrade(truth, 0.0, 0.4, &rng);
  EXPECT_GT(fp_only.size(), truth.size());
  EXPECT_TRUE(fp_only.readings().size() > 0);
}

}  // namespace
}  // namespace sim
}  // namespace sidq

#include <cmath>

#include <gtest/gtest.h>

#include "refine/collaborative.h"
#include "refine/hmm_map_matcher.h"
#include "refine/kalman.h"
#include "refine/least_squares.h"
#include "refine/particle_filter.h"
#include "refine/wknn.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace refine {
namespace {

using geometry::BBox;
using geometry::Point;

// ------------------------------------------------------------------- WkNN

class WknnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<sim::RssiWorld>(
        sim::RssiWorld::MakeRandom(bounds_, 8, &rng_));
    db_ = sim::BuildFingerprintDatabase(*world_, bounds_, 12, 12, 6, 2.0,
                                        &rng_);
  }

  Rng rng_{101};
  BBox bounds_{0, 0, 120, 120};
  std::unique_ptr<sim::RssiWorld> world_;
  std::vector<sim::Fingerprint> db_;
};

TEST_F(WknnTest, LocalizesWithinReason) {
  const WknnLocalizer localizer(db_);
  double total_err = 0.0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const Point truth(rng_.Uniform(10, 110), rng_.Uniform(10, 110));
    const auto est = localizer.Estimate(world_->Measure(truth, 2.0, &rng_));
    ASSERT_TRUE(est.ok());
    total_err += geometry::Distance(est.value(), truth);
  }
  // Cell size is 10 m; WkNN should land within a few cells.
  EXPECT_LT(total_err / trials, 15.0);
}

TEST_F(WknnTest, WeightedBeatsNearestNeighbour) {
  const WknnLocalizer localizer(db_);
  double wknn_err = 0.0, nn_err = 0.0;
  for (int i = 0; i < 120; ++i) {
    const Point truth(rng_.Uniform(10, 110), rng_.Uniform(10, 110));
    const auto m = world_->Measure(truth, 3.0, &rng_);
    wknn_err += geometry::Distance(localizer.Estimate(m).value(), truth);
    nn_err += geometry::Distance(localizer.EstimateNn(m).value(), truth);
  }
  EXPECT_LT(wknn_err, nn_err);
}

TEST_F(WknnTest, RejectsBadInput) {
  const WknnLocalizer localizer(db_);
  EXPECT_FALSE(localizer.Estimate(std::vector<double>(3, -50.0)).ok());
  const WknnLocalizer empty{std::vector<sim::Fingerprint>{}};
  EXPECT_FALSE(empty.Estimate(std::vector<double>(8, -50.0)).ok());
}

// ----------------------------------------------------------- Trilateration

TEST(WlsTrilaterationTest, ExactRangesRecoverPosition) {
  const Point truth(30.0, 40.0);
  std::vector<RangeMeasurement> ms;
  for (const Point anchor :
       {Point(0, 0), Point(100, 0), Point(0, 100), Point(100, 100)}) {
    ms.push_back({anchor, geometry::Distance(anchor, truth), 1.0});
  }
  const WlsTrilaterator solver;
  const auto est = solver.Solve(ms);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->x, truth.x, 1e-3);
  EXPECT_NEAR(est->y, truth.y, 1e-3);
}

TEST(WlsTrilaterationTest, NoisyRangesStillClose) {
  Rng rng(7);
  const Point truth(55.0, 25.0);
  std::vector<RangeMeasurement> ms;
  for (const Point anchor : {Point(0, 0), Point(100, 0), Point(0, 100),
                             Point(100, 100), Point(50, 120)}) {
    ms.push_back(
        {anchor,
         std::max(0.0, geometry::Distance(anchor, truth) +
                           rng.Gaussian(0.0, 2.0)),
         2.0});
  }
  const auto est = WlsTrilaterator().Solve(ms);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(geometry::Distance(est.value(), truth), 6.0);
}

TEST(WlsTrilaterationTest, WeightsFavourAccurateAnchors) {
  // Three accurate anchors plus one wildly wrong but high-sigma anchor:
  // WLS must hold close to the truth.
  const Point truth(50.0, 50.0);
  std::vector<RangeMeasurement> ms;
  for (const Point anchor : {Point(0, 0), Point(100, 0), Point(0, 100)}) {
    ms.push_back({anchor, geometry::Distance(anchor, truth), 0.5});
  }
  ms.push_back({Point(100, 100), 5.0, 50.0});  // wrong by ~65 m, downweighted
  const auto est = WlsTrilaterator().Solve(ms);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(geometry::Distance(est.value(), truth), 3.0);
}

TEST(WlsTrilaterationTest, RejectsTooFewRanges) {
  std::vector<RangeMeasurement> ms(2);
  EXPECT_FALSE(WlsTrilaterator().Solve(ms).ok());
}

TEST(FuseEstimatesTest, InverseVarianceFusion) {
  std::vector<LocationEstimate> es{{Point(0, 0), 1.0}, {Point(10, 0), 4.0}};
  const auto fused = FuseEstimates(es);
  ASSERT_TRUE(fused.ok());
  // Weight 1 vs 0.25 -> x = 10*0.25/1.25 = 2.
  EXPECT_NEAR(fused->p.x, 2.0, 1e-9);
  EXPECT_NEAR(fused->variance, 0.8, 1e-9);
  EXPECT_FALSE(FuseEstimates({}).ok());
}

TEST(FuseEstimatesTest, FusionBeatsEverySingleSource) {
  Rng rng(8);
  const Point truth(0.0, 0.0);
  double fused_err = 0.0, best_single_err = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    std::vector<LocationEstimate> es;
    double single = 1e9;
    for (double sigma : {5.0, 8.0, 12.0}) {
      LocationEstimate e;
      e.p = Point(rng.Gaussian(0, sigma), rng.Gaussian(0, sigma));
      e.variance = sigma * sigma;
      single = std::min(single, 5.0);  // best individual sigma is 5
      es.push_back(e);
    }
    fused_err += FuseEstimates(es)->p.Norm();
    best_single_err += es[0].p.Norm();  // the sigma=5 source
    (void)single;
  }
  EXPECT_LT(fused_err / trials, best_single_err / trials);
}

// ----------------------------------------------------------------- Kalman

class KalmanTest : public ::testing::Test {
 protected:
  Trajectory MakeNoisyLine(double sigma, int n = 200) {
    Trajectory truth(1);
    for (int i = 0; i < n; ++i) {
      truth.AppendUnordered(
          TrajectoryPoint(i * 1000, Point(i * 10.0, i * 5.0)));
    }
    truth_ = truth;
    return sim::AddGpsNoise(truth, sigma, &rng_);
  }

  Rng rng_{202};
  Trajectory truth_;
};

TEST_F(KalmanTest, FilterReducesError) {
  const Trajectory noisy = MakeNoisyLine(15.0);
  KalmanFilter2D::Options opts;
  opts.process_noise = 0.5;
  const KalmanFilter2D kf(opts);
  const auto filtered = kf.Filter(noisy);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(RmseBetween(truth_, filtered.value()).value(),
            RmseBetween(truth_, noisy).value() * 0.8);
}

TEST_F(KalmanTest, SmootherBeatsFilter) {
  const Trajectory noisy = MakeNoisyLine(15.0);
  KalmanFilter2D::Options opts;
  opts.process_noise = 0.5;
  const KalmanFilter2D kf(opts);
  const double filter_err =
      RmseBetween(truth_, kf.Filter(noisy).value()).value();
  const double smooth_err =
      RmseBetween(truth_, kf.Smooth(noisy).value()).value();
  EXPECT_LT(smooth_err, filter_err);
}

TEST_F(KalmanTest, RejectsBadInput) {
  const KalmanFilter2D kf;
  EXPECT_FALSE(kf.Filter(Trajectory(1)).ok());
  Trajectory unordered(1);
  unordered.AppendUnordered(TrajectoryPoint(1000, {0, 0}));
  unordered.AppendUnordered(TrajectoryPoint(0, {1, 1}));
  EXPECT_FALSE(kf.Filter(unordered).ok());
}

TEST_F(KalmanTest, UsesPerPointAccuracy) {
  // Points with tiny reported accuracy should be followed closely.
  Trajectory noisy(1);
  for (int i = 0; i < 50; ++i) {
    noisy.AppendUnordered(
        TrajectoryPoint(i * 1000, Point(i * 10.0, 0.0), 0.01));
  }
  const auto filtered = KalmanFilter2D().Filter(noisy);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(MeanErrorBetween(noisy, filtered.value()).value(), 0.5);
}

// ---------------------------------------------------------- ParticleFilter

TEST(ParticleFilterTest, ReducesNoise) {
  Rng rng(303);
  Trajectory truth(1);
  for (int i = 0; i < 150; ++i) {
    truth.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 8.0, 0.0)));
  }
  const Trajectory noisy = sim::AddGpsNoise(truth, 12.0, &rng);
  ParticleFilter2D::Options opts;
  opts.num_particles = 400;
  ParticleFilter2D pf(opts, &rng);
  const auto filtered = pf.Filter(noisy);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(RmseBetween(truth, filtered.value()).value(),
            RmseBetween(truth, noisy).value());
}

TEST(ParticleFilterTest, RoadConstraintHelps) {
  Rng rng(304);
  sim::RoadNetwork net = sim::MakeGridRoadNetwork(6, 6, 200.0, 0.0, 0.0, &rng);
  sim::TrajectorySimulator::Options sopts;
  sopts.mean_speed_mps = 10.0;
  sim::TrajectorySimulator simulator(sopts, &rng);
  const auto truth = simulator.RandomOnNetwork(net, 10, 1);
  ASSERT_TRUE(truth.ok());
  const Trajectory noisy = sim::AddGpsNoise(truth.value(), 20.0, &rng);

  ParticleFilter2D::Options opts;
  opts.num_particles = 300;
  ParticleFilter2D free_pf(opts, &rng);
  const double free_err =
      RmseBetween(truth.value(), free_pf.Filter(noisy).value()).value();

  ParticleFilter2D road_pf(opts, &rng);
  road_pf.AttachNetwork(&net);
  const double road_err =
      RmseBetween(truth.value(), road_pf.Filter(noisy).value()).value();
  EXPECT_LT(road_err, free_err * 1.05);  // constraint must not hurt; usually helps
}

TEST(ParticleFilterTest, RejectsEmpty) {
  Rng rng(305);
  ParticleFilter2D pf({}, &rng);
  EXPECT_FALSE(pf.Filter(Trajectory(1)).ok());
}

// ------------------------------------------------------------ MapMatching

TEST(HmmMapMatcherTest, SnapsToTrueRoute) {
  Rng rng(404);
  sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(8, 8, 150.0, 5.0, 0.0, &rng);
  sim::TrajectorySimulator::Options sopts;
  sopts.mean_speed_mps = 12.0;
  sim::TrajectorySimulator simulator(sopts, &rng);
  const auto truth = simulator.RandomOnNetwork(net, 14, 1);
  ASSERT_TRUE(truth.ok());
  const Trajectory noisy = sim::AddGpsNoise(truth.value(), 15.0, &rng);

  HmmMapMatcher matcher(&net);
  const auto result = matcher.Match(noisy);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matched.size(), noisy.size());
  ASSERT_EQ(result->edges.size(), noisy.size());
  EXPECT_LT(RmseBetween(truth.value(), result->matched).value(),
            RmseBetween(truth.value(), noisy).value());
  // Matched points must lie on their edges.
  for (size_t i = 0; i < result->edges.size(); ++i) {
    EXPECT_LT(net.DistanceToEdge(result->edges[i], result->matched[i].p),
              1e-6);
  }
}

TEST(HmmMapMatcherTest, RejectsEmpty) {
  Rng rng(405);
  sim::RoadNetwork net = sim::MakeGridRoadNetwork(3, 3, 100.0, 0.0, 0.0, &rng);
  HmmMapMatcher matcher(&net);
  EXPECT_FALSE(matcher.Match(Trajectory(1)).ok());
}

// ---------------------------------------------------------- Collaborative

TEST(JointDenoiseTest, RemovesSharedBias) {
  Rng rng(505);
  const Point bias(12.0, -7.0);
  std::vector<JointDenoiseInput> inputs;
  std::vector<Point> truths;
  for (int i = 0; i < 20; ++i) {
    const Point truth(rng.Uniform(0, 100), rng.Uniform(0, 100));
    truths.push_back(truth);
    JointDenoiseInput in;
    in.observed = truth + bias +
                  Point(rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5));
    in.is_anchor = i < 4;
    in.anchor_truth = truth;
    inputs.push_back(in);
  }
  const auto corrected = JointDenoise(inputs);
  ASSERT_TRUE(corrected.ok());
  double err = 0.0;
  for (size_t i = 0; i < truths.size(); ++i) {
    err += geometry::Distance(corrected.value()[i], truths[i]);
  }
  EXPECT_LT(err / truths.size(), 1.5);  // bias (|14|) nearly eliminated
}

TEST(JointDenoiseTest, NeedsAnchor) {
  std::vector<JointDenoiseInput> inputs(3);
  EXPECT_FALSE(JointDenoise(inputs).ok());
}

TEST(IterativeRefinerTest, PairRangesImproveBatch) {
  Rng rng(606);
  std::vector<Point> truths;
  for (int i = 0; i < 15; ++i) {
    truths.emplace_back(rng.Uniform(0, 200), rng.Uniform(0, 200));
  }
  std::vector<Point> observed;
  for (const Point& t : truths) {
    observed.emplace_back(t.x + rng.Gaussian(0, 8.0),
                          t.y + rng.Gaussian(0, 8.0));
  }
  std::vector<PairRange> ranges;
  for (size_t i = 0; i < truths.size(); ++i) {
    for (size_t j = i + 1; j < truths.size(); ++j) {
      PairRange r;
      r.i = i;
      r.j = j;
      r.distance = geometry::Distance(truths[i], truths[j]) +
                   rng.Gaussian(0, 0.5);
      r.sigma = 0.5;
      ranges.push_back(r);
    }
  }
  const auto refined = IterativeRefiner().Refine(observed, ranges);
  ASSERT_TRUE(refined.ok());
  double before = 0.0, after = 0.0;
  for (size_t i = 0; i < truths.size(); ++i) {
    before += geometry::Distance(observed[i], truths[i]);
    after += geometry::Distance(refined.value()[i], truths[i]);
  }
  EXPECT_LT(after, before);
}

TEST(IterativeRefinerTest, RejectsBadPairIndices) {
  std::vector<Point> observed(3);
  std::vector<PairRange> ranges{{0, 9, 10.0, 1.0}};
  EXPECT_FALSE(IterativeRefiner().Refine(observed, ranges).ok());
  ranges = {{1, 1, 10.0, 1.0}};
  EXPECT_FALSE(IterativeRefiner().Refine(observed, ranges).ok());
}

// Parameterised: Kalman improvement grows with noise.
class KalmanNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(KalmanNoiseSweep, AlwaysImprovesOnStraightMotion) {
  const double sigma = GetParam();
  Rng rng(707);
  Trajectory truth(1);
  for (int i = 0; i < 300; ++i) {
    truth.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 12.0, 0.0)));
  }
  const Trajectory noisy = sim::AddGpsNoise(truth, sigma, &rng);
  KalmanFilter2D::Options opts;
  opts.process_noise = 0.3;
  const auto smoothed = KalmanFilter2D(opts).Smooth(noisy);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_LT(RmseBetween(truth, smoothed.value()).value(),
            RmseBetween(truth, noisy).value() * 0.6);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, KalmanNoiseSweep,
                         ::testing::Values(5.0, 10.0, 20.0, 40.0));

}  // namespace
}  // namespace refine
}  // namespace sidq

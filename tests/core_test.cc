#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/random.h"
#include "core/status.h"
#include "core/statusor.h"
#include "core/stid.h"
#include "core/symbolic.h"
#include "core/trajectory.h"
#include "sim/noise.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

StatusOr<int> Doubler(StatusOr<int> in) {
  SIDQ_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalWeights) {
  Rng rng(4);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

// -------------------------------------------------------------- Trajectory

Trajectory MakeLine(ObjectId id, int n, Timestamp dt_ms, double speed_mps) {
  Trajectory tr(id);
  for (int i = 0; i < n; ++i) {
    const double t_s = TimestampToSeconds(i * dt_ms);
    EXPECT_TRUE(
        tr.Append(TrajectoryPoint(i * dt_ms,
                                  geometry::Point(speed_mps * t_s, 0.0)))
            .ok());
  }
  return tr;
}

TEST(TrajectoryTest, AppendEnforcesOrder) {
  Trajectory tr(1);
  EXPECT_TRUE(tr.Append(TrajectoryPoint(10, {0, 0})).ok());
  EXPECT_TRUE(tr.Append(TrajectoryPoint(10, {1, 0})).ok());  // equal ok
  EXPECT_FALSE(tr.Append(TrajectoryPoint(5, {2, 0})).ok());
}

TEST(TrajectoryTest, SortByTimeStable) {
  Trajectory tr(1);
  tr.AppendUnordered(TrajectoryPoint(30, {3, 0}));
  tr.AppendUnordered(TrajectoryPoint(10, {1, 0}));
  tr.AppendUnordered(TrajectoryPoint(20, {2, 0}));
  EXPECT_FALSE(tr.IsTimeOrdered());
  tr.SortByTime();
  EXPECT_TRUE(tr.IsTimeOrdered());
  EXPECT_EQ(tr[0].p.x, 1.0);
  EXPECT_EQ(tr[2].p.x, 3.0);
}

TEST(TrajectoryTest, DurationLengthSpeed) {
  const Trajectory tr = MakeLine(1, 11, 1000, 10.0);
  EXPECT_EQ(tr.Duration(), 10000);
  EXPECT_NEAR(tr.Length(), 100.0, 1e-9);
  EXPECT_NEAR(tr.SpeedAt(5), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(tr.SpeedAt(0), 0.0);
  EXPECT_DOUBLE_EQ(tr.MeanSamplingIntervalSeconds(), 1.0);
}

TEST(TrajectoryTest, InterpolateAt) {
  const Trajectory tr = MakeLine(1, 11, 1000, 10.0);
  auto p = tr.InterpolateAt(5500);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 55.0, 1e-9);
  EXPECT_FALSE(tr.InterpolateAt(-1).ok());
  EXPECT_FALSE(tr.InterpolateAt(10001).ok());
  EXPECT_FALSE(Trajectory(2).InterpolateAt(0).ok());
}

TEST(TrajectoryTest, NearestIndexByTime) {
  const Trajectory tr = MakeLine(1, 11, 1000, 10.0);
  EXPECT_EQ(tr.NearestIndexByTime(5400).value(), 5u);
  EXPECT_EQ(tr.NearestIndexByTime(5600).value(), 6u);
  EXPECT_EQ(tr.NearestIndexByTime(-100).value(), 0u);
  EXPECT_EQ(tr.NearestIndexByTime(999999).value(), 10u);
}

TEST(TrajectoryTest, Slice) {
  const Trajectory tr = MakeLine(1, 11, 1000, 10.0);
  const Trajectory mid = tr.Slice(3000, 7000);
  EXPECT_EQ(mid.size(), 5u);
  EXPECT_EQ(mid.front().t, 3000);
  EXPECT_EQ(mid.back().t, 7000);
}

TEST(TrajectoryTest, RmseAndMeanError) {
  const Trajectory a = MakeLine(1, 5, 1000, 10.0);
  Trajectory b(1);
  for (const auto& pt : a.points()) {
    b.AppendUnordered(TrajectoryPoint(pt.t, {pt.p.x, pt.p.y + 3.0}));
  }
  EXPECT_NEAR(RmseBetween(a, b).value(), 3.0, 1e-9);
  EXPECT_NEAR(MeanErrorBetween(a, b).value(), 3.0, 1e-9);
  EXPECT_FALSE(RmseBetween(a, MakeLine(1, 3, 1000, 10.0)).ok());
}

// -------------------------------------------------------------------- STID

TEST(StSeriesTest, AppendInterpolate) {
  StSeries s(7, geometry::Point(1, 2));
  ASSERT_TRUE(s.Append(0, 10.0).ok());
  ASSERT_TRUE(s.Append(1000, 20.0).ok());
  EXPECT_FALSE(s.Append(500, 15.0).ok());
  EXPECT_NEAR(s.InterpolateAt(500).value(), 15.0, 1e-9);
  EXPECT_FALSE(s.InterpolateAt(2000).ok());
  EXPECT_EQ(s.Values(), (std::vector<double>{10.0, 20.0}));
}

TEST(StDatasetTest, FindAndAggregate) {
  StDataset ds("pm25");
  StSeries a(1, geometry::Point(0, 0));
  ASSERT_TRUE(a.Append(0, 1.0).ok());
  StSeries b(2, geometry::Point(100, 100));
  ASSERT_TRUE(b.Append(0, 2.0).ok());
  ASSERT_TRUE(b.Append(60, 3.0).ok());
  ds.AddSeries(a);
  ds.AddSeries(b);
  EXPECT_EQ(ds.TotalRecords(), 3u);
  EXPECT_TRUE(ds.FindSeries(2).ok());
  EXPECT_FALSE(ds.FindSeries(99).ok());
  EXPECT_EQ(ds.AllRecords().size(), 3u);
  EXPECT_DOUBLE_EQ(ds.SpatialBounds().Width(), 100.0);
}

// ---------------------------------------------------------------- Symbolic

TEST(SymbolicTest, DedupAndSequence) {
  SymbolicTrajectory tr(1);
  tr.Append(3, 0);
  tr.Append(3, 1000);
  tr.Append(5, 2000);
  tr.Append(5, 3000);
  tr.Append(3, 4000);
  const SymbolicTrajectory dedup = tr.Deduplicated();
  EXPECT_EQ(dedup.size(), 3u);
  EXPECT_EQ(tr.RegionSequence(), (std::vector<RegionId>{3, 5, 3}));
}

TEST(SymbolicTest, SortByTime) {
  SymbolicTrajectory tr(1);
  tr.Append(2, 5000);
  tr.Append(1, 1000);
  tr.SortByTime();
  EXPECT_EQ(tr[0].region, 1u);
}

// ------------------------------------------------------------- DQ quality

TEST(QualityTest, DimensionNamesAndPolarity) {
  EXPECT_STREQ(DqDimensionName(DqDimension::kAccuracy), "accuracy");
  EXPECT_TRUE(MetricLargerIsWorse(DqDimension::kAccuracy));
  EXPECT_FALSE(MetricLargerIsWorse(DqDimension::kCompleteness));
}

TEST(QualityTest, ReportSetGet) {
  DqReport r;
  EXPECT_FALSE(r.Has(DqDimension::kLatency));
  r.Set(DqDimension::kLatency, 1.5);
  EXPECT_TRUE(r.Has(DqDimension::kLatency));
  EXPECT_DOUBLE_EQ(r.Get(DqDimension::kLatency), 1.5);
  EXPECT_NE(r.ToString().find("latency"), std::string::npos);
}

TEST(QualityTest, DiagnoseChangesDirection) {
  DqReport clean, dirty;
  clean.Set(DqDimension::kAccuracy, 1.0);
  dirty.Set(DqDimension::kAccuracy, 10.0);  // error up = degraded
  clean.Set(DqDimension::kCompleteness, 1.0);
  dirty.Set(DqDimension::kCompleteness, 0.5);  // completeness down = degraded
  clean.Set(DqDimension::kRedundancy, 0.01);
  dirty.Set(DqDimension::kRedundancy, 0.011);  // within threshold: no issue
  const auto issues = DiagnoseChanges(clean, dirty, 0.10);
  ASSERT_EQ(issues.size(), 2u);
  for (const DqIssue& issue : issues) {
    EXPECT_TRUE(issue.degraded);
  }
}

TEST(QualityTest, ProfilerOnNoisyTrajectory) {
  Rng rng(11);
  sim::TrajectorySimulator::Options opts;
  sim::TrajectorySimulator simulator(opts, &rng);
  const Trajectory truth =
      simulator.RandomWaypoint(geometry::BBox(0, 0, 2000, 2000), 300, 1);
  const Trajectory noisy = sim::AddGpsNoise(truth, 20.0, &rng);
  TrajectoryProfiler profiler;
  std::vector<Trajectory> obs_clean{truth}, obs_noisy{noisy}, tru{truth};
  const DqReport clean = profiler.Profile(obs_clean, &tru);
  const DqReport dirty = profiler.Profile(obs_noisy, &tru);
  // Noise should visibly degrade precision and accuracy.
  EXPECT_GT(dirty.Get(DqDimension::kPrecision),
            clean.Get(DqDimension::kPrecision) * 2.0);
  EXPECT_GT(dirty.Get(DqDimension::kAccuracy), 10.0);
  EXPECT_LT(clean.Get(DqDimension::kAccuracy), 1e-6);
}

TEST(QualityTest, ProfilerDetectsSparsityAndIncompleteness) {
  Rng rng(12);
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory truth =
      simulator.RandomWaypoint(geometry::BBox(0, 0, 2000, 2000), 300, 1);
  const Trajectory sparse = sim::DropSamples(truth, 0.6, &rng);
  TrajectoryProfiler profiler;
  std::vector<Trajectory> obs{sparse}, tru{truth};
  const DqReport report = profiler.Profile(obs, &tru);
  EXPECT_GT(report.Get(DqDimension::kTimeSparsity), 1.5);
  EXPECT_LT(report.Get(DqDimension::kCompleteness), 0.6);
}

TEST(QualityTest, ProfilerLatency) {
  Rng rng(13);
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory truth =
      simulator.RandomWaypoint(geometry::BBox(0, 0, 500, 500), 50, 1);
  std::vector<Timestamp> arrival;
  const Trajectory delayed =
      sim::AddDeliveryDelay(truth, 4.0, &rng, &arrival);
  TrajectoryProfiler profiler;
  std::vector<Trajectory> obs{delayed};
  std::vector<std::vector<Timestamp>> arrivals{arrival};
  const DqReport report = profiler.Profile(obs, nullptr, &arrivals);
  EXPECT_NEAR(report.Get(DqDimension::kLatency), 4.0, 1.5);
}

TEST(QualityTest, StidProfilerBasics) {
  Rng rng(14);
  const geometry::BBox bounds(0, 0, 2000, 2000);
  const auto field =
      sim::ScalarField::MakeRandom(bounds, 3, 10.0, 30.0, 300, 600, 3600, &rng);
  const auto sensors = sim::DeploySensors(bounds, 30, &rng);
  const StDataset truth =
      sim::SampleField(field, sensors, 0, 60'000, 40, "pm25");
  const StDataset noisy = sim::AddValueNoise(truth, 3.0, &rng);
  StidProfiler profiler;
  const DqReport clean = profiler.Profile(truth, &truth);
  const DqReport dirty = profiler.Profile(noisy, &truth);
  EXPECT_LT(clean.Get(DqDimension::kAccuracy), 1e-9);
  EXPECT_NEAR(dirty.Get(DqDimension::kAccuracy), 3.0, 1.0);
  EXPECT_GT(dirty.Get(DqDimension::kPrecision),
            clean.Get(DqDimension::kPrecision));
}

// ---------------------------------------------------------------- Pipeline

TEST(PipelineTest, RunsStagesInOrder) {
  TrajectoryPipeline pipeline;
  pipeline.Add("shift_x", [](const Trajectory& in) -> StatusOr<Trajectory> {
    Trajectory out(in.object_id());
    for (const auto& pt : in.points()) {
      out.AppendUnordered(
          TrajectoryPoint(pt.t, {pt.p.x + 1.0, pt.p.y}, pt.accuracy));
    }
    return out;
  });
  pipeline.Add("double_x", [](const Trajectory& in) -> StatusOr<Trajectory> {
    Trajectory out(in.object_id());
    for (const auto& pt : in.points()) {
      out.AppendUnordered(
          TrajectoryPoint(pt.t, {pt.p.x * 2.0, pt.p.y}, pt.accuracy));
    }
    return out;
  });
  Trajectory in(1);
  in.AppendUnordered(TrajectoryPoint(0, {1.0, 0.0}));
  const auto out = pipeline.Run(in);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value()[0].p.x, 4.0);  // (1+1)*2
}

TEST(PipelineTest, FailurePropagatesWithStageName) {
  TrajectoryPipeline pipeline;
  pipeline.Add("boom", [](const Trajectory&) -> StatusOr<Trajectory> {
    return Status::Internal("kaput");
  });
  const auto out = pipeline.Run(Trajectory(1));
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("boom"), std::string::npos);
}

TEST(PipelineTest, RunProfiledEmitsReports) {
  TrajectoryPipeline pipeline;
  pipeline.Add("identity", [](const Trajectory& in) -> StatusOr<Trajectory> {
    return in;
  });
  Trajectory in(1);
  for (int i = 0; i < 10; ++i) {
    in.AppendUnordered(TrajectoryPoint(i * 1000, {i * 10.0, 0.0}));
  }
  std::vector<StageReport> reports;
  TrajectoryProfiler profiler;
  const auto out = pipeline.RunProfiled(in, &in, profiler, &reports);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].stage_name, "input");
  EXPECT_EQ(reports[1].stage_name, "identity");
}

}  // namespace
}  // namespace sidq

// Golden-trace regression tests for the observability layer. A small
// chaos-seeded fleet is cleaned under virtual time and the resulting merged
// metrics snapshot and canonical span tree are pinned byte-for-byte: the
// exports must be identical for 1, 2, and 8 workers, identical across
// repeated runs, and identical to the golden literals below.
//
// The goldens pin the public observability contract -- metric names, span
// names/categories/nesting, virtual-time backoff arithmetic, and the
// canonical JSON encodings. An intentional change to any of those should
// regenerate them:
//
//   SIDQ_REGEN_GOLDEN=1 ./obs_trace_golden_test
//
// prints the current spans/metrics to stdout for pasting back into this
// file. An *unintentional* diff here means scheduling or worker count
// leaked into the exports -- a determinism bug, not a stale golden.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "core/pipeline.h"
#include "core/random.h"
#include "core/status.h"
#include "core/trajectory.h"
#include "exec/fleet_runner.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace.h"

namespace sidq {
namespace {

using exec::FleetResult;
using exec::FleetRunner;
using obs::MetricsRegistry;
using obs::ObsSinks;
using obs::SpanRecord;
using obs::Tracer;

constexpr uint64_t kBaseSeed = 4242;
constexpr uint64_t kChaosSeed = 0xD1CE;

std::vector<Trajectory> MakeGoldenFleet() {
  Rng rng(271828);
  std::vector<Trajectory> fleet;
  for (size_t i = 0; i < 4; ++i) {
    Trajectory t(static_cast<ObjectId>(i));
    double x = rng.Uniform(0.0, 1000.0);
    double y = rng.Uniform(0.0, 1000.0);
    for (size_t k = 0; k < 4; ++k) {
      t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 1000,
                                        geometry::Point(x, y), 5.0));
      x += rng.Gaussian(0.0, 5.0);
      y += rng.Gaussian(0.0, 5.0);
    }
    fleet.push_back(std::move(t));
  }
  return fleet;
}

// Four stages exercising every span category: a seeded jitter stage, a
// flaky gateway (transient failpoint -> retries), a refine ladder whose top
// rung rejects odd object ids (-> degrades), and a fragile decoder
// (permanent failpoint -> quarantine).
TrajectoryPipeline MakeGoldenPipeline() {
  TrajectoryPipeline pipeline;
  pipeline.AddSeeded("jitter",
                     [](const Trajectory& in, Rng& rng) -> StatusOr<Trajectory> {
                       Trajectory out(in.object_id());
                       for (const TrajectoryPoint& pt : in.points()) {
                         TrajectoryPoint moved = pt;
                         moved.p.x += rng.Gaussian(0.0, 0.5);
                         moved.p.y += rng.Gaussian(0.0, 0.5);
                         out.AppendUnordered(moved);
                       }
                       return out;
                     });
  pipeline.AddCtx("gateway",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "golden.gateway", in.object_id(), ctx.exec));
                    return in;
                  });
  auto ladder = std::make_unique<LadderStage>("refine");
  ladder->AddRung("fancy", [](const Trajectory& in) -> StatusOr<Trajectory> {
    if (in.object_id() % 2 == 1) {
      return Status::DeadlineExceeded("fancy rung over budget");
    }
    return in;
  });
  ladder->AddRung("cheap", [](const Trajectory& in) -> StatusOr<Trajectory> {
    return in;
  });
  pipeline.Add(std::move(ladder));
  pipeline.AddCtx("decoder",
                  [](const Trajectory& in, const StageContext& ctx)
                      -> StatusOr<Trajectory> {
                    SIDQ_RETURN_IF_ERROR(MaybeInjectFailPoint(
                        "golden.decoder", in.object_id(), ctx.exec));
                    return in;
                  });
  return pipeline;
}

// Re-arming resets per-key evaluation counts, so every run draws the same
// injection decisions.
void ArmGoldenChaos() {
  FailPointConfig transient;
  transient.action = FailPointAction::kTransientError;
  transient.probability = 0.5;
  transient.seed = kChaosSeed;
  ArmFailPoint("golden.gateway", transient);

  FailPointConfig permanent;
  permanent.action = FailPointAction::kPermanentError;
  permanent.probability = 0.2;
  permanent.seed = kChaosSeed + 1;
  ArmFailPoint("golden.decoder", permanent);
}

FleetRunner::Options GoldenOptions(int workers) {
  FleetRunner::Options options;
  options.num_threads = workers;
  options.shard_size = 2;
  options.base_seed = kBaseSeed;
  options.failure_policy = exec::FailurePolicy::kBestEffort;
  options.retry.max_retries = 2;
  options.retry.initial_backoff_ms = 50;
  options.retry.jitter = 0.2;
  options.virtual_time = true;
  return options;
}

struct GoldenRun {
  std::string metrics_json;
  std::string trace_json;
  std::string span_listing;
  FleetResult result;
};

// One line per span: key, depth (as indentation), category:name, virtual
// timestamps, and the note when present.
std::string FormatSpans(const std::vector<SpanRecord>& spans) {
  std::string out;
  char buf[64];
  for (const SpanRecord& span : spans) {
    if (span.key == obs::kProcessKey) {
      out += "fleet";
    } else {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(span.key));
      out += buf;
    }
    out += ' ';
    for (int d = 0; d < span.depth; ++d) out += "  ";
    out += span.category;
    out += ':';
    out += span.name;
    std::snprintf(buf, sizeof(buf), " [%lld,%lld]",
                  static_cast<long long>(span.start_ms),
                  static_cast<long long>(span.end_ms));
    out += buf;
    if (!span.note.empty()) {
      out += " note=";
      out += span.note;
    }
    out += '\n';
  }
  return out;
}

GoldenRun RunGolden(int workers) {
  GoldenRun run;
  ArmGoldenChaos();
  MetricsRegistry registry;
  Tracer tracer;
  ObsSinks sinks;
  sinks.metrics = &registry;
  sinks.tracer = &tracer;
  obs::ScopedFailPointObservation observation(sinks);

  const std::vector<Trajectory> fleet = MakeGoldenFleet();
  const TrajectoryPipeline pipeline = MakeGoldenPipeline();
  FleetRunner::Options options = GoldenOptions(workers);
  options.obs = &sinks;
  const FleetRunner runner(&pipeline, options);
  run.result = runner.Run(fleet);
  DisarmAllFailPoints();

  const StatusOr<std::string> metrics_json =
      obs::MetricsToJson(registry.Snapshot());
  EXPECT_TRUE(metrics_json.ok()) << metrics_json.status();
  if (metrics_json.ok()) run.metrics_json = *metrics_json;

  const std::vector<SpanRecord> spans = tracer.CanonicalSpans();
  const StatusOr<std::string> trace_json = obs::TraceToChromeJson(spans);
  EXPECT_TRUE(trace_json.ok()) << trace_json.status();
  if (trace_json.ok()) run.trace_json = *trace_json;
  run.span_listing = FormatSpans(spans);
  return run;
}

// --- golden literals (regenerate with SIDQ_REGEN_GOLDEN=1) ---

const char kGoldenSpanListing[] =
    R"golden(0 object:object [0,0] note=failed
0   stage:jitter [0,0]
0   stage:gateway [0,0]
0   stage:refine [0,0]
0   stage:decoder [0,0] note=DataLoss: stage 'decoder' failed: injected permanent fault at golden.decoder
0     attempt:decoder#0 [0,0] note=DataLoss: injected permanent fault at golden.decoder
0 failpoint:golden.decoder [0,0] note=permanent
1 object:object [0,0] note=degraded
1   stage:jitter [0,0]
1   stage:gateway [0,0]
1   stage:refine [0,0]
1       attempt:fancy#0 [0,0] note=DeadlineExceeded: fancy rung over budget
1       degrade:refine [0,0] note=rung=1 (cheap)
1   stage:decoder [0,0]
2 object:object [0,52] note=full
2   stage:jitter [0,0]
2   stage:gateway [0,52]
2     attempt:gateway#0 [0,0] note=Unavailable: injected transient fault at golden.gateway
2     retry:gateway [0,0] note=backoff_ms=52
2     attempt:gateway#1 [52,52]
2   stage:refine [52,52]
2   stage:decoder [52,52]
2 failpoint:golden.gateway [0,0] note=transient
3 object:object [0,0] note=degraded
3   stage:jitter [0,0]
3   stage:gateway [0,0]
3   stage:refine [0,0]
3       attempt:fancy#0 [0,0] note=DeadlineExceeded: fancy rung over budget
3       degrade:refine [0,0] note=rung=1 (cheap)
3   stage:decoder [0,0]
fleet fleet:fleet.run [0,0] note=fleet: 1/4 full, 2 degraded, 1 quarantined, 1 retries
)golden";

const char kGoldenMetricsJson[] =
    "{\"counters\":[{\"name\":\"chaos.failpoint.fired\",\"value\":2},"
    "{\"name\":\"chaos.failpoint.fired.golden.decoder\",\"value\":1},"
    "{\"name\":\"chaos.failpoint.fired.golden.gateway\",\"value\":1},"
    "{\"name\":\"pipeline.degrade.falls\",\"value\":2},"
    "{\"name\":\"pipeline.retry.attempts\",\"value\":1},"
    "{\"name\":\"pipeline.stage.failures.decoder\",\"value\":1},"
    "{\"name\":\"pipeline.stage.failures.gateway\",\"value\":0},"
    "{\"name\":\"pipeline.stage.failures.jitter\",\"value\":0},"
    "{\"name\":\"pipeline.stage.failures.refine\",\"value\":0},"
    "{\"name\":\"pipeline.stage.runs.decoder\",\"value\":4},"
    "{\"name\":\"pipeline.stage.runs.gateway\",\"value\":4},"
    "{\"name\":\"pipeline.stage.runs.jitter\",\"value\":4},"
    "{\"name\":\"pipeline.stage.runs.refine\",\"value\":4}],"
    "\"gauges\":[{\"name\":\"fleet.breaker_tripped\",\"value\":0},"
    "{\"name\":\"fleet.objects.degraded\",\"value\":2},"
    "{\"name\":\"fleet.objects.quarantined\",\"value\":1},"
    "{\"name\":\"fleet.objects.total\",\"value\":4},"
    "{\"name\":\"fleet.retries.total\",\"value\":1},"
    "{\"name\":\"fleet.shards.total\",\"value\":2}],"
    "\"histograms\":[{\"name\":\"fleet.object.duration_ms\","
    "\"bounds\":[1,2,5,10,25,50,100,250,500,1000,2500,5000,10000],"
    "\"bucket_counts\":[3,0,0,0,0,0,1,0,0,0,0,0,0],\"overflow\":0,"
    "\"count\":4,\"sum\":52,\"max\":52,\"p50\":1,\"p99\":100},"
    "{\"name\":\"pipeline.stage.duration_ms.decoder\","
    "\"bounds\":[1,2,5,10,25,50,100,250,500,1000,2500,5000,10000],"
    "\"bucket_counts\":[4,0,0,0,0,0,0,0,0,0,0,0,0],\"overflow\":0,"
    "\"count\":4,\"sum\":0,\"max\":0,\"p50\":1,\"p99\":1},"
    "{\"name\":\"pipeline.stage.duration_ms.gateway\","
    "\"bounds\":[1,2,5,10,25,50,100,250,500,1000,2500,5000,10000],"
    "\"bucket_counts\":[3,0,0,0,0,0,1,0,0,0,0,0,0],\"overflow\":0,"
    "\"count\":4,\"sum\":52,\"max\":52,\"p50\":1,\"p99\":100},"
    "{\"name\":\"pipeline.stage.duration_ms.jitter\","
    "\"bounds\":[1,2,5,10,25,50,100,250,500,1000,2500,5000,10000],"
    "\"bucket_counts\":[4,0,0,0,0,0,0,0,0,0,0,0,0],\"overflow\":0,"
    "\"count\":4,\"sum\":0,\"max\":0,\"p50\":1,\"p99\":1},"
    "{\"name\":\"pipeline.stage.duration_ms.refine\","
    "\"bounds\":[1,2,5,10,25,50,100,250,500,1000,2500,5000,10000],"
    "\"bucket_counts\":[4,0,0,0,0,0,0,0,0,0,0,0,0],\"overflow\":0,"
    "\"count\":4,\"sum\":0,\"max\":0,\"p50\":1,\"p99\":1}]}";

class ObsGoldenTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailPoints(); }
};

TEST_F(ObsGoldenTest, SerialRunMatchesGoldenLiterals) {
  const GoldenRun run = RunGolden(1);
  ASSERT_TRUE(run.result.partial_ok());
  // The scenario must actually exercise every signal, or the golden is
  // vacuous. (Counts themselves are pinned by the metrics golden.)
  EXPECT_GT(run.result.retries_total, 0u);
  EXPECT_GT(run.result.objects_degraded, 0u);
  EXPECT_GT(run.result.objects_quarantined, 0u);
  EXPECT_LT(run.result.objects_quarantined, 4u);

  if (std::getenv("SIDQ_REGEN_GOLDEN") != nullptr) {
    std::printf("--- span listing ---\n%s--- metrics json ---\n%s\n",
                run.span_listing.c_str(), run.metrics_json.c_str());
    GTEST_SKIP() << "regen mode: printed current goldens";
  }

  EXPECT_EQ(run.span_listing, kGoldenSpanListing);
  EXPECT_EQ(run.metrics_json, kGoldenMetricsJson);
}

TEST_F(ObsGoldenTest, ExportsAreIdenticalForAnyWorkerCount) {
  const GoldenRun reference = RunGolden(1);
  ASSERT_TRUE(reference.result.partial_ok());
  for (const int workers : {2, 8}) {
    const GoldenRun run = RunGolden(workers);
    ASSERT_TRUE(run.result.partial_ok());
    EXPECT_EQ(run.metrics_json, reference.metrics_json)
        << workers << " workers changed the metrics export";
    EXPECT_EQ(run.trace_json, reference.trace_json)
        << workers << " workers changed the trace export";
    EXPECT_EQ(run.span_listing, reference.span_listing)
        << workers << " workers changed the span tree";
  }
}

TEST_F(ObsGoldenTest, RepeatedRunsAreByteIdentical) {
  const GoldenRun a = RunGolden(4);
  const GoldenRun b = RunGolden(4);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

// The span tree is well-formed: per key, seqs strictly increase, the object
// root is depth 0, children nest below it, and direct-tracer spans
// (failpoint instants, fleet.run) live in the reserved upper seq space.
TEST_F(ObsGoldenTest, SpanTreeInvariantsHold) {
  ArmGoldenChaos();
  MetricsRegistry registry;
  Tracer tracer;
  ObsSinks sinks;
  sinks.metrics = &registry;
  sinks.tracer = &tracer;
  const std::vector<Trajectory> fleet = MakeGoldenFleet();
  const TrajectoryPipeline pipeline = MakeGoldenPipeline();
  FleetRunner::Options options = GoldenOptions(2);
  options.obs = &sinks;
  const FleetRunner runner(&pipeline, options);
  const FleetResult result = runner.Run(fleet);
  ASSERT_TRUE(result.partial_ok());
  DisarmAllFailPoints();

  uint64_t last_key = 0;
  uint64_t last_seq = 0;
  bool have_prev = false;
  for (const SpanRecord& span : tracer.CanonicalSpans()) {
    if (have_prev && span.key == last_key) {
      EXPECT_GT(span.seq, last_seq) << "seq collision on key " << span.key;
    }
    last_key = span.key;
    last_seq = span.seq;
    have_prev = true;

    EXPECT_GE(span.end_ms, span.start_ms);
    EXPECT_GE(span.depth, 0);
    if (span.category == std::string("object")) {
      EXPECT_EQ(span.depth, 0);
      EXPECT_EQ(span.seq, 0u);
    }
    if (span.category == std::string("failpoint")) {
      EXPECT_GE(span.seq, obs::kDirectSeqBase);
    }
    if (span.category == std::string("fleet")) {
      EXPECT_EQ(span.key, obs::kProcessKey);
    }
  }
}

}  // namespace
}  // namespace sidq

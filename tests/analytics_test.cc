#include <algorithm>

#include <gtest/gtest.h>

#include "analytics/next_location.h"
#include "analytics/pattern_mining.h"
#include "analytics/popular_route.h"
#include "analytics/stream_anomaly.h"
#include "analytics/uncertain_clustering.h"
#include "sim/noise.h"
#include "sim/rfid.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace analytics {
namespace {

using geometry::BBox;
using geometry::Point;

// ---------------------------------------------------- UncertainClustering

struct ClusterScenario {
  std::vector<query::UncertainPoint> objects;
  std::vector<int> truth_labels;
};

// Two well-separated groups observed with noise `sigma`.
ClusterScenario MakeClusters(double sigma, uint64_t seed) {
  Rng rng(seed);
  ClusterScenario s;
  for (int c = 0; c < 2; ++c) {
    const Point center(c * 2000.0, 0.0);
    for (int i = 0; i < 25; ++i) {
      const Point truth(center.x + rng.Gaussian(0, 60),
                        center.y + rng.Gaussian(0, 60));
      const Point observed(truth.x + rng.Gaussian(0, sigma),
                           truth.y + rng.Gaussian(0, sigma));
      s.objects.push_back(query::UncertainPoint::MakeGaussian(
          s.objects.size(), observed, sigma));
      s.truth_labels.push_back(c);
    }
  }
  return s;
}

TEST(UncertainDbscanTest, RecoversClusters) {
  const ClusterScenario s = MakeClusters(20.0, 1);
  UncertainDbscan::Options opts;
  opts.eps_m = 250.0;
  opts.min_pts = 4;
  const auto result = UncertainDbscan(opts).Cluster(s.objects);
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_GT(AdjustedRandIndex(result.labels, s.truth_labels), 0.9);
}

TEST(UncertainDbscanTest, NaiveBaselineAgreesOnEasyData) {
  const ClusterScenario s = MakeClusters(5.0, 2);
  UncertainDbscan::Options naive;
  naive.eps_m = 250.0;
  naive.use_expected_distance = false;
  const auto result = UncertainDbscan(naive).Cluster(s.objects);
  EXPECT_EQ(result.num_clusters, 2);
}

TEST(UncertainDbscanTest, EmptyInput) {
  const auto result = UncertainDbscan().Cluster({});
  EXPECT_EQ(result.num_clusters, 0);
}

TEST(AdjustedRandIndexTest, KnownValues) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 1, 1}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);
  EXPECT_LT(AdjustedRandIndex({0, 1, 0, 1}, {0, 0, 1, 1}), 0.1);
}

// --------------------------------------------------------- StreamAnomaly

struct AnomalyScenario {
  std::vector<Trajectory> normal;
  std::vector<Trajectory> anomalous;
};

AnomalyScenario MakeAnomalyScenario(uint64_t seed) {
  Rng rng(seed);
  AnomalyScenario s;
  // Normal traffic: along the x axis with small noise.
  for (int k = 0; k < 40; ++k) {
    Trajectory tr(k);
    const double y = rng.Uniform(-50, 50);
    for (int i = 0; i < 60; ++i) {
      tr.AppendUnordered(TrajectoryPoint(
          i * 1000, Point(i * 100.0 + rng.Gaussian(0, 10),
                          y + rng.Gaussian(0, 10))));
    }
    s.normal.push_back(tr);
  }
  // Anomalies: diagonal detours.
  for (int k = 0; k < 10; ++k) {
    Trajectory tr(100 + k);
    for (int i = 0; i < 60; ++i) {
      tr.AppendUnordered(TrajectoryPoint(
          i * 1000, Point(i * 100.0, i * 80.0 + rng.Gaussian(0, 10))));
    }
    s.anomalous.push_back(tr);
  }
  return s;
}

TEST(StreamAnomalyTest, SeparatesNormalFromAnomalous) {
  const AnomalyScenario s = MakeAnomalyScenario(3);
  StreamAnomalyDetector detector;
  // Hold out some normal trajectories for scoring.
  std::vector<Trajectory> train(s.normal.begin(), s.normal.end() - 10);
  detector.Train(train);
  size_t false_alarms = 0;
  for (size_t i = s.normal.size() - 10; i < s.normal.size(); ++i) {
    false_alarms += detector.IsAnomalous(s.normal[i]) ? 1 : 0;
  }
  size_t detected = 0;
  for (const auto& tr : s.anomalous) {
    detected += detector.IsAnomalous(tr) ? 1 : 0;
  }
  EXPECT_LE(false_alarms, 2u);
  EXPECT_GE(detected, 9u);
}

TEST(StreamAnomalyTest, IncrementalMatchesBatch) {
  const AnomalyScenario s = MakeAnomalyScenario(4);
  StreamAnomalyDetector detector;
  detector.Train(s.normal);
  const Trajectory& tr = s.anomalous[0];
  StreamAnomalyDetector::StreamState state;
  for (const auto& pt : tr.points()) detector.Feed(&state, pt.p);
  EXPECT_DOUBLE_EQ(state.Score(), detector.Score(tr));
}

TEST(StreamAnomalyTest, UntrainedFlagsEverything) {
  StreamAnomalyDetector detector;
  Trajectory tr(1);
  for (int i = 0; i < 20; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 300.0, 0)));
  }
  EXPECT_GT(detector.Score(tr), 0.9);
}

// ---------------------------------------------------------- PatternMining

TEST(PatternMinerTest, OccurrenceProbability) {
  UncertainSequence seq;
  seq.symbols = {1, 2, 3};
  seq.confidence = {0.9, 0.8, 1.0};
  EXPECT_NEAR(PatternMiner::OccurrenceProbability(seq, {1, 2}), 0.72, 1e-12);
  EXPECT_NEAR(PatternMiner::OccurrenceProbability(seq, {2, 3}), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(PatternMiner::OccurrenceProbability(seq, {3, 1}), 0.0);
  EXPECT_DOUBLE_EQ(PatternMiner::OccurrenceProbability(seq, {}), 0.0);
}

TEST(PatternMinerTest, FindsPlantedPattern) {
  Rng rng(5);
  std::vector<UncertainSequence> db;
  for (int k = 0; k < 30; ++k) {
    UncertainSequence seq;
    // Random prefix, then the planted pattern 7 -> 8 -> 9.
    for (int i = 0; i < 3; ++i) {
      seq.symbols.push_back(static_cast<RegionId>(rng.UniformInt(0, 4)));
    }
    for (RegionId r : {7u, 8u, 9u}) seq.symbols.push_back(r);
    seq.confidence.assign(seq.symbols.size(), 0.9);
    db.push_back(seq);
  }
  PatternMiner::Options opts;
  opts.min_expected_support = 15.0;
  opts.min_length = 3;
  opts.max_length = 3;
  const auto patterns = PatternMiner(opts).Mine(db);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns.front().symbols, (std::vector<RegionId>{7, 8, 9}));
  EXPECT_GT(patterns.front().expected_support, 20.0);
}

TEST(PatternMinerTest, ConfidenceLowersSupport) {
  UncertainSequence certain{{1, 2}, {1.0, 1.0}};
  UncertainSequence doubtful{{1, 2}, {0.5, 0.5}};
  PatternMiner::Options opts;
  opts.min_expected_support = 0.1;
  opts.min_length = 2;
  const auto high = PatternMiner(opts).Mine({certain});
  const auto low = PatternMiner(opts).Mine({doubtful});
  ASSERT_FALSE(high.empty());
  ASSERT_FALSE(low.empty());
  EXPECT_GT(high.front().expected_support, low.front().expected_support);
}

TEST(PatternMinerTest, FromSymbolicHelper) {
  SymbolicTrajectory tr(1);
  tr.Append(3, 0);
  tr.Append(3, 1000);
  tr.Append(4, 2000);
  const UncertainSequence seq = FromSymbolic(tr, 0.8);
  EXPECT_EQ(seq.symbols, (std::vector<RegionId>{3, 4}));
  EXPECT_EQ(seq.confidence, (std::vector<double>{0.8, 0.8}));
}

// ----------------------------------------------------------- PopularRoute

TEST(PopularRouteTest, RecoversDominantRoute) {
  Rng rng(6);
  // Corpus: 30 trajectories along y=0, 3 along a detour via y=1000.
  std::vector<Trajectory> corpus;
  for (int k = 0; k < 30; ++k) {
    Trajectory tr(k);
    for (int i = 0; i <= 10; ++i) {
      tr.AppendUnordered(TrajectoryPoint(
          i * 10'000, Point(i * 300.0, rng.Gaussian(0, 20))));
    }
    corpus.push_back(tr);
  }
  for (int k = 0; k < 3; ++k) {
    Trajectory tr(100 + k);
    for (int i = 0; i <= 5; ++i) {
      tr.AppendUnordered(
          TrajectoryPoint(i * 10'000, Point(i * 600.0, i * 200.0)));
    }
    for (int i = 6; i <= 10; ++i) {
      tr.AppendUnordered(TrajectoryPoint(
          i * 10'000, Point(i * 300.0 + 1500, 2000.0 - (i - 5) * 400.0)));
    }
    corpus.push_back(tr);
  }
  PopularRouteFinder finder;
  finder.Build(corpus);
  EXPECT_GT(finder.num_cells(), 5u);
  const auto route = finder.FindRoute(Point(0, 0), Point(3000, 0));
  ASSERT_TRUE(route.ok());
  // Popularity is a product over ~10 transitions, each < 1 due to noise.
  EXPECT_GT(route->popularity, 1e-4);
  // The popular route should hug y=0.
  for (const Point& c : route->cells) {
    EXPECT_LT(std::abs(c.y), 400.0);
  }
}

TEST(PopularRouteTest, UnknownSourceFails) {
  PopularRouteFinder finder;
  finder.Build({});
  EXPECT_FALSE(finder.FindRoute(Point(0, 0), Point(100, 100)).ok());
}

// ------------------------------------------------------------ NextLocation

TEST(NextCellPredictorTest, LearnsDeterministicMotion) {
  // All objects loop through the same cells.
  std::vector<Trajectory> corpus;
  for (int k = 0; k < 10; ++k) {
    Trajectory tr(k);
    for (int i = 0; i < 30; ++i) {
      tr.AppendUnordered(TrajectoryPoint(i * 10'000, Point(i * 300.0, 0)));
    }
    corpus.push_back(tr);
  }
  NextCellPredictor predictor;
  predictor.Train(corpus);
  EXPECT_GT(predictor.Evaluate(corpus), 0.95);

  Trajectory recent(99);
  recent.AppendUnordered(TrajectoryPoint(0, Point(600, 0)));
  recent.AppendUnordered(TrajectoryPoint(10'000, Point(900, 0)));
  const auto next = predictor.PredictNext(recent);
  ASSERT_TRUE(next.ok());
  EXPECT_NEAR(next->x, 1125.0, 250.0 / 2 + 1.0);  // centre of cell 4
}

TEST(NextCellPredictorTest, BackoffOnUnseenContext) {
  std::vector<Trajectory> corpus;
  Trajectory tr(1);
  for (int i = 0; i < 10; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 10'000, Point(i * 300.0, 0)));
  }
  corpus.push_back(tr);
  NextCellPredictor predictor;
  predictor.Train(corpus);
  // A history whose (prev, cur) pair was never seen, but whose current
  // cell was: order-1 backoff should still answer.
  Trajectory recent(2);
  recent.AppendUnordered(TrajectoryPoint(0, Point(0, 5000)));
  recent.AppendUnordered(TrajectoryPoint(10'000, Point(900, 0)));
  EXPECT_TRUE(predictor.PredictNext(recent).ok());
  // Fully unknown context fails.
  Trajectory unknown(3);
  unknown.AppendUnordered(TrajectoryPoint(0, Point(90000, 90000)));
  EXPECT_FALSE(predictor.PredictNext(unknown).ok());
  EXPECT_FALSE(predictor.PredictNext(Trajectory(4)).ok());
}

TEST(NextCellPredictorTest, IncompletenessDegradesGracefully) {
  Rng rng(7);
  const sim::Fleet fleet = sim::MakeFleet(8, 8, 250.0, 30, 16, &rng);
  std::vector<Trajectory> train(fleet.trajectories.begin(),
                                fleet.trajectories.end() - 8);
  std::vector<Trajectory> held(fleet.trajectories.end() - 8,
                               fleet.trajectories.end());
  NextCellPredictor predictor;
  predictor.Train(train);
  const double full_acc = predictor.Evaluate(held);
  // Drop half the points from the held-out histories.
  std::vector<Trajectory> sparse;
  for (const auto& tr : held) {
    sparse.push_back(sim::DropSamples(tr, 0.5, &rng));
  }
  const double sparse_acc = predictor.Evaluate(sparse);
  EXPECT_GT(full_acc, 0.25);
  EXPECT_GT(sparse_acc, 0.1);
}

}  // namespace
}  // namespace analytics
}  // namespace sidq

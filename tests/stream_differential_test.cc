// The stream-vs-batch differential contract: replaying a recorded event log
// through the incremental stream engine must produce BIT-IDENTICAL output
// to the batch reference pipeline on the same log -- same cleaned records,
// same quarantine ledger, same windowed KPIs and alerts -- at 1, 2, and 8
// workers, across seeded adversarial arrival orders (stragglers,
// duplicates, garbage values), and with retryable chaos armed at the
// ingest / window-close sites (disarmed-checksum parity: the armed run's
// checksum equals the disarmed batch checksum because bounded deterministic
// retries absorb every transient fault).

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.h"
#include "core/random.h"
#include "geometry/bbox.h"
#include "sim/sensor_field.h"
#include "stream/engine.h"
#include "stream/event_log.h"
#include "stream/replay.h"
#include "stream/rules.h"

namespace sidq {
namespace stream {
namespace {

bool Aggressive() { return std::getenv("SIDQ_CHAOS_AGGRESSIVE") != nullptr; }

// A dirty field-sensing fleet: smooth truth + noise + spikes, plus a few
// hand-planted pathologies (NaN, out-of-range, pre-epoch timestamp).
StDataset MakeDirtyDataset(uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0xF1E1D));
  const geometry::BBox bounds(geometry::Point(0, 0),
                              geometry::Point(4000, 4000));
  const sim::ScalarField field =
      sim::ScalarField::MakeRandom(bounds, 3, 20.0, 30.0, 300.0, 900.0,
                                   3600.0, &rng);
  const std::vector<geometry::Point> sensors =
      sim::DeploySensors(bounds, 8, &rng);
  StDataset truth =
      sim::SampleField(field, sensors, 0, 60'000, 30, "pm25");
  StDataset dirty = sim::AddValueNoise(truth, 0.8, &rng);
  dirty = sim::AddValueSpikes(dirty, 0.03, 400.0, &rng);
  // Hand-planted garbage the admission rules must firewall.
  auto& records0 = dirty.mutable_series()[0].mutable_records();
  records0[5].value = std::nan("");
  records0[11].value = 1e6;
  return dirty;
}

EventLog MakeAdversarialLog(uint64_t seed) {
  const StDataset dirty = MakeDirtyDataset(seed);
  ArrivalOptions options;
  options.mean_delay_ms = 20'000;  // heavy reordering vs 60s cadence
  options.straggler_probability = 0.15;
  options.straggler_delay_ms = 400'000;  // way past max lateness
  options.duplicate_probability = 0.10;
  Rng rng(DeriveSeed(seed, 0xA221));
  return RecordArrivals(dirty, options, &rng);
}

StreamConfig DifferentialConfig() {
  StreamConfig config;
  SensorRule rule;
  rule.min_value = -50.0;
  rule.max_value = 500.0;
  rule.expected_interval_ms = 60'000;
  rule.max_lateness_ms = 120'000;
  rule.max_rate_per_s = 1.0;
  config.rules.set_default_rule(rule);
  config.window_ms = 300'000;
  config.window_capacity = 16;
  config.robust_z.z_threshold = 4.0;
  config.robust_z.min_samples = 6;
  return config;
}

class StreamDifferentialTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailPoints(); }
};

TEST_F(StreamDifferentialTest, StreamEqualsBatchAcrossSeedsAndWorkers) {
  const StreamConfig config = DifferentialConfig();
  const int num_seeds = Aggressive() ? 8 : 4;
  for (uint64_t seed = 0; seed < static_cast<uint64_t>(num_seeds); ++seed) {
    const EventLog log = MakeAdversarialLog(seed);
    const StreamOutput batch = BatchReference(log, config);
    const std::string batch_json = StreamOutputToJson(batch);
    // The scenario must actually exercise the interesting paths, or the
    // equality is vacuous.
    EXPECT_GT(batch.ledger.size(), 0u) << "seed " << seed;
    EXPECT_GT(batch.kpis.size(), 0u) << "seed " << seed;

    for (const int workers : {1, 2, 8}) {
      ReplayOptions options;
      options.num_threads = workers;
      const StatusOr<StreamOutput> streamed = Replay(log, config, options);
      ASSERT_TRUE(streamed.ok()) << streamed.status();
      EXPECT_EQ(StreamOutputToJson(*streamed), batch_json)
          << "seed " << seed << ", " << workers << " workers";
      EXPECT_EQ(OutputChecksum(*streamed), OutputChecksum(batch));
    }
  }
}

// Shuffling the arrival order of the SAME records (a different delay draw)
// changes which records are late -- but for each arrival order, stream
// must still equal batch. This pins that the contract is per-log, not an
// accident of one ordering.
TEST_F(StreamDifferentialTest, HoldsForEveryArrivalShuffleOfOneDataset) {
  const StreamConfig config = DifferentialConfig();
  const StDataset dirty = MakeDirtyDataset(7);
  for (uint64_t shuffle = 0; shuffle < 5; ++shuffle) {
    ArrivalOptions options;
    options.mean_delay_ms = 30'000;
    options.straggler_probability = 0.2;
    options.straggler_delay_ms = 500'000;
    options.duplicate_probability = 0.15;
    Rng rng(DeriveSeed(99, shuffle));
    const EventLog log = RecordArrivals(dirty, options, &rng);
    const std::string batch_json =
        StreamOutputToJson(BatchReference(log, config));
    ReplayOptions replay_options;
    replay_options.num_threads = 2;
    const StatusOr<StreamOutput> streamed = Replay(log, config, replay_options);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(StreamOutputToJson(*streamed), batch_json)
        << "shuffle " << shuffle;
  }
}

// Disarmed-checksum parity: transient chaos within the engine's retry
// budget must not change one bit of output relative to the disarmed batch
// reference, at any worker count.
TEST_F(StreamDifferentialTest, TransientChaosPreservesBatchChecksum) {
  const StreamConfig config = DifferentialConfig();
  const EventLog log = MakeAdversarialLog(3);
  const uint64_t batch_checksum = OutputChecksum(BatchReference(log, config));

  FailPointConfig transient;
  transient.action = FailPointAction::kTransientError;
  transient.fail_first_n = Aggressive() ? 3 : 2;  // retry budget is 3
  for (const int workers : {1, 2, 8}) {
    ArmFailPoint(kIngestFailPoint, transient);
    ArmFailPoint(kWindowCloseFailPoint, transient);
    ReplayOptions options;
    options.num_threads = workers;
    const StatusOr<StreamOutput> streamed = Replay(log, config, options);
    const size_t ingest_hits = FailPointHits(kIngestFailPoint);
    DisarmAllFailPoints();  // disarm erases the hit counters too
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_GT(ingest_hits, 0u);
    EXPECT_EQ(OutputChecksum(*streamed), batch_checksum)
        << workers << " workers under transient chaos";
  }
}

// Permanent chaos changes the output (records are lost to quarantine) --
// but deterministically: every worker count loses exactly the same
// records, so all chaos runs agree with the serial chaos run.
TEST_F(StreamDifferentialTest, PermanentChaosIsWorkerCountDeterministic) {
  const StreamConfig config = DifferentialConfig();
  const EventLog log = MakeAdversarialLog(5);

  FailPointConfig permanent;
  permanent.action = FailPointAction::kPermanentError;
  permanent.probability = Aggressive() ? 0.05 : 0.02;
  permanent.seed = 0xBAD5EED;

  std::string reference;
  for (const int workers : {1, 2, 8}) {
    ArmFailPoint(kIngestFailPoint, permanent);
    ReplayOptions options;
    options.num_threads = workers;
    const StatusOr<StreamOutput> streamed = Replay(log, config, options);
    DisarmAllFailPoints();
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    const std::string json = StreamOutputToJson(*streamed);
    if (workers == 1) {
      reference = json;
      // The chaos must actually bite for the determinism claim to mean
      // anything.
      bool saw_fault = false;
      for (const QuarantineEntry& e : streamed->ledger.entries()) {
        saw_fault = saw_fault || e.reason == QuarantineReason::kIngestFault;
      }
      EXPECT_TRUE(saw_fault);
    } else {
      EXPECT_EQ(json, reference) << workers << " workers";
    }
  }
}

// Serialization round trip composes with the contract: record -> write ->
// read -> replay equals replaying the in-memory log.
TEST_F(StreamDifferentialTest, FileRoundTripPreservesTheContract) {
  const StreamConfig config = DifferentialConfig();
  const EventLog log = MakeAdversarialLog(11);
  const std::string path = ::testing::TempDir() + "/diff_events.log";
  ASSERT_TRUE(WriteEventLogFile(log, path).ok());
  const StatusOr<EventLog> reread = ReadEventLogFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  EXPECT_EQ(StreamOutputToJson(BatchReference(*reread, config)),
            StreamOutputToJson(BatchReference(log, config)));
}

}  // namespace
}  // namespace stream
}  // namespace sidq

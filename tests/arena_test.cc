// Arena allocator contracts: 64-byte alignment on every allocation,
// reset-reuse (steady state performs zero heap traffic), the
// oversize-fallback path, mark/rewind stack discipline via ArenaScope, and
// ArenaVec growth.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/arena.h"

namespace sidq {
namespace {

bool Aligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % Arena::kAlignment == 0;
}

TEST(ArenaTest, EveryAllocationIsCacheLineAligned) {
  Arena arena(128);
  // Odd sizes force internal rounding; each result must still land on a
  // 64-byte boundary so arena columns are valid SIMD load targets.
  for (size_t bytes : {1, 3, 63, 64, 65, 127, 1000, 4097}) {
    void* p = arena.AllocBytes(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(Aligned(p)) << "misaligned " << bytes << "-byte allocation";
  }
  EXPECT_TRUE(Aligned(arena.AllocArray<double>(7)));
  EXPECT_TRUE(Aligned(arena.AllocArray<char>(1)));
}

TEST(ArenaTest, ZeroByteAllocationConsumesNothing) {
  Arena arena;
  const size_t used = arena.used_bytes();
  void* p = arena.AllocBytes(0);
  EXPECT_NE(p, nullptr);
  EXPECT_TRUE(Aligned(p));
  EXPECT_EQ(arena.used_bytes(), used);
}

TEST(ArenaTest, ResetReusesBlocksWithoutNewHeapTraffic) {
  Arena arena(1024);
  // Warm-up pass establishes the high-water mark.
  for (int i = 0; i < 32; ++i) arena.AllocArray<double>(100);
  const size_t blocks = arena.block_count();
  const size_t capacity = arena.capacity_bytes();
  std::vector<void*> first;
  arena.Reset();
  for (int i = 0; i < 32; ++i) first.push_back(arena.AllocArray<double>(100));
  // Steady state: identical allocation sequences replay the identical
  // pointer sequence out of the retained blocks -- no growth.
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(arena.AllocArray<double>(100), first[i]);
    }
    EXPECT_EQ(arena.block_count(), blocks);
    EXPECT_EQ(arena.capacity_bytes(), capacity);
  }
}

TEST(ArenaTest, OversizeRequestGetsDedicatedBlockAndIsReused) {
  Arena arena(256);
  // 1 MiB through a 256-byte-first-block arena: the growth schedule cannot
  // reach it, so a dedicated block of the (rounded) request size appears.
  constexpr size_t kBig = size_t{1} << 20;
  auto* big = static_cast<unsigned char*>(arena.AllocBytes(kBig));
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(Aligned(big));
  // The whole span is writable.
  std::memset(big, 0xAB, kBig);
  EXPECT_EQ(big[0], 0xAB);
  EXPECT_EQ(big[kBig - 1], 0xAB);
  EXPECT_GE(arena.capacity_bytes(), kBig);
  // Small allocations still work after the oversize block...
  EXPECT_TRUE(Aligned(arena.AllocArray<double>(4)));
  // ...and a reset round trips the oversize block through reuse.
  const size_t blocks = arena.block_count();
  arena.Reset();
  void* again = arena.AllocBytes(kBig);
  EXPECT_TRUE(Aligned(again));
  EXPECT_EQ(arena.block_count(), blocks) << "oversize block not reused";
}

TEST(ArenaTest, MarkRewindReleasesOnlyWhatCameAfter) {
  Arena arena(512);
  auto* before = arena.AllocArray<uint64_t>(8);
  before[0] = 42;
  const Arena::Mark m = arena.mark();
  const size_t used_at_mark = arena.used_bytes();
  for (int i = 0; i < 100; ++i) arena.AllocArray<double>(64);
  EXPECT_GT(arena.used_bytes(), used_at_mark);
  arena.Rewind(m);
  EXPECT_EQ(arena.used_bytes(), used_at_mark);
  EXPECT_EQ(before[0], 42u) << "rewind touched memory allocated before mark";
  // The next allocation reuses the rewound space.
  auto* after = arena.AllocArray<double>(64);
  EXPECT_TRUE(Aligned(after));
}

TEST(ArenaTest, ArenaScopeRewindsOnExitAndNests) {
  Arena arena(512);
  const size_t base = arena.used_bytes();
  {
    ArenaScope outer(&arena);
    double* filled = outer.AllocFilled<double>(33, 1.5);
    for (size_t i = 0; i < 33; ++i) EXPECT_EQ(filled[i], 1.5);
    const size_t outer_used = arena.used_bytes();
    {
      ArenaScope inner(&arena);
      inner.AllocArray<double>(500);
      EXPECT_GT(arena.used_bytes(), outer_used);
    }
    EXPECT_EQ(arena.used_bytes(), outer_used) << "inner scope leaked";
  }
  EXPECT_EQ(arena.used_bytes(), base) << "outer scope leaked";
}

TEST(ArenaTest, ArenaVecGrowsAndPreservesContents) {
  Arena arena(256);
  ArenaScope scope(&arena);
  ArenaVec<uint32_t> v(scope.arena(), 2);
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i * 7);
  ASSERT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(v[i], i * 7) << "growth lost element " << i;
  }
  v.pop_back();
  EXPECT_EQ(v.size(), 999u);
  EXPECT_EQ(v.back(), 998u * 7);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(ArenaTest, ScratchArenaIsStableAndUsablePerThread) {
  Arena* a = ScratchArena();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, ScratchArena()) << "thread-local scratch arena not stable";
  ArenaScope scope(a);
  EXPECT_TRUE(Aligned(scope.AllocArray<double>(128)));
}

}  // namespace
}  // namespace sidq

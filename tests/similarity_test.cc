#include <cmath>

#include <gtest/gtest.h>

#include "core/random.h"
#include "query/private.h"
#include "query/similarity.h"
#include "query/uncertain_trajectory.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace query {
namespace {

using geometry::BBox;
using geometry::Point;

Trajectory Line(double y, int n = 50, double dx = 10.0) {
  Trajectory tr(1);
  for (int i = 0; i < n; ++i) {
    tr.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * dx, y)));
  }
  return tr;
}

// ------------------------------------------------------------ similarity

TEST(DtwTest, IdenticalIsZero) {
  const Trajectory a = Line(0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a, 8), 0.0);
}

TEST(DtwTest, ParallelLinesScaleWithOffset) {
  const Trajectory a = Line(0.0);
  const double d10 = DtwDistance(a, Line(10.0));
  const double d20 = DtwDistance(a, Line(20.0));
  EXPECT_NEAR(d10, 50 * 10.0, 1e-6);
  EXPECT_NEAR(d20 / d10, 2.0, 1e-9);
}

TEST(DtwTest, ToleratesResampling) {
  // The same path sampled at half the rate should stay close under DTW.
  Rng rng(1);
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory full =
      simulator.RandomWaypoint(BBox(0, 0, 1000, 1000), 200, 1);
  const Trajectory half = sim::Resample(full, 2000);
  const double self_like = DtwDistance(full, half);
  const Trajectory other =
      simulator.RandomWaypoint(BBox(0, 0, 1000, 1000), 200, 2);
  EXPECT_LT(self_like, DtwDistance(full, other));
}

TEST(DtwTest, EmptyTrajectories) {
  const Trajectory empty(1);
  EXPECT_DOUBLE_EQ(DtwDistance(empty, empty), 0.0);
  EXPECT_TRUE(std::isinf(DtwDistance(empty, Line(0.0))));
}

TEST(FrechetTest, KnownValue) {
  const Trajectory a = Line(0.0);
  const Trajectory b = Line(7.0);
  EXPECT_NEAR(DiscreteFrechetDistance(a, b), 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(a, a), 0.0);
}

TEST(FrechetTest, DominatedByWorstExcursion) {
  Trajectory a = Line(0.0);
  Trajectory b = Line(0.0);
  b.mutable_points()[25].p.y = 100.0;  // single spike
  EXPECT_NEAR(DiscreteFrechetDistance(a, b), 100.0, 1e-9);
  // DTW, in contrast, pays the spike only once among many cheap steps.
  EXPECT_LT(DtwDistance(a, b), 100.0 * 2.5);
}

TEST(EdrTest, ToleranceControlsMatching) {
  const Trajectory a = Line(0.0);
  const Trajectory b = Line(5.0);
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 10.0), 0.0);  // all within tolerance
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 1.0), 1.0);   // nothing matches
  EXPECT_DOUBLE_EQ(EdrDistance(Trajectory(1), Trajectory(2), 1.0), 0.0);
  EXPECT_DOUBLE_EQ(EdrDistance(a, Trajectory(2), 1.0), 1.0);
}

TEST(LcssTest, FractionOfMatchedPrefix) {
  const Trajectory a = Line(0.0, 40);
  Trajectory b = Line(0.0, 40);
  // Corrupt the second half badly.
  for (size_t i = 20; i < b.size(); ++i) {
    b.mutable_points()[i].p.y = 1000.0;
  }
  const double s = LcssSimilarity(a, b, 5.0, 1000);
  EXPECT_NEAR(s, 0.5, 0.05);
  EXPECT_DOUBLE_EQ(LcssSimilarity(a, a, 5.0, 1000), 1.0);
}

TEST(SimilaritySearchTest, FindsNoisyCopiesWithPruning) {
  Rng rng(2);
  // A large city with short rides: most candidate MBRs are far from the
  // query's MBR, so the lower bound can prune them.
  const sim::Fleet fleet = sim::MakeFleet(20, 20, 300.0, 30, 8, &rng);
  std::vector<Trajectory> collection;
  for (const auto& tr : fleet.trajectories) {
    collection.push_back(sim::AddGpsNoise(tr, 8.0, &rng));
  }
  TrajectorySimilaritySearch search;
  search.Build(&collection);
  // Query with a differently-noised copy of trajectory 5.
  const Trajectory queried =
      sim::AddGpsNoise(fleet.trajectories[5], 8.0, &rng);
  TrajectorySimilaritySearch::SearchStats stats;
  const auto result = search.Knn(queried, 3, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ(result->front(), 5u);
  EXPECT_GT(stats.pruned, 0u);
  EXPECT_EQ(stats.pruned + stats.dtw_computed, stats.candidates);
}

TEST(SimilaritySearchTest, ErrorsWithoutBuild) {
  TrajectorySimilaritySearch search;
  EXPECT_FALSE(search.Knn(Line(0.0), 1).ok());
  std::vector<Trajectory> collection{Line(0.0)};
  search.Build(&collection);
  EXPECT_FALSE(search.Knn(Trajectory(1), 1).ok());
}

// ----------------------------------------------------------------- privacy

TEST(PlanarLaplaceTest, MeanDisplacementMatchesTheory) {
  Rng rng(3);
  const PlanarLaplaceObfuscator mech(0.01);  // eps = 0.01/m -> E[r] = 200 m
  double mean_r = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    mean_r += geometry::Distance(
        mech.Obfuscate(Point(0, 0), &rng), Point(0, 0));
  }
  mean_r /= n;
  EXPECT_NEAR(mean_r, mech.MeanDisplacement(), 5.0);
}

TEST(PlanarLaplaceTest, UncertainModelCoversTruth) {
  Rng rng(4);
  const PlanarLaplaceObfuscator mech(0.02);
  const Point truth(100, 100);
  // The Gaussian surrogate should assign decent probability to a box
  // centred on the truth, on average over the mechanism's randomness.
  double prob = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const Point reported = mech.Obfuscate(truth, &rng);
    const auto up = mech.ToUncertainPoint(1, reported);
    prob += up.ProbInBox(BBox(truth.x - 200, truth.y - 200, truth.x + 200,
                              truth.y + 200));
  }
  EXPECT_GT(prob / n, 0.5);
}

TEST(PrivateRangeQueryTest, AwareBeatsNaiveRecall) {
  Rng rng(5);
  const PlanarLaplaceObfuscator mech(0.02);  // E[r] = 100 m
  const BBox range(400, 400, 900, 900);
  std::vector<std::pair<ObjectId, Point>> reports;
  std::vector<bool> truly_inside;
  for (int i = 0; i < 400; ++i) {
    const Point truth(rng.Uniform(0, 1300), rng.Uniform(0, 1300));
    truly_inside.push_back(range.Contains(truth));
    reports.emplace_back(i, mech.Obfuscate(truth, &rng));
  }
  const auto result = PrivateRangeQuery(reports, mech, range, 0.25);
  auto recall = [&](const std::vector<ObjectId>& found) {
    size_t tp = 0, total = 0;
    std::vector<bool> in_found(400, false);
    for (ObjectId id : found) in_found[id] = true;
    for (size_t i = 0; i < truly_inside.size(); ++i) {
      if (truly_inside[i]) {
        ++total;
        tp += in_found[i] ? 1 : 0;
      }
    }
    return total > 0 ? static_cast<double>(tp) / total : 0.0;
  };
  // With tau below 0.5, the aware query keeps borderline objects that the
  // naive query loses when the noise pushed them outside.
  EXPECT_GT(recall(result.aware), recall(result.naive));
}

// ------------------------------------------------------------------ alibi

TEST(AlibiTest, ConfirmsAlibiForDistantObjects) {
  // Objects 10 km apart with low vmax cannot have met.
  Trajectory a(1), b(2);
  a.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));
  a.AppendUnordered(TrajectoryPoint(600'000, Point(600, 0)));
  b.AppendUnordered(TrajectoryPoint(0, Point(10'000, 0)));
  b.AppendUnordered(TrajectoryPoint(600'000, Point(10'600, 0)));
  EXPECT_FALSE(AlibiPossiblyMet(a, b, 5.0, 0, 600'000, 50.0));
}

TEST(AlibiTest, DetectsPossibleMeeting) {
  // Objects whose samples are 400 m apart at matching times, with enough
  // slack speed to have met in between.
  Trajectory a(1), b(2);
  a.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));
  a.AppendUnordered(TrajectoryPoint(100'000, Point(0, 0)));
  b.AppendUnordered(TrajectoryPoint(0, Point(400, 0)));
  b.AppendUnordered(TrajectoryPoint(100'000, Point(400, 0)));
  // vmax 10 m/s over 100 s: each lens reaches up to 500 m at mid time.
  EXPECT_TRUE(AlibiPossiblyMet(a, b, 10.0, 0, 100'000, 10.0));
  // vmax 1 m/s: lenses reach only 50 m; a 400 m gap cannot close.
  EXPECT_FALSE(AlibiPossiblyMet(a, b, 1.0, 0, 100'000, 10.0));
}

TEST(AlibiTest, SameTrajectoryAlwaysMeets) {
  const Trajectory a = Line(0.0, 20);
  EXPECT_TRUE(AlibiPossiblyMet(a, a, 5.0, 0, 19'000, 1.0));
}

}  // namespace
}  // namespace query
}  // namespace sidq

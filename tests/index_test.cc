#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/random.h"
#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/rtree.h"

namespace sidq {
namespace index {
namespace {

using geometry::BBox;
using geometry::Point;

std::vector<Point> RandomPoints(size_t n, double extent, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(rng.Uniform(0, extent), rng.Uniform(0, extent));
  }
  return out;
}

std::vector<uint64_t> BruteRange(const std::vector<Point>& pts,
                                 const BBox& box) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (box.Contains(pts[i])) out.push_back(i);
  }
  return out;
}

std::vector<uint64_t> BruteKnn(const std::vector<Point>& pts, const Point& q,
                               size_t k) {
  std::vector<std::pair<double, uint64_t>> d;
  for (size_t i = 0; i < pts.size(); ++i) {
    d.emplace_back(geometry::DistanceSq(pts[i], q), i);
  }
  std::sort(d.begin(), d.end());
  std::vector<uint64_t> out;
  for (size_t i = 0; i < std::min(k, d.size()); ++i) out.push_back(d[i].second);
  return out;
}

// ------------------------------------------------------------- GridIndex

TEST(GridIndexTest, InsertRemove) {
  GridIndex idx(10.0);
  idx.Insert(1, Point(5, 5));
  idx.Insert(2, Point(15, 5));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.Remove(1, Point(5, 5)));
  EXPECT_FALSE(idx.Remove(1, Point(5, 5)));
  EXPECT_FALSE(idx.Remove(2, Point(500, 500)));  // wrong cell
  EXPECT_EQ(idx.size(), 1u);
  idx.Clear();
  EXPECT_EQ(idx.size(), 0u);
}

TEST(GridIndexTest, RangeMatchesBruteForce) {
  const auto pts = RandomPoints(500, 1000.0, 5);
  GridIndex idx(50.0);
  for (size_t i = 0; i < pts.size(); ++i) idx.Insert(i, pts[i]);
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(100 + trial);
    const double x = rng.Uniform(0, 900), y = rng.Uniform(0, 900);
    const BBox box(x, y, x + rng.Uniform(10, 300), y + rng.Uniform(10, 300));
    auto got = idx.RangeQuery(box);
    auto want = BruteRange(pts, box);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndexTest, RadiusMatchesBruteForce) {
  const auto pts = RandomPoints(400, 800.0, 6);
  GridIndex idx(40.0);
  for (size_t i = 0; i < pts.size(); ++i) idx.Insert(i, pts[i]);
  const Point q(400, 400);
  auto got = idx.RadiusQuery(q, 120.0);
  std::set<uint64_t> got_set(got.begin(), got.end());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(got_set.count(i) > 0,
              geometry::Distance(pts[i], q) <= 120.0)
        << "point " << i;
  }
}

TEST(GridIndexTest, KnnMatchesBruteForce) {
  const auto pts = RandomPoints(300, 500.0, 7);
  GridIndex idx(25.0);
  for (size_t i = 0; i < pts.size(); ++i) idx.Insert(i, pts[i]);
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(200 + trial);
    const Point q(rng.Uniform(0, 500), rng.Uniform(0, 500));
    const auto got = idx.Knn(q, 5);
    const auto want = BruteKnn(pts, q, 5);
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndexTest, KnnMoreThanSize) {
  GridIndex idx(10.0);
  idx.Insert(1, Point(0, 0));
  idx.Insert(2, Point(5, 0));
  const auto got = idx.Knn(Point(1, 0), 10);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1u);
}

TEST(GridIndexTest, EmptyQueries) {
  GridIndex idx(10.0);
  EXPECT_TRUE(idx.RangeQuery(BBox(0, 0, 100, 100)).empty());
  EXPECT_TRUE(idx.Knn(Point(0, 0), 3).empty());
  EXPECT_TRUE(idx.RadiusQuery(Point(0, 0), 50).empty());
}

// ----------------------------------------------------------------- KdTree

TEST(KdTreeTest, KnnMatchesBruteForce) {
  const auto pts = RandomPoints(1000, 2000.0, 8);
  std::vector<KdTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) items.push_back({i, pts[i]});
  const KdTree tree(items);
  EXPECT_EQ(tree.size(), 1000u);
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(300 + trial);
    const Point q(rng.Uniform(0, 2000), rng.Uniform(0, 2000));
    EXPECT_EQ(tree.Knn(q, 7), BruteKnn(pts, q, 7));
  }
}

TEST(KdTreeTest, KnnWithDistanceSorted) {
  const auto pts = RandomPoints(200, 100.0, 9);
  std::vector<KdTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) items.push_back({i, pts[i]});
  const KdTree tree(items);
  const auto result = tree.KnnWithDistance(Point(50, 50), 10);
  ASSERT_EQ(result.size(), 10u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].second, result[i].second);
  }
}

TEST(KdTreeTest, RangeMatchesBruteForce) {
  const auto pts = RandomPoints(600, 1000.0, 10);
  std::vector<KdTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) items.push_back({i, pts[i]});
  const KdTree tree(items);
  const BBox box(200, 300, 600, 800);
  auto got = tree.RangeQuery(box);
  auto want = BruteRange(pts, box);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

TEST(KdTreeTest, RadiusQuery) {
  const auto pts = RandomPoints(300, 400.0, 11);
  std::vector<KdTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) items.push_back({i, pts[i]});
  const KdTree tree(items);
  const Point q(200, 200);
  auto got = tree.RadiusQuery(q, 80.0);
  std::set<uint64_t> got_set(got.begin(), got.end());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(got_set.count(i) > 0, geometry::Distance(pts[i], q) <= 80.0);
  }
}

TEST(KdTreeTest, EmptyTree) {
  const KdTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Knn(Point(0, 0), 5).empty());
  EXPECT_TRUE(tree.RangeQuery(BBox(0, 0, 1, 1)).empty());
}

// ------------------------------------------------------------------ RTree

TEST(RTreeTest, BulkLoadRange) {
  const auto pts = RandomPoints(800, 1500.0, 12);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) {
    items.push_back({i, BBox(pts[i], pts[i])});
  }
  RTree tree;
  tree.BulkLoad(items);
  EXPECT_EQ(tree.size(), 800u);
  EXPECT_GE(tree.height(), 2);
  const BBox box(100, 100, 700, 900);
  auto got = tree.RangeQuery(box);
  auto want = BruteRange(pts, box);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
  EXPECT_GT(tree.last_nodes_visited, 0u);
}

TEST(RTreeTest, DynamicInsertRange) {
  const auto pts = RandomPoints(500, 1000.0, 13);
  RTree tree(8);
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(i, BBox(pts[i], pts[i]));
  }
  EXPECT_EQ(tree.size(), 500u);
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(400 + trial);
    const double x = rng.Uniform(0, 800), y = rng.Uniform(0, 800);
    const BBox box(x, y, x + 200, y + 200);
    auto got = tree.RangeQuery(box);
    auto want = BruteRange(pts, box);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(RTreeTest, KnnMatchesBruteForce) {
  const auto pts = RandomPoints(400, 900.0, 14);
  std::vector<RTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) {
    items.push_back({i, BBox(pts[i], pts[i])});
  }
  RTree tree;
  tree.BulkLoad(items);
  const Point q(450, 450);
  EXPECT_EQ(tree.Knn(q, 9), BruteKnn(pts, q, 9));
}

TEST(RTreeTest, RectangleItems) {
  RTree tree;
  tree.Insert(1, BBox(0, 0, 10, 10));
  tree.Insert(2, BBox(20, 20, 30, 30));
  tree.Insert(3, BBox(5, 5, 25, 25));
  auto got = tree.RangeQuery(BBox(8, 8, 12, 12));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 3}));
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.RangeQuery(BBox(0, 0, 1, 1)).empty());
  EXPECT_TRUE(tree.Knn(Point(0, 0), 3).empty());
}

// Parameterised consistency sweep: all three indexes agree with brute force
// across sizes.
class IndexConsistencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexConsistencyTest, AllIndexesAgree) {
  const size_t n = GetParam();
  const auto pts = RandomPoints(n, 500.0, 42 + n);
  GridIndex grid(20.0);
  std::vector<KdTree::Item> kd_items;
  std::vector<RTree::Item> rt_items;
  for (size_t i = 0; i < n; ++i) {
    grid.Insert(i, pts[i]);
    kd_items.push_back({i, pts[i]});
    rt_items.push_back({i, BBox(pts[i], pts[i])});
  }
  const KdTree kd(kd_items);
  RTree rt;
  rt.BulkLoad(rt_items);
  const BBox box(100, 100, 400, 350);
  auto want = BruteRange(pts, box);
  auto g = grid.RangeQuery(box);
  auto k = kd.RangeQuery(box);
  auto r = rt.RangeQuery(box);
  std::sort(g.begin(), g.end());
  std::sort(k.begin(), k.end());
  std::sort(r.begin(), r.end());
  EXPECT_EQ(g, want);
  EXPECT_EQ(k, want);
  EXPECT_EQ(r, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IndexConsistencyTest,
                         ::testing::Values(1, 10, 64, 256, 1000));

}  // namespace
}  // namespace index
}  // namespace sidq

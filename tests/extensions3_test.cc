#include <set>

#include <gtest/gtest.h>

#include "core/random.h"
#include "fault/timestamp_repair.h"
#include "query/cloaking.h"
#include "query/continuous_knn.h"
#include "query/symbolic_range.h"
#include "fault/rfid_cleaning.h"
#include "sim/rfid.h"
#include "reduce/coding.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

using geometry::BBox;
using geometry::Point;

// ----------------------------------------------------- Continuous kNN

TEST(ContinuousKnnTest, SavesMessagesWithHighAccuracy) {
  Rng rng(1);
  const Point query(1000, 1000);
  query::ContinuousKnnMonitor monitor(query, 5);
  // 30 objects moving smoothly; track truth alongside.
  sim::TrajectorySimulator simulator({}, &rng);
  std::vector<Trajectory> trs;
  for (int i = 0; i < 30; ++i) {
    trs.push_back(
        simulator.RandomWaypoint(BBox(0, 0, 2000, 2000), 400, i));
  }
  size_t correct = 0, checked = 0;
  for (size_t step = 0; step < 400; ++step) {
    for (const auto& tr : trs) {
      monitor.ProcessUpdate(tr.object_id(), tr[step].p);
    }
    // Ground-truth kNN at this step.
    std::vector<std::pair<double, ObjectId>> truth;
    for (const auto& tr : trs) {
      truth.emplace_back(geometry::Distance(tr[step].p, query),
                         tr.object_id());
    }
    std::sort(truth.begin(), truth.end());
    const auto result = monitor.Result();
    const std::set<ObjectId> got(result.begin(), result.end());
    for (size_t i = 0; i < 5; ++i) {
      ++checked;
      correct += got.count(truth[i].second) > 0 ? 1 : 0;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / checked, 0.97);
  EXPECT_GT(monitor.MessageSavings(), 0.3);
  EXPECT_EQ(monitor.updates_processed(), 30u * 400u);
}

TEST(ContinuousKnnTest, FirstUpdatesAlwaysReport) {
  query::ContinuousKnnMonitor monitor(Point(0, 0), 2);
  EXPECT_TRUE(monitor.ProcessUpdate(1, Point(10, 0)));
  EXPECT_TRUE(monitor.ProcessUpdate(2, Point(20, 0)));
  EXPECT_EQ(monitor.Result(), (std::vector<ObjectId>{1, 2}));
}

TEST(ContinuousKnnTest, FewerObjectsThanK) {
  query::ContinuousKnnMonitor monitor(Point(0, 0), 10);
  monitor.ProcessUpdate(1, Point(1, 0));
  monitor.ProcessUpdate(2, Point(2, 0));
  EXPECT_EQ(monitor.Result().size(), 2u);
}

// ------------------------------------------------------------- Cloaking

TEST(CloakingTest, EveryCloakHoldsAtLeastKUsers) {
  Rng rng(2);
  std::vector<std::pair<ObjectId, Point>> users;
  for (int i = 0; i < 200; ++i) {
    users.emplace_back(i, Point(rng.Uniform(0, 5000), rng.Uniform(0, 5000)));
  }
  query::SpatialCloaker::Options opts;
  opts.k = 8;
  const auto cloaks = query::SpatialCloaker(opts).CloakAll(users);
  ASSERT_TRUE(cloaks.ok());
  ASSERT_EQ(cloaks->size(), users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    const auto& cloak = (*cloaks)[i];
    EXPECT_TRUE(cloak.region.Contains(users[i].second));
    size_t inside = 0;
    for (const auto& [id, p] : users) {
      inside += cloak.region.Contains(p) ? 1 : 0;
    }
    EXPECT_GE(inside, opts.k) << "user " << i;
  }
}

TEST(CloakingTest, StrongerKMeansLargerRegions) {
  Rng rng(3);
  std::vector<std::pair<ObjectId, Point>> users;
  for (int i = 0; i < 300; ++i) {
    users.emplace_back(i, Point(rng.Uniform(0, 4000), rng.Uniform(0, 4000)));
  }
  double mean_area_k4 = 0.0, mean_area_k32 = 0.0;
  {
    query::SpatialCloaker::Options opts;
    opts.k = 4;
    // Bind before iterating: ranging over `Temp().value()` would dangle
    // once the temporary StatusOr dies (caught by ASan).
    const auto cloaks = query::SpatialCloaker(opts).CloakAll(users).value();
    for (const auto& c : cloaks) {
      mean_area_k4 += c.region.Area();
    }
  }
  {
    query::SpatialCloaker::Options opts;
    opts.k = 32;
    const auto cloaks = query::SpatialCloaker(opts).CloakAll(users).value();
    for (const auto& c : cloaks) {
      mean_area_k32 += c.region.Area();
    }
  }
  EXPECT_LT(mean_area_k4, mean_area_k32);
}

TEST(CloakingTest, ExpectedCountTracksTruth) {
  Rng rng(4);
  std::vector<std::pair<ObjectId, Point>> users;
  for (int i = 0; i < 400; ++i) {
    users.emplace_back(i, Point(rng.Uniform(0, 4000), rng.Uniform(0, 4000)));
  }
  query::SpatialCloaker::Options opts;
  opts.k = 10;
  const auto cloaks = query::SpatialCloaker(opts).CloakAll(users).value();
  const BBox range(1000, 1000, 3000, 3000);
  size_t truth = 0;
  for (const auto& [id, p] : users) truth += range.Contains(p) ? 1 : 0;
  const double expected = query::ExpectedCountInRange(cloaks, range);
  EXPECT_NEAR(expected, static_cast<double>(truth),
              static_cast<double>(truth) * 0.25 + 5.0);
}

TEST(CloakingTest, TooFewUsersFails) {
  query::SpatialCloaker::Options opts;
  opts.k = 10;
  EXPECT_FALSE(query::SpatialCloaker(opts)
                   .CloakAll({{1, Point(0, 0)}, {2, Point(1, 1)}})
                   .ok());
}

// ------------------------------------------------------- Symbolic range

TEST(SymbolicRangeTest, TracksMembershipExactly) {
  query::SymbolicRangeMonitor monitor({2, 3}, 10'000);
  monitor.ProcessReading({1, 2, 0});       // object 1 enters region 2
  monitor.ProcessReading({2, 5, 0});       // object 2 elsewhere
  EXPECT_EQ(monitor.Inside(1000), (std::vector<ObjectId>{1}));
  monitor.ProcessReading({2, 3, 2000});    // object 2 enters region 3
  EXPECT_EQ(monitor.Inside(2500).size(), 2u);
  monitor.ProcessReading({1, 7, 3000});    // object 1 leaves
  EXPECT_EQ(monitor.Inside(3500), (std::vector<ObjectId>{2}));
  // Staleness: object 2 unseen for too long drops out.
  EXPECT_TRUE(monitor.Inside(20'000).empty());
}

TEST(SymbolicRangeTest, CleaningImprovesCountAccuracy) {
  Rng rng(8);
  const auto deployment = sim::RfidDeployment::Corridor(12);
  std::vector<SymbolicTrajectory> truth, dirty, cleaned;
  fault::HmmCleaner cleaner(&deployment);
  for (int tag = 0; tag < 12; ++tag) {
    truth.push_back(deployment.SimulateWalk(tag, 40, 4, 1000, &rng));
    dirty.push_back(deployment.Degrade(truth.back(), 0.3, 0.15, &rng));
    cleaned.push_back(cleaner.Clean(dirty.back()).value());
  }
  const std::set<RegionId> zone{4, 5, 6};
  const double dirty_err =
      query::CountError(truth, dirty, zone, 1000, 8000);
  const double cleaned_err =
      query::CountError(truth, cleaned, zone, 1000, 8000);
  EXPECT_LT(cleaned_err, dirty_err);
}

// ---------------------------------------------------------- Fuzz/property

TEST(CodingFuzzTest, TruncatedStreamsErrorNotCrash) {
  Rng rng(5);
  std::vector<int64_t> values;
  int64_t v = 0;
  for (int i = 0; i < 200; ++i) {
    v += rng.UniformInt(-100, 100);
    values.push_back(v);
  }
  const auto bytes = reduce::EncodeIntegerSeries(values);
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    const auto decoded = reduce::DecodeIntegerSeries(truncated);
    // Either a clean error or (for long-enough prefixes that happen to
    // parse) a result; never a crash. Full-length must round-trip.
    (void)decoded;
  }
  EXPECT_EQ(reduce::DecodeIntegerSeries(bytes).value(), values);
}

TEST(CodingFuzzTest, CorruptedBytesNeverCrash) {
  Rng rng(6);
  std::vector<int64_t> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.UniformInt(-500, 500));
  const auto bytes = reduce::EncodeIntegerSeries(values);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupted = bytes;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corrupted.size()) - 1));
    corrupted[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    const auto decoded = reduce::DecodeIntegerSeries(corrupted);
    (void)decoded;  // must not crash; error or garbage values both fine
  }
  SUCCEED();
}

TEST(PavaPropertyTest, IdempotentAndOrderPreserving) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Timestamp> ts;
    Timestamp t = 0;
    for (int i = 0; i < 100; ++i) {
      t += rng.UniformInt(-500, 1500);
      ts.push_back(t);
    }
    const auto once = fault::RepairTimestamps(ts).value();
    const auto twice = fault::RepairTimestamps(once).value();
    EXPECT_EQ(once, twice);  // repairing a repaired sequence is a no-op
    for (size_t i = 1; i < once.size(); ++i) {
      EXPECT_GE(once[i], once[i - 1]);
    }
    // Already-sorted inputs are untouched.
    std::vector<Timestamp> sorted = ts;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(fault::RepairTimestamps(sorted).value(), sorted);
  }
}

}  // namespace
}  // namespace sidq

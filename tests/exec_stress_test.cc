// Concurrency stress tests for src/exec/, written to be run under the
// `tsan` preset (they also run in every other preset): tiny shards and
// more workers than cores hammer the pool's queue, steal, cancellation,
// and report-merge paths so ThreadSanitizer sees real interleavings
// instead of a single lucky schedule.

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>  // multi-producer submission stress
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/random.h"
#include "core/status.h"
#include "core/trajectory.h"
#include "exec/fleet_runner.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace sidq {
namespace {

using exec::FleetResult;
using exec::FleetRunner;
using exec::ShardingMode;
using exec::ThreadPool;

std::vector<Trajectory> MakeTinyFleet(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trajectory> fleet;
  fleet.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Trajectory t(static_cast<ObjectId>(i));
    double x = rng.Uniform(0.0, 1000.0);
    double y = rng.Uniform(0.0, 1000.0);
    for (size_t k = 0; k < 8; ++k) {
      t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 500,
                                        geometry::Point(x, y), 3.0));
      x += rng.Gaussian(0.0, 5.0);
      y += rng.Gaussian(0.0, 5.0);
    }
    fleet.push_back(std::move(t));
  }
  return fleet;
}

TrajectoryPipeline MakeJitterPipeline() {
  TrajectoryPipeline pipeline;
  pipeline.AddSeeded("jitter",
                     [](const Trajectory& in, Rng& rng) -> StatusOr<Trajectory> {
                       Trajectory out(in.object_id());
                       for (const TrajectoryPoint& pt : in.points()) {
                         TrajectoryPoint moved = pt;
                         moved.p.x += rng.Gaussian(0.0, 1.0);
                         moved.p.y += rng.Gaussian(0.0, 1.0);
                         out.AppendUnordered(moved);
                       }
                       return out;
                     });
  return pipeline;
}

TEST(ExecStressTest, ManyWorkersSingleTrajectoryShardsStayDeterministic) {
  const uint64_t kSeed = 7;
  const auto fleet = MakeTinyFleet(256, kSeed);
  const TrajectoryPipeline pipeline = MakeJitterPipeline();
  const auto serial = pipeline.RunBatch(fleet, kSeed);
  ASSERT_TRUE(serial.ok());

  FleetRunner::Options options;
  options.num_threads = 8;  // deliberately more than this container's cores
  options.shard_size = 1;   // maximum queue/steal churn
  options.base_seed = kSeed;
  const FleetRunner runner(&pipeline, options);

  for (int round = 0; round < 5; ++round) {
    const FleetResult result = runner.Run(fleet);
    ASSERT_TRUE(result.ok()) << result.first_error;
    for (size_t i = 0; i < fleet.size(); ++i) {
      const Trajectory& got = result.cleaned[i];
      const Trajectory& want = (*serial)[i];
      ASSERT_EQ(got.size(), want.size());
      for (size_t k = 0; k < got.size(); ++k) {
        ASSERT_EQ(got[k].p.x, want[k].p.x) << "round " << round;
        ASSERT_EQ(got[k].p.y, want[k].p.y) << "round " << round;
      }
    }
  }
}

TEST(ExecStressTest, ProfiledMergeUnderManyWorkers) {
  const uint64_t kSeed = 11;
  const auto fleet = MakeTinyFleet(192, kSeed);
  const TrajectoryPipeline pipeline = MakeJitterPipeline();
  FleetRunner::Options options;
  options.num_threads = 8;
  options.shard_size = 1;
  options.sharding = ShardingMode::kSkewAware;
  options.skew_max_load = 4;
  options.base_seed = kSeed;
  const FleetRunner runner(&pipeline, options);

  FleetResult reference;
  for (int round = 0; round < 3; ++round) {
    const FleetResult result =
        runner.RunProfiled(fleet, &fleet, TrajectoryProfiler());
    ASSERT_TRUE(result.ok()) << result.first_error;
    ASSERT_EQ(result.stage_stats.size(), 2u);
    const auto& acc =
        result.stage_stats[1].metrics.at(DqDimension::kAccuracy);
    EXPECT_EQ(acc.count, fleet.size());
    if (round == 0) {
      reference = result;
    } else {
      // Aggregates merge after the join in input order: bit-equal rounds.
      EXPECT_EQ(acc.mean,
                reference.stage_stats[1]
                    .metrics.at(DqDimension::kAccuracy)
                    .mean);
      EXPECT_EQ(acc.p99, reference.stage_stats[1]
                             .metrics.at(DqDimension::kAccuracy)
                             .p99);
    }
  }
}

TEST(ExecStressTest, CancellationRaceIsClean) {
  // Poison several trajectories; whichever shard trips the flag first,
  // every status must end as OK, the stage error, or Cancelled -- and the
  // winning first_error must always be a stage error, never Cancelled.
  const uint64_t kSeed = 13;
  const auto fleet = MakeTinyFleet(128, kSeed);
  TrajectoryPipeline pipeline = MakeJitterPipeline();
  pipeline.Add("validate", [](const Trajectory& in) -> StatusOr<Trajectory> {
    if (in.object_id() % 17 == 3) return Status::DataLoss("poisoned");
    return in;
  });

  FleetRunner::Options options;
  options.num_threads = 8;
  options.shard_size = 2;
  options.base_seed = kSeed;
  options.cancel_on_error = true;
  const FleetRunner runner(&pipeline, options);

  for (int round = 0; round < 4; ++round) {
    const FleetResult result = runner.Run(fleet);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.first_error.code(), StatusCode::kDataLoss);
    size_t failed = 0;
    for (const Status& st : result.statuses) {
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kDataLoss ||
                  st.code() == StatusCode::kCancelled)
          << st;
      if (st.code() == StatusCode::kDataLoss) ++failed;
    }
    EXPECT_GE(failed, 1u);
  }
}

TEST(ExecStressTest, MultiProducerSubmission) {
  // Four producer threads hammer one pool while its eight workers drain;
  // the counter must come out exact and TSan must stay silent.
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 2000;
  {
    std::vector<std::thread> producers;  // sidq: allow-stray-thread(stress the pool's MPMC path)
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &sum, p] {
        std::vector<std::future<Status>> futures;
        futures.reserve(kTasksPerProducer);
        for (int i = 0; i < kTasksPerProducer; ++i) {
          futures.push_back(pool.Submit([&sum, p, i]() -> Status {
            sum.fetch_add(static_cast<int64_t>(p) * kTasksPerProducer + i,
                          std::memory_order_relaxed);
            return Status::OK();
          }));
        }
        for (auto& f : futures) f.wait();
      });
    }
    // sidq: allow-stray-thread(joining the producer threads spawned above)
    for (std::thread& t : producers) t.join();
  }
  pool.Shutdown();
  constexpr int64_t kTotal = int64_t{kProducers} * kTasksPerProducer;
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

// Eight pool workers hammer one MetricsRegistry -- the same counter, gauge,
// and histogram cells, plus racing first-registrations of per-task names --
// and the merged snapshot must equal the arithmetic totals exactly. Under
// the tsan preset this is the data-race check for the striped lock-free
// write path; in every preset it is the no-lost-updates check.
TEST(ExecStressTest, MetricsRegistryLosesNothingUnderPoolContention) {
  obs::MetricsRegistry registry;
  constexpr int kWorkers = 8;
  constexpr int kTasks = 64;
  constexpr int kOpsPerTask = 5000;

  ThreadPool pool(kWorkers);
  {
    std::vector<std::future<Status>> futures;
    futures.reserve(kTasks);
    for (int task = 0; task < kTasks; ++task) {
      futures.push_back(pool.Submit([&registry, task]() -> Status {
        // Shared hot cells: every task resolves the same names (shared-lock
        // fast path) and writes lock-free.
        obs::Counter hits = registry.counter("stress.hits");
        obs::Gauge net = registry.gauge("stress.net");
        obs::Histogram lat =
            registry.histogram("stress.latency", {10.0, 100.0, 1000.0});
        // Racing first registration: a fresh name per task, exercising the
        // exclusive path concurrently with the fast path above.
        registry.counter("stress.task." + std::to_string(task)).Increment();
        for (int i = 0; i < kOpsPerTask; ++i) {
          hits.Increment();
          net.Add(i % 2 == 0 ? 1 : -1);
          lat.Record(static_cast<double>(i % 200));
        }
        return Status::OK();
      }));
    }
    for (auto& f : futures) {
      EXPECT_TRUE(f.get().ok());
    }
  }
  pool.Shutdown();

  const obs::MetricsSnapshot snap = registry.Snapshot();
  int64_t hits = -1;
  int64_t per_task_total = 0;
  for (const obs::CounterValue& c : snap.counters) {
    if (c.name == "stress.hits") hits = c.value;
    if (c.name.rfind("stress.task.", 0) == 0) per_task_total += c.value;
  }
  EXPECT_EQ(hits, int64_t{kTasks} * kOpsPerTask);
  EXPECT_EQ(per_task_total, kTasks);  // every registration survived the race

  for (const obs::GaugeValue& g : snap.gauges) {
    if (g.name == "stress.net") {
      EXPECT_EQ(g.value, 0);  // +1/-1 pairs cancel
    }
  }
  for (const obs::HistogramValue& h : snap.histograms) {
    if (h.name != "stress.latency") continue;
    EXPECT_EQ(h.count, int64_t{kTasks} * kOpsPerTask);
    // Integer samples: the striped double sums merge exactly.
    double expected = 0.0;
    for (int i = 0; i < kOpsPerTask; ++i) {
      expected += static_cast<double>(i % 200) * kTasks;
    }
    EXPECT_DOUBLE_EQ(h.sum, expected);
    EXPECT_DOUBLE_EQ(h.max, 199.0);
    EXPECT_FALSE(h.invalid);
  }
  EXPECT_TRUE(registry.registration_error().empty());
}

}  // namespace
}  // namespace sidq

#include <cmath>

#include <gtest/gtest.h>

#include "reduce/coding.h"
#include "reduce/network_compression.h"
#include "reduce/simplify.h"
#include "reduce/stid_compression.h"
#include "refine/hmm_map_matcher.h"
#include "sim/noise.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace reduce {
namespace {

using geometry::Point;

Trajectory Zigzag(int n) {
  // A wiggly trajectory: simplification has real work to do.
  Trajectory tr(1);
  for (int i = 0; i < n; ++i) {
    const double y = 20.0 * std::sin(i * 0.3) + 5.0 * std::sin(i * 1.1);
    tr.AppendUnordered(TrajectoryPoint(i * 1000, Point(i * 10.0, y)));
  }
  return tr;
}

// --------------------------------------------------------- Simplification

TEST(SimplifyTest, DpSedRespectsBound) {
  const Trajectory tr = Zigzag(500);
  for (double eps : {2.0, 5.0, 15.0}) {
    const auto simp = DouglasPeuckerSed(tr, eps);
    ASSERT_TRUE(simp.ok());
    EXPECT_LE(MaxSedError(tr, simp.value()), eps + 1e-9) << "eps=" << eps;
    EXPECT_LT(simp->size(), tr.size());
  }
}

TEST(SimplifyTest, DpPerpRespectsBound) {
  const Trajectory tr = Zigzag(400);
  const auto simp = DouglasPeuckerPerp(tr, 5.0);
  ASSERT_TRUE(simp.ok());
  // Perpendicular DP bounds perpendicular distance, not SED, but the
  // endpoints must be preserved.
  EXPECT_EQ(simp->front().t, tr.front().t);
  EXPECT_EQ(simp->back().t, tr.back().t);
  EXPECT_LT(simp->size(), tr.size() / 2);
}

TEST(SimplifyTest, RatioGrowsWithEpsilon) {
  const Trajectory tr = Zigzag(600);
  double prev_ratio = 0.0;
  for (double eps : {1.0, 3.0, 9.0, 27.0}) {
    const auto simp = DouglasPeuckerSed(tr, eps);
    ASSERT_TRUE(simp.ok());
    const double ratio = CompressionRatio(tr, simp.value());
    EXPECT_GE(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 5.0);
}

TEST(SimplifyTest, OnlineAlgorithmsRespectBoundLoosely) {
  const Trajectory tr = Zigzag(500);
  const double eps = 10.0;
  for (auto* fn : {&DeadReckoning, &OpeningWindow, &SquishE}) {
    const auto simp = (*fn)(tr, eps);
    ASSERT_TRUE(simp.ok());
    EXPECT_LT(simp->size(), tr.size());
    // Online algorithms are heuristic; allow modest overshoot.
    EXPECT_LE(MaxSedError(tr, simp.value()), 3.0 * eps);
  }
}

TEST(SimplifyTest, OfflineDpDominatesOnlineAtEqualBound) {
  // Tutorial claim: offline algorithms see the whole trajectory and
  // compress at least as well as online ones for the same error budget.
  const Trajectory tr = Zigzag(800);
  const double eps = 8.0;
  const double dp = CompressionRatio(tr, DouglasPeuckerSed(tr, eps).value());
  const double dr = CompressionRatio(tr, DeadReckoning(tr, eps).value());
  const double ow = CompressionRatio(tr, OpeningWindow(tr, eps).value());
  EXPECT_GE(dp, dr * 0.9);
  EXPECT_GE(dp, ow * 0.9);
}

TEST(SimplifyTest, SquishEKeepsEndpoints) {
  const Trajectory tr = Zigzag(200);
  const auto simp = SquishE(tr, 50.0);
  ASSERT_TRUE(simp.ok());
  EXPECT_EQ(simp->front().t, tr.front().t);
  EXPECT_EQ(simp->back().t, tr.back().t);
}

TEST(SimplifyTest, UniformSample) {
  const Trajectory tr = Zigzag(100);
  const auto simp = UniformSample(tr, 10);
  ASSERT_TRUE(simp.ok());
  EXPECT_EQ(simp->size(), 11u);  // 10 sampled + preserved last point
  EXPECT_FALSE(UniformSample(tr, 0).ok());
}

TEST(SimplifyTest, TinyInputsPassThrough) {
  Trajectory tiny(1);
  tiny.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));
  tiny.AppendUnordered(TrajectoryPoint(1000, Point(1, 0)));
  for (auto* fn : {&DouglasPeuckerSed, &DeadReckoning, &OpeningWindow,
                   &SquishE}) {
    const auto simp = (*fn)(tiny, 1.0);
    ASSERT_TRUE(simp.ok());
    EXPECT_EQ(simp->size(), 2u);
  }
  EXPECT_FALSE(DouglasPeuckerSed(tiny, -1.0).ok());
}

// ------------------------------------------------------------------ Coding

TEST(CodingTest, BitWriterReaderRoundTrip) {
  BitWriter w;
  w.WriteBit(true);
  w.WriteBits(0b1011, 4);
  w.WriteUnary(5);
  w.WriteBits(0xDEADBEEF, 32);
  const auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.ReadBit().value());
  EXPECT_EQ(r.ReadBits(4).value(), 0b1011u);
  EXPECT_EQ(r.ReadUnary().value(), 5u);
  EXPECT_EQ(r.ReadBits(32).value(), 0xDEADBEEFu);
}

TEST(CodingTest, ReaderExhaustionIsError) {
  BitWriter w;
  w.WriteBits(3, 2);
  const auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.ReadBits(8).ok());  // padding bits are readable
  EXPECT_FALSE(r.ReadBits(8).ok());
}

TEST(CodingTest, ZigZag) {
  for (int64_t v : std::vector<int64_t>{0, -1, 1, -1000, 1000, INT64_MIN / 2}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(CodingTest, GolombRiceRoundTrip) {
  for (int k : {0, 3, 7}) {
    BitWriter w;
    const std::vector<uint64_t> values{0, 1, 5, 100, 12345};
    for (uint64_t v : values) GolombRiceEncode(v, k, &w);
    const auto bytes = w.Finish();
    BitReader r(bytes);
    for (uint64_t v : values) {
      EXPECT_EQ(GolombRiceDecode(k, &r).value(), v) << "k=" << k;
    }
  }
}

TEST(CodingTest, IntegerSeriesRoundTrip) {
  Rng rng(1);
  std::vector<int64_t> values;
  int64_t cur = 1'000'000;
  for (int i = 0; i < 2000; ++i) {
    cur += rng.UniformInt(-50, 80);
    values.push_back(cur);
  }
  const auto bytes = EncodeIntegerSeries(values);
  const auto decoded = DecodeIntegerSeries(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), values);
  // Smooth series must compress well below 8 bytes/value.
  EXPECT_LT(bytes.size(), values.size() * 3);
}

TEST(CodingTest, IntegerSeriesEmptyAndSingle) {
  EXPECT_TRUE(DecodeIntegerSeries(EncodeIntegerSeries({})).value().empty());
  const auto one = DecodeIntegerSeries(EncodeIntegerSeries({-42}));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value(), (std::vector<int64_t>{-42}));
}

TEST(CodingTest, VarintRoundTrip) {
  std::vector<uint8_t> buf;
  const std::vector<uint64_t> values{0, 1, 127, 128, 300, 1ull << 40};
  for (uint64_t v : values) PutVarint(v, &buf);
  size_t pos = 0;
  for (uint64_t v : values) {
    EXPECT_EQ(GetVarint(buf, &pos).value(), v);
  }
  EXPECT_EQ(pos, buf.size());
  EXPECT_FALSE(GetVarint(buf, &pos).ok());  // exhausted
}

// -------------------------------------------------------- STID compression

StSeries MakeSeries(int n, uint64_t seed) {
  Rng rng(seed);
  StSeries s(1, Point(0, 0));
  double v = 50.0;
  for (int i = 0; i < n; ++i) {
    v += rng.Gaussian(0.0, 0.4);
    EXPECT_TRUE(s.Append(i * 60'000, v).ok());
  }
  return s;
}

TEST(LosslessTest, ExactAtQuantum) {
  const StSeries s = MakeSeries(500, 2);
  const double quantum = 0.01;
  const auto encoded = LosslessCompress(s, quantum);
  const auto decoded = LosslessDecompress(encoded, 1, Point(0, 0));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ((*decoded)[i].t, s[i].t);
    EXPECT_NEAR((*decoded)[i].value, s[i].value, quantum / 2 + 1e-12);
  }
  // Regular timestamps + smooth values: strong compression.
  EXPECT_LT(encoded.TotalBytes(), 500 * 16 / 4);
}

TEST(LtcTest, ErrorBounded) {
  const StSeries s = MakeSeries(400, 3);
  for (double eps : {0.2, 1.0, 4.0}) {
    const auto encoded = LtcCompress(s, eps);
    ASSERT_TRUE(encoded.ok());
    std::vector<Timestamp> ts;
    for (const auto& r : s.records()) ts.push_back(r.t);
    const auto decoded = LtcDecompress(encoded.value(), ts, 1, Point(0, 0));
    ASSERT_TRUE(decoded.ok());
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_LE(std::abs((*decoded)[i].value - s[i].value), eps + 1e-9)
          << "eps=" << eps;
    }
  }
}

TEST(LtcTest, RatioGrowsWithEpsilon) {
  const StSeries s = MakeSeries(600, 4);
  size_t prev_knots = s.size() + 1;
  for (double eps : {0.1, 0.5, 2.0, 8.0}) {
    const auto encoded = LtcCompress(s, eps);
    ASSERT_TRUE(encoded.ok());
    EXPECT_LE(encoded->knot_times.size(), prev_knots);
    prev_knots = encoded->knot_times.size();
  }
  EXPECT_LT(prev_knots, s.size() / 10);
}

TEST(LtcTest, RejectsNegativeEpsilon) {
  EXPECT_FALSE(LtcCompress(MakeSeries(10, 5), -1.0).ok());
}

TEST(DualPredictionTest, ErrorBoundHolds) {
  const StSeries s = MakeSeries(500, 6);
  const std::vector<double> values = s.Values();
  for (double eps : {0.5, 2.0}) {
    const auto result = DualPredictionReduce(values, eps);
    ASSERT_EQ(result.reconstructed.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_LE(std::abs(result.reconstructed[i] - values[i]), eps + 1e-12);
    }
    EXPECT_GT(result.SuppressionRate(), 0.3) << "eps=" << eps;
  }
}

TEST(DualPredictionTest, SuppressionGrowsWithEpsilon) {
  const std::vector<double> values = MakeSeries(800, 7).Values();
  double prev = -1.0;
  for (double eps : {0.1, 0.5, 2.0, 8.0}) {
    const double rate = DualPredictionReduce(values, eps).SuppressionRate();
    EXPECT_GE(rate, prev);
    prev = rate;
  }
  EXPECT_GT(prev, 0.9);
}

// ---------------------------------------------------- Network compression

TEST(NetworkCompressionTest, RoundTrip) {
  std::vector<EdgeId> edges;
  std::vector<Timestamp> times;
  Rng rng(8);
  EdgeId cur_edge = 100;
  Timestamp t = 5000;
  for (int i = 0; i < 300; ++i) {
    if (i % 7 == 0) cur_edge += static_cast<EdgeId>(rng.UniformInt(1, 3));
    edges.push_back(cur_edge);
    times.push_back(t);
    t += 1000 + rng.UniformInt(-20, 20);
  }
  const auto compressed = CompressMatched(edges, times);
  ASSERT_TRUE(compressed.ok());
  const auto decompressed = DecompressMatched(compressed.value());
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(decompressed->edges, edges);
  EXPECT_EQ(decompressed->times, times);
  // Should beat the raw (x, y, t) representation by a wide margin.
  EXPECT_LT(compressed->TotalBytes(), RawPointBytes(edges.size()) / 5);
}

TEST(NetworkCompressionTest, RejectsMismatchedLengths) {
  EXPECT_FALSE(CompressMatched({1, 2}, {0}).ok());
}

TEST(NetworkCompressionTest, EmptyRoundTrip) {
  const auto compressed = CompressMatched({}, {});
  ASSERT_TRUE(compressed.ok());
  const auto decompressed = DecompressMatched(compressed.value());
  ASSERT_TRUE(decompressed.ok());
  EXPECT_TRUE(decompressed->edges.empty());
}

TEST(NetworkCompressionTest, EndToEndWithMapMatcher) {
  Rng rng(9);
  sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(8, 8, 150.0, 5.0, 0.0, &rng);
  sim::TrajectorySimulator simulator({}, &rng);
  const auto truth = simulator.RandomOnNetwork(net, 14, 1);
  ASSERT_TRUE(truth.ok());
  const Trajectory noisy = sim::AddGpsNoise(truth.value(), 10.0, &rng);
  refine::HmmMapMatcher matcher(&net);
  const auto matched = matcher.Match(noisy);
  ASSERT_TRUE(matched.ok());
  std::vector<Timestamp> times;
  for (const auto& pt : matched->matched.points()) times.push_back(pt.t);
  const auto compressed = CompressMatched(matched->edges, times);
  ASSERT_TRUE(compressed.ok());
  const auto decompressed = DecompressMatched(compressed.value());
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(decompressed->edges, matched->edges);
  EXPECT_EQ(decompressed->times, times);
}

// Parameterised: every simplifier's output is monotone in time and retains
// the endpoints -- invariants any downstream consumer relies on.
using SimplifierFn = StatusOr<Trajectory> (*)(const Trajectory&, double);

class SimplifierInvariantTest
    : public ::testing::TestWithParam<SimplifierFn> {};

TEST_P(SimplifierInvariantTest, TimeOrderedAndEndpointPreserving) {
  const Trajectory tr = Zigzag(300);
  const auto simp = GetParam()(tr, 6.0);
  ASSERT_TRUE(simp.ok());
  EXPECT_TRUE(simp->IsTimeOrdered());
  EXPECT_EQ(simp->front().t, tr.front().t);
  EXPECT_EQ(simp->back().t, tr.back().t);
  EXPECT_GE(simp->size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllSimplifiers, SimplifierInvariantTest,
                         ::testing::Values(&DouglasPeuckerSed,
                                           &DouglasPeuckerPerp,
                                           &DeadReckoning, &OpeningWindow,
                                           &SquishE));

}  // namespace
}  // namespace reduce
}  // namespace sidq

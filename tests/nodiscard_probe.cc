// Negative compile probe for the [[nodiscard]] Status contract. This file
// must NOT compile under -Werror=unused-result; the `status_nodiscard_probe`
// ctest (see the top-level CMakeLists.txt) runs the compiler on it with
// WILL_FAIL, so the suite fails if discarding a Status ever stops warning.
//
// It is deliberately excluded from every build target.

#include "core/status.h"
#include "core/statusor.h"

namespace {

sidq::Status MakeStatus() { return sidq::Status::OK(); }
sidq::StatusOr<int> MakeStatusOr() { return 42; }

}  // namespace

int main() {
  MakeStatus();    // discarded Status: must warn
  MakeStatusOr();  // discarded StatusOr: must warn
  return 0;
}

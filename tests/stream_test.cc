// Unit tests for the streaming ingestion layer: declarative rule parsing,
// event-time watermark / window / admission semantics, the online cleaning
// operators, event-log recording and serialization, and the engine's chaos
// behaviour at the ingest and window-close failpoint sites.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/clock.h"
#include "obs/export.h"
#include "core/exec_context.h"
#include "core/failpoint.h"
#include "core/random.h"
#include "obs/metrics.h"
#include "outlier/online_detectors.h"
#include "refine/online_kalman.h"
#include "stream/admission.h"
#include "stream/engine.h"
#include "stream/event_log.h"
#include "stream/replay.h"
#include "stream/rules.h"
#include "stream/window.h"
#include "store/vfs.h"

namespace sidq {
namespace stream {
namespace {

StreamEvent Event(uint64_t seq, SensorId sensor, Timestamp t, double value) {
  StreamEvent ev;
  ev.seq = seq;
  ev.arrival_ms = t;
  ev.record = StRecord(sensor, t, geometry::Point(10.0, 20.0), value);
  return ev;
}

class StreamTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailPoints(); }
};

// --- rules ---

TEST(RulesTest, ParsesDefaultsOverridesAndPolicy) {
  const StatusOr<RuleSet> parsed = ParseRuleSet(
      "# pm2.5 fleet\n"
      "default range 0 500 interval 60000 lateness 120000 rate 5\n"
      "sensor 7 range -10 10 lateness 1000\n"
      "unknown-sensors quarantine\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const RuleSet& rules = *parsed;
  EXPECT_TRUE(rules.quarantine_unknown());
  EXPECT_EQ(rules.num_sensor_rules(), 1u);
  const SensorRule* seven = rules.Find(7);
  ASSERT_NE(seven, nullptr);
  EXPECT_EQ(seven->min_value, -10.0);
  EXPECT_EQ(seven->max_value, 10.0);
  // Unspecified clauses inherit the *default rule* as parsed so far.
  EXPECT_EQ(seven->expected_interval_ms, 60'000);
  EXPECT_EQ(seven->max_lateness_ms, 1000);
  EXPECT_EQ(seven->max_rate_per_s, 5.0);
  // Unknown sensor under quarantine policy: no rule.
  EXPECT_EQ(rules.Find(99), nullptr);
}

TEST(RulesTest, AdmitPolicyFallsBackToDefaultRule) {
  const StatusOr<RuleSet> parsed =
      ParseRuleSet("default range 0 100\nunknown-sensors admit\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const SensorRule* rule = parsed->Find(12345);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->max_value, 100.0);
}

TEST(RulesTest, RejectsMalformedConfigs) {
  EXPECT_FALSE(ParseRuleSet("default range 10 5\n").ok());  // min >= max
  EXPECT_FALSE(ParseRuleSet("default interval -3\n").ok());
  EXPECT_FALSE(ParseRuleSet("default jitter 9\n").ok());
  EXPECT_FALSE(ParseRuleSet("satellite 3 range 0 1\n").ok());
  EXPECT_FALSE(ParseRuleSet("unknown-sensors maybe\n").ok());
  EXPECT_FALSE(ParseRuleSet("sensor range 0 1\n").ok());  // missing id
}

// --- window indexing ---

TEST(WindowIndexTest, FloorsNegativeTimestamps) {
  EXPECT_EQ(WindowIndexOf(0, 100), 0);
  EXPECT_EQ(WindowIndexOf(99, 100), 0);
  EXPECT_EQ(WindowIndexOf(100, 100), 1);
  EXPECT_EQ(WindowIndexOf(-1, 100), -1);
  EXPECT_EQ(WindowIndexOf(-100, 100), -1);
  EXPECT_EQ(WindowIndexOf(-101, 100), -2);
}

// --- admission ---

RuleSet TightRules() {
  RuleSet rules;
  SensorRule rule;
  rule.min_value = 0.0;
  rule.max_value = 100.0;
  rule.expected_interval_ms = 1000;
  rule.max_lateness_ms = 5000;
  rules.set_default_rule(rule);
  return rules;
}

TEST(AdmissionTest, WatermarkLateBoundaryIsInclusive) {
  const RuleSet rules = TightRules();
  AdmissionFilter filter(&rules, 10'000, 100);
  EXPECT_EQ(filter.Watermark(1), kMinTimestamp);  // no admits yet
  EXPECT_TRUE(filter.Observe(Event(0, 1, 20'000, 5.0)).admitted);
  EXPECT_EQ(filter.Watermark(1), 15'000);
  // t == watermark is late (<=), watermark + 1 is admissible.
  const AdmissionDecision late = filter.Observe(Event(1, 1, 15'000, 5.0));
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.reason, QuarantineReason::kLate);
  EXPECT_TRUE(filter.Observe(Event(2, 1, 15'001, 5.0)).admitted);
}

TEST(AdmissionTest, WatermarkAdvancesOnlyOnAdmittedRecords) {
  const RuleSet rules = TightRules();
  AdmissionFilter filter(&rules, 10'000, 100);
  EXPECT_TRUE(filter.Observe(Event(0, 1, 1000, 5.0)).admitted);
  // A garbage out-of-range record with a far-future timestamp must not
  // drag the watermark forward and blind the sensor.
  const AdmissionDecision bad = filter.Observe(Event(1, 1, 9'000'000, 999.0));
  EXPECT_FALSE(bad.admitted);
  EXPECT_EQ(bad.reason, QuarantineReason::kOutOfRange);
  EXPECT_EQ(filter.Watermark(1), 1000 - 5000);
  EXPECT_TRUE(filter.Observe(Event(2, 1, 1500, 5.0)).admitted);
}

TEST(AdmissionTest, ChecksFireInDocumentedOrder) {
  RuleSet rules = TightRules();
  rules.set_quarantine_unknown(true);
  rules.AddRule(1, rules.default_rule());
  AdmissionFilter filter(&rules, 10'000, 2);

  EXPECT_EQ(filter.Observe(Event(0, 9, 0, 5.0)).reason,
            QuarantineReason::kUnknownSensor);
  EXPECT_EQ(filter.Observe(Event(1, 1, 0, std::nan(""))).reason,
            QuarantineReason::kNonFinite);
  EXPECT_TRUE(filter.Observe(Event(2, 1, 1000, 5.0)).admitted);
  const AdmissionDecision dup = filter.Observe(Event(3, 1, 1000, 7.0));
  EXPECT_EQ(dup.reason, QuarantineReason::kDuplicate);
  EXPECT_EQ(filter.Observe(Event(4, 1, 2000, -3.0)).reason,
            QuarantineReason::kOutOfRange);
  EXPECT_TRUE(filter.Observe(Event(5, 1, 3000, 5.0)).admitted);
  // Window (capacity 2) is full: overflow.
  EXPECT_EQ(filter.Observe(Event(6, 1, 4000, 5.0)).reason,
            QuarantineReason::kWindowOverflow);
}

TEST(AdmissionTest, ReleaseWindowReportsAndResetsDuplicates) {
  const RuleSet rules = TightRules();
  AdmissionFilter filter(&rules, 10'000, 100);
  EXPECT_TRUE(filter.Observe(Event(0, 1, 1000, 5.0)).admitted);
  EXPECT_FALSE(filter.Observe(Event(1, 1, 1000, 5.0)).admitted);
  EXPECT_FALSE(filter.Observe(Event(2, 1, 1000, 5.0)).admitted);
  EXPECT_EQ(filter.ReleaseWindow(1, 0), 2);
  EXPECT_EQ(filter.ReleaseWindow(1, 0), 0);  // state pruned
}

// --- online operators ---

TEST(OnlineKalmanTest, ConvergesToConstantSignal) {
  refine::OnlineKalman1D filter;
  refine::OnlineKalman1D::Estimate est;
  for (int i = 0; i < 50; ++i) {
    est = filter.Update(i * 1000, 42.0, 1.0);
  }
  EXPECT_NEAR(est.value, 42.0, 1e-6);
  EXPECT_LT(est.stddev, 1.0);  // tighter than one measurement
  EXPECT_GT(est.stddev, 0.0);
}

TEST(OnlineKalmanTest, TracksLinearTrend) {
  refine::OnlineKalman1D filter;
  refine::OnlineKalman1D::Estimate est;
  for (int i = 0; i < 100; ++i) {
    est = filter.Update(i * 1000, 0.5 * i, 1.0);
  }
  EXPECT_NEAR(est.value, 0.5 * 99, 0.5);
}

TEST(RollingRobustZTest, FlagsSpikesWithoutPoisoningBaseline) {
  Rng rng(7);
  outlier::RollingRobustZ detector;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(detector.Observe(10.0 + rng.Gaussian(0.0, 0.5)));
  }
  EXPECT_TRUE(detector.Observe(500.0));
  // The spike was not absorbed: the next spike is still flagged and the
  // next normal value is still an inlier.
  EXPECT_TRUE(detector.Observe(500.0));
  EXPECT_FALSE(detector.Observe(10.2));
}

TEST(RollingRobustZTest, WarmupAdmitsEverything) {
  outlier::RollingRobustZ detector;
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(detector.Observe(i % 2 == 0 ? 0.0 : 1000.0));
  }
}

TEST(PageHinkleyTest, DetectsMeanShiftAndIgnoresStationary) {
  outlier::PageHinkley stationary;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(stationary.Observe(5.0 + rng.Gaussian(0.0, 0.3)));
  }
  outlier::PageHinkley drifting;
  bool detected = false;
  for (int i = 0; i < 200; ++i) {
    const double value = 5.0 + (i >= 100 ? 8.0 : 0.0) + rng.Gaussian(0.0, 0.3);
    detected = drifting.Observe(value) || detected;
  }
  EXPECT_TRUE(detected);
}

// --- event log ---

StDataset SmallDataset() {
  StDataset data("pm25");
  for (SensorId sensor = 0; sensor < 3; ++sensor) {
    StSeries series(sensor, geometry::Point(100.0 * sensor, 50.0));
    for (int k = 0; k < 20; ++k) {
      EXPECT_TRUE(series.Append(k * 60'000, 10.0 + sensor + 0.1 * k).ok());
    }
    data.AddSeries(std::move(series));
  }
  return data;
}

TEST(EventLogTest, RecordArrivalsIsSeedDeterministic) {
  const StDataset data = SmallDataset();
  ArrivalOptions options;
  options.duplicate_probability = 0.1;
  Rng rng_a(99), rng_b(99), rng_c(100);
  const EventLog a = RecordArrivals(data, options, &rng_a);
  const EventLog b = RecordArrivals(data, options, &rng_b);
  const EventLog c = RecordArrivals(data, options, &rng_c);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].arrival_ms, b.events[i].arrival_ms);
    EXPECT_EQ(a.events[i].record.sensor, b.events[i].record.sensor);
    EXPECT_EQ(a.events[i].record.t, b.events[i].record.t);
  }
  // A different seed produces a different arrival order (with overwhelming
  // probability for 60 events).
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events[i].record.t != c.events[i].record.t ||
              a.events[i].arrival_ms != c.events[i].arrival_ms;
  }
  EXPECT_TRUE(differs);
}

TEST(EventLogTest, ArrivalOrderIsSortedAndSeqContiguous) {
  const StDataset data = SmallDataset();
  Rng rng(5);
  ArrivalOptions options;
  options.straggler_probability = 0.3;
  const EventLog log = RecordArrivals(data, options, &rng);
  ASSERT_EQ(log.size(), data.TotalRecords());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log.events[i].seq, i);
    if (i > 0) {
      EXPECT_GE(log.events[i].arrival_ms, log.events[i - 1].arrival_ms);
    }
  }
}

TEST(EventLogTest, FileRoundTripIsExact) {
  const StDataset data = SmallDataset();
  Rng rng(31);
  ArrivalOptions options;
  options.duplicate_probability = 0.2;
  const EventLog log = RecordArrivals(data, options, &rng);

  const std::string path = ::testing::TempDir() + "/stream_events.log";
  ASSERT_TRUE(WriteEventLogFile(log, path).ok());
  const StatusOr<EventLog> reread = ReadEventLogFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  ASSERT_EQ(reread->size(), log.size());
  EXPECT_EQ(reread->field_name, log.field_name);
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(reread->events[i].seq, log.events[i].seq);
    EXPECT_EQ(reread->events[i].arrival_ms, log.events[i].arrival_ms);
    EXPECT_EQ(reread->events[i].record.t, log.events[i].record.t);
    EXPECT_EQ(reread->events[i].record.value, log.events[i].record.value);
    EXPECT_EQ(reread->events[i].record.loc.x, log.events[i].record.loc.x);
  }
  // Rewriting the reread log reproduces the file byte-for-byte.
  const std::string path2 = ::testing::TempDir() + "/stream_events2.log";
  ASSERT_TRUE(WriteEventLogFile(*reread, path2).ok());
  const StatusOr<std::string> b1 =
      store::ReadFileToString(store::DefaultVfs(), path);
  const StatusOr<std::string> b2 =
      store::ReadFileToString(store::DefaultVfs(), path2);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(*b1, *b2);
}

TEST(EventLogTest, ReaderRejectsCorruptLogs) {
  const std::string path = ::testing::TempDir() + "/bad_events.log";
  const std::string header = "# sidq-event-log v1 field=x\n";
  EXPECT_FALSE(ReadEventLogFile(::testing::TempDir() + "/missing.log").ok());
  ASSERT_TRUE(
      obs::WriteTextFile(path, "# wrong header\n0 1 2 3 4 5 6 7\n").ok());
  EXPECT_EQ(ReadEventLogFile(path).status().code(),
            StatusCode::kInvalidArgument);
  // Interior garbling (complete file, bad content) is InvalidArgument, not
  // DataLoss: retrying recovery will not help.
  ASSERT_TRUE(obs::WriteTextFile(path, header +
                                           "5 1 0 0 0 1 1 0\n"
                                           "# sidq-event-log end count=1\n")
                  .ok());
  EXPECT_EQ(ReadEventLogFile(path).status().code(),
            StatusCode::kInvalidArgument);  // seq gap
  ASSERT_TRUE(obs::WriteTextFile(path, header +
                                           "0 1 0 0 0 1 1 0\n"
                                           "# sidq-event-log end count=7\n")
                  .ok());
  EXPECT_EQ(ReadEventLogFile(path).status().code(),
            StatusCode::kInvalidArgument);  // trailer count mismatch
  ASSERT_TRUE(obs::WriteTextFile(path, header +
                                           "# sidq-event-log end count=0\n"
                                           "0 1 0 0 0 1 1 0\n")
                  .ok());
  EXPECT_EQ(ReadEventLogFile(path).status().code(),
            StatusCode::kInvalidArgument);  // data after trailer
  ASSERT_TRUE(obs::WriteTextFile(path, header +
                                           "0 1 garbage 0 0 1 1 0\n"
                                           "# sidq-event-log end count=1\n")
                  .ok());
  EXPECT_EQ(ReadEventLogFile(path).status().code(),
            StatusCode::kInvalidArgument);  // unparseable interior line
}

TEST(EventLogTest, TruncationSweepReportsTornTail) {
  // Every strict byte prefix of a valid log must be rejected, and every
  // prefix that still has an intact header must be reason-coded as a torn
  // tail (DataLoss) rather than generic corruption -- truncation at a line
  // boundary included, which without the trailer would read as clean EOF.
  const StDataset data = SmallDataset();
  Rng rng(17);
  ArrivalOptions options;
  const EventLog log = RecordArrivals(data, options, &rng);
  ASSERT_GT(log.size(), 2u);

  const std::string path = ::testing::TempDir() + "/sweep_events.log";
  ASSERT_TRUE(WriteEventLogFile(log, path).ok());
  const StatusOr<std::string> full =
      store::ReadFileToString(store::DefaultVfs(), path);
  ASSERT_TRUE(full.ok());

  obs::MetricsRegistry registry;
  const std::string cut_path = ::testing::TempDir() + "/sweep_events_cut.log";
  int64_t torn = 0;
  for (size_t len = 0; len < full->size(); ++len) {
    ASSERT_TRUE(obs::WriteTextFile(cut_path, full->substr(0, len)).ok());
    const StatusOr<EventLog> got = ReadEventLogFile(cut_path, &registry);
    ASSERT_FALSE(got.ok()) << "prefix of " << len << " bytes parsed as valid";
    if (len == 0) {
      EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    EXPECT_EQ(got.status().code(), StatusCode::kDataLoss)
        << "len=" << len << ": " << got.status();
    EXPECT_NE(got.status().message().find("torn tail"), std::string::npos)
        << got.status();
    ++torn;
  }
  int64_t counted = 0;
  for (const obs::CounterValue& c : registry.Snapshot().counters) {
    if (c.name == "stream.log.torn_tail") counted = c.value;
  }
  EXPECT_GT(torn, 0);
  EXPECT_EQ(counted, torn);

  // The untruncated file still reads back cleanly and the sweep never
  // counted it.
  EXPECT_TRUE(ReadEventLogFile(path, &registry).ok());
  for (const obs::CounterValue& c : registry.Snapshot().counters) {
    if (c.name == "stream.log.torn_tail") {
      EXPECT_EQ(c.value, torn);
    }
  }
}

// --- engine semantics ---

StreamConfig TestConfig() {
  StreamConfig config;
  config.rules = TightRules();
  config.window_ms = 10'000;
  config.window_capacity = 64;
  // Keep the outlier gate quiet unless a test wants it.
  config.robust_z.z_threshold = 50.0;
  return config;
}

TEST_F(StreamTest, WatermarkClosesWindowsInEventTimeOrder) {
  StreamEngine engine(TestConfig());
  // Two windows of sensor 1; the second window's data closes the first
  // once the watermark (max_t - 5000) passes its end.
  ASSERT_TRUE(engine.Push(Event(0, 1, 1000, 5.0)).ok());
  ASSERT_TRUE(engine.Push(Event(1, 1, 9000, 6.0)).ok());
  ASSERT_TRUE(engine.Push(Event(2, 1, 14'000, 7.0)).ok());  // watermark 9000
  ASSERT_TRUE(engine.Push(Event(3, 1, 16'000, 8.0)).ok());  // watermark 11000
  ASSERT_TRUE(engine.Flush().ok());
  const StreamOutput out = engine.TakeOutput();
  ASSERT_EQ(out.kpis.size(), 2u);
  EXPECT_EQ(out.kpis[0].window_start, 0);
  EXPECT_EQ(out.kpis[0].count, 2);
  EXPECT_EQ(out.kpis[1].window_start, 10'000);
  EXPECT_EQ(out.kpis[1].count, 2);
  EXPECT_TRUE(out.ledger.empty());
  ASSERT_EQ(out.sensors.size(), 1u);
  EXPECT_EQ(out.sensors[0].admitted, 4);
  EXPECT_EQ(out.sensors[0].windows_closed, 2);
  EXPECT_EQ(out.sensors[0].watermark, 11'000);
}

TEST_F(StreamTest, LateRecordsLandInQuarantineNotOutput) {
  StreamEngine engine(TestConfig());
  ASSERT_TRUE(engine.Push(Event(0, 1, 20'000, 5.0)).ok());
  ASSERT_TRUE(engine.Push(Event(1, 1, 2000, 9.0)).ok());  // late: wm 15000
  ASSERT_TRUE(engine.Flush().ok());
  const StreamOutput out = engine.TakeOutput();
  ASSERT_EQ(out.ledger.size(), 1u);
  EXPECT_EQ(out.ledger.entries()[0].seq, 1u);
  EXPECT_EQ(out.ledger.entries()[0].reason, QuarantineReason::kLate);
  EXPECT_EQ(out.cleaned.TotalRecords(), 1u);
}

TEST_F(StreamTest, WindowedKpisMeasureTheDimensions) {
  StreamConfig config = TestConfig();
  config.thresholds.min_completeness = 0.9;
  config.thresholds.max_gap_ms = 4000;
  StreamEngine engine(config);
  // 5 of 10 expected records (interval 1000, window 10000), one duplicate
  // delivery, a 5-second hole, and one rate violation (rule rate default
  // 1e30 -> none). Completeness 0.5 and the gap trip two alerts.
  ASSERT_TRUE(engine.Push(Event(0, 1, 1000, 5.0)).ok());
  ASSERT_TRUE(engine.Push(Event(1, 1, 2000, 5.1)).ok());
  ASSERT_TRUE(engine.Push(Event(2, 1, 2000, 5.1)).ok());  // duplicate
  ASSERT_TRUE(engine.Push(Event(3, 1, 3000, 5.2)).ok());
  ASSERT_TRUE(engine.Push(Event(4, 1, 8000, 5.3)).ok());
  ASSERT_TRUE(engine.Push(Event(5, 1, 9000, 5.4)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  const StreamOutput out = engine.TakeOutput();
  ASSERT_EQ(out.kpis.size(), 1u);
  const WindowKpis& kpis = out.kpis[0];
  EXPECT_EQ(kpis.count, 5);
  EXPECT_EQ(kpis.duplicates, 1);
  EXPECT_DOUBLE_EQ(kpis.completeness, 0.5);
  EXPECT_DOUBLE_EQ(kpis.redundancy, 1.0 / 6.0);
  EXPECT_EQ(kpis.max_gap_ms, 5000);
  // Canonical alert order sorts by dimension enum value within a window.
  ASSERT_EQ(out.alerts.size(), 2u);
  EXPECT_EQ(out.alerts[0].dimension, DqDimension::kTimeSparsity);
  EXPECT_EQ(out.alerts[1].dimension, DqDimension::kCompleteness);
}

TEST_F(StreamTest, OnlineOutlierGateQuarantinesSpikes) {
  StreamConfig config = TestConfig();
  config.robust_z.z_threshold = 3.5;
  config.robust_z.min_samples = 8;
  config.rules.set_default_rule([] {
    SensorRule rule;
    rule.min_value = -1000.0;
    rule.max_value = 1000.0;
    rule.expected_interval_ms = 1000;
    rule.max_lateness_ms = 5000;
    return rule;
  }());
  StreamEngine engine(config);
  uint64_t seq = 0;
  for (int k = 0; k < 20; ++k) {
    const double value = k == 15 ? 900.0 : 10.0 + 0.01 * k;
    ASSERT_TRUE(engine.Push(Event(seq++, 1, k * 1000, value)).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  const StreamOutput out = engine.TakeOutput();
  ASSERT_EQ(out.ledger.size(), 1u);
  EXPECT_EQ(out.ledger.entries()[0].reason, QuarantineReason::kOutlier);
  EXPECT_EQ(out.ledger.entries()[0].seq, 15u);
  EXPECT_EQ(out.cleaned.TotalRecords(), 19u);
}

TEST_F(StreamTest, MetricsCountTheStream) {
  obs::MetricsRegistry registry;
  obs::ObsSinks sinks;
  sinks.metrics = &registry;
  StreamEngine engine(TestConfig(), sinks);
  ASSERT_TRUE(engine.Push(Event(0, 1, 20'000, 5.0)).ok());
  ASSERT_TRUE(engine.Push(Event(1, 1, 2000, 9.0)).ok());   // late
  ASSERT_TRUE(engine.Push(Event(2, 1, 21'000, 999.0)).ok());  // range
  ASSERT_TRUE(engine.Flush().ok());
  const StreamOutput drained = engine.TakeOutput();
  EXPECT_EQ(drained.ingested, 3);
  int64_t ingested = 0, late = 0, quarantined = 0, windows = 0;
  for (const obs::CounterValue& c : registry.Snapshot().counters) {
    if (c.name == "stream.ingested") ingested = c.value;
    if (c.name == "stream.late") late = c.value;
    if (c.name == "stream.quarantined") quarantined = c.value;
    if (c.name == "stream.windows.closed") windows = c.value;
  }
  EXPECT_EQ(ingested, 3);
  EXPECT_EQ(late, 1);
  EXPECT_EQ(quarantined, 2);
  EXPECT_EQ(windows, 1);
}

// --- chaos sites ---

TEST_F(StreamTest, TransientIngestFaultsAreAbsorbedByRetries) {
  const StDataset data = SmallDataset();
  Rng rng(3);
  const EventLog log = RecordArrivals(data, ArrivalOptions{}, &rng);
  const StreamConfig config = TestConfig();

  StreamEngine clean_engine(config);
  ASSERT_TRUE(ReplayInto(&clean_engine, log).ok());
  const std::string clean_json = StreamOutputToJson(clean_engine.TakeOutput());

  FailPointConfig transient;
  transient.action = FailPointAction::kTransientError;
  transient.fail_first_n = 2;  // within the engine's retry budget (3)
  ArmFailPoint(std::string(kIngestFailPoint), transient);
  ArmFailPoint(std::string(kWindowCloseFailPoint), transient);
  StreamEngine chaos_engine(config);
  ASSERT_TRUE(ReplayInto(&chaos_engine, log).ok());
  DisarmAllFailPoints();
  EXPECT_EQ(StreamOutputToJson(chaos_engine.TakeOutput()), clean_json);
}

TEST_F(StreamTest, PermanentIngestFaultQuarantinesTheRecord) {
  FailPointConfig permanent;
  permanent.action = FailPointAction::kPermanentError;
  permanent.fail_first_n = 1;
  ArmFailPoint(std::string(kIngestFailPoint), permanent);
  StreamEngine engine(TestConfig());
  ASSERT_TRUE(engine.Push(Event(0, 1, 1000, 5.0)).ok());  // injected
  ASSERT_TRUE(engine.Push(Event(1, 1, 2000, 6.0)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  DisarmAllFailPoints();
  const StreamOutput out = engine.TakeOutput();
  ASSERT_EQ(out.ledger.size(), 1u);
  EXPECT_EQ(out.ledger.entries()[0].seq, 0u);
  EXPECT_EQ(out.ledger.entries()[0].reason, QuarantineReason::kIngestFault);
  EXPECT_EQ(out.cleaned.TotalRecords(), 1u);
}

TEST_F(StreamTest, CorruptedIngestIsCaughtByTheRangeRule) {
  FailPointConfig corrupt;
  corrupt.action = FailPointAction::kCorrupt;
  corrupt.fail_first_n = 1;
  ArmFailPoint(std::string(kIngestFailPoint), corrupt);
  StreamEngine engine(TestConfig());
  ASSERT_TRUE(engine.Push(Event(0, 1, 1000, 5.0)).ok());  // corrupted
  ASSERT_TRUE(engine.Flush().ok());
  DisarmAllFailPoints();
  const StreamOutput out = engine.TakeOutput();
  ASSERT_EQ(out.ledger.size(), 1u);
  EXPECT_EQ(out.ledger.entries()[0].reason, QuarantineReason::kOutOfRange);
}

TEST_F(StreamTest, PermanentWindowFaultQuarantinesTheWindow) {
  FailPointConfig permanent;
  permanent.action = FailPointAction::kPermanentError;
  permanent.fail_first_n = 1;
  ArmFailPoint(std::string(kWindowCloseFailPoint), permanent);
  StreamEngine engine(TestConfig());
  ASSERT_TRUE(engine.Push(Event(0, 1, 1000, 5.0)).ok());
  ASSERT_TRUE(engine.Push(Event(1, 1, 2000, 6.0)).ok());
  ASSERT_TRUE(engine.Push(Event(2, 1, 14'000, 7.0)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  DisarmAllFailPoints();
  const StreamOutput out = engine.TakeOutput();
  // Window [0, 10000) lost both records; the second window processed.
  ASSERT_EQ(out.ledger.size(), 2u);
  EXPECT_EQ(out.ledger.entries()[0].reason, QuarantineReason::kWindowFault);
  EXPECT_EQ(out.ledger.entries()[1].reason, QuarantineReason::kWindowFault);
  ASSERT_EQ(out.kpis.size(), 1u);
  EXPECT_EQ(out.kpis[0].window_start, 10'000);
  EXPECT_EQ(out.cleaned.TotalRecords(), 1u);
}

TEST_F(StreamTest, CancellationStopsIngestionCooperatively) {
  std::atomic<bool> cancel{false};
  VirtualClock clock(0);
  const ExecContext ctx(&clock, &cancel);
  StreamEngine engine(TestConfig(), {}, &clock, &ctx);
  ASSERT_TRUE(engine.Push(Event(0, 1, 1000, 5.0)).ok());
  cancel.store(true);
  const Status s = engine.Push(Event(1, 1, 2000, 6.0));
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace stream
}  // namespace sidq

// Dispatch equivalence tests: every ISA tier that is compiled in and
// runnable on this host must produce BIT-IDENTICAL output to the scalar
// oracle tier for every dispatched primitive -- including NaN, +/-Inf,
// signed-zero, and empty inputs -- and SIDQ_FORCE_ISA must pin (or clamp)
// the active tier. "Identical" here means memcmp over the raw double bits,
// not approximate equality: the dispatch choice may change speed, never a
// single bit of output.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/random.h"
#include "kernels/dispatch.h"

namespace sidq {
namespace kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

uint64_t Fnv1a(const void* data, size_t bytes,
               uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<Isa> CompiledTiers() {
  std::vector<Isa> out;
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (KernelDispatch::Table(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

// Random column with IEEE special values sprinkled in: NaN, +/-Inf, and a
// negative zero. Specials exercise the ordered-compare and min/max paths
// where a vectorized tier could legally diverge if it used the wrong
// predicate.
std::vector<double> Column(Rng* rng, size_t n, bool specials) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(-1000.0, 1000.0);
  if (specials && n > 0) {
    const auto at = [&] {
      return static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1));
    };
    v[at()] = kNan;
    v[at()] = kInf;
    v[at()] = -kInf;
    v[at()] = -0.0;
  }
  return v;
}

void ExpectBytesEqual(const std::vector<double>& ref,
                      const std::vector<double>& got, Isa isa,
                      const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  if (ref.empty()) return;  // empty vectors may hand memcmp a null pointer
  EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                           ref.size() * sizeof(double)))
      << what << " diverges from scalar on tier " << IsaName(isa);
}

// Restores the dispatch state (env + resolved table) no matter how a test
// exits, so tier-forcing tests cannot leak into later tests.
class ForceIsaGuard {
 public:
  ForceIsaGuard() {
    const char* v = std::getenv("SIDQ_FORCE_ISA");
    if (v != nullptr) saved_ = v;
    had_ = v != nullptr;
  }
  ~ForceIsaGuard() {
    if (had_) {
      setenv("SIDQ_FORCE_ISA", saved_.c_str(), 1);
    } else {
      unsetenv("SIDQ_FORCE_ISA");
    }
    KernelDispatch::ReinitForTest();
  }

 private:
  std::string saved_;
  bool had_ = false;
};

// ------------------------------------------------ per-primitive identity

TEST(KernelDispatchTest, ScalarTierAlwaysAvailable) {
  EXPECT_TRUE(KernelDispatch::Available(Isa::kScalar));
  ASSERT_NE(KernelDispatch::Table(Isa::kScalar), nullptr);
  EXPECT_EQ(KernelDispatch::Table(Isa::kScalar)->isa, Isa::kScalar);
  // SSE2 is the x86-64 baseline build; it is always compiled.
  EXPECT_TRUE(KernelDispatch::Available(Isa::kSse2));
  EXPECT_EQ(KernelDispatch::Get().isa, KernelDispatch::Active());
}

TEST(KernelDispatchTest, PairwiseSqDistMatchesScalarOnEveryTier) {
  const KernelOps& ref = *KernelDispatch::Table(Isa::kScalar);
  Rng rng(11);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{33}}) {
    for (size_t m : {size_t{0}, size_t{1}, size_t{7}, size_t{64}}) {
      const auto ax = Column(&rng, n, true);
      const auto ay = Column(&rng, n, true);
      const auto bx = Column(&rng, m, true);
      const auto by = Column(&rng, m, true);
      std::vector<double> want(n * m, -7.0);
      ref.pairwise_sq_dist(ax.data(), ay.data(), n, bx.data(), by.data(), m,
                           want.data());
      for (Isa isa : CompiledTiers()) {
        std::vector<double> got(n * m, -7.0);
        KernelDispatch::Table(isa)->pairwise_sq_dist(
            ax.data(), ay.data(), n, bx.data(), by.data(), m, got.data());
        ExpectBytesEqual(want, got, isa, "pairwise_sq_dist");
      }
    }
  }
}

TEST(KernelDispatchTest, RowAndColumnPrimitivesMatchScalarOnEveryTier) {
  const KernelOps& ref = *KernelDispatch::Table(Isa::kScalar);
  Rng rng_store(12);
  Rng* rng = &rng_store;
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{9}, size_t{65}}) {
    const auto xs = Column(rng, n, true);
    const auto ys = Column(rng, n, true);
    const double px = rng->Uniform(-100.0, 100.0), py = -0.0;
    const size_t lo =
        n == 0 ? 0
               : static_cast<size_t>(
                     rng->UniformInt(0, static_cast<int64_t>(n) - 1));
    const size_t hi =
        n == 0 ? 0
               : static_cast<size_t>(rng->UniformInt(
                     static_cast<int64_t>(lo), static_cast<int64_t>(n)));

    std::vector<double> want_row(n, -7.0), want_many(n, -7.0);
    std::vector<double> want_consec(n > 1 ? n - 1 : 0, -7.0);
    ref.dist_row(px, py, xs.data(), ys.data(), lo, hi, want_row.data());
    ref.point_to_many_dist(px, py, xs.data(), ys.data(), n, want_many.data());
    ref.consecutive_dist(xs.data(), ys.data(), n, want_consec.data());
    const double want_poly =
        ref.point_to_polyline_dist(px, py, xs.data(), ys.data(), n);

    for (Isa isa : CompiledTiers()) {
      const KernelOps& ops = *KernelDispatch::Table(isa);
      std::vector<double> row(n, -7.0), many(n, -7.0);
      std::vector<double> consec(n > 1 ? n - 1 : 0, -7.0);
      ops.dist_row(px, py, xs.data(), ys.data(), lo, hi, row.data());
      ops.point_to_many_dist(px, py, xs.data(), ys.data(), n, many.data());
      ops.consecutive_dist(xs.data(), ys.data(), n, consec.data());
      const double poly =
          ops.point_to_polyline_dist(px, py, xs.data(), ys.data(), n);
      ExpectBytesEqual(want_row, row, isa, "dist_row");
      ExpectBytesEqual(want_many, many, isa, "point_to_many_dist");
      ExpectBytesEqual(want_consec, consec, isa, "consecutive_dist");
      EXPECT_EQ(0, std::memcmp(&want_poly, &poly, sizeof(double)))
          << "point_to_polyline_dist diverges on tier " << IsaName(isa);
    }
  }
}

TEST(KernelDispatchTest, DtwRowMatchesScalarAndFusedEqualsTwoPass) {
  const KernelOps& ref = *KernelDispatch::Table(Isa::kScalar);
  Rng rng_store(13);
  Rng* rng = &rng_store;
  // Widths straddle kDtwTwoPassMinWidth (16) so both the fused and the
  // two-pass body run; scratch == nullptr forces the fused form, which
  // must be bit-identical to the two-pass form on every tier.
  for (size_t m : {size_t{1}, size_t{5}, size_t{16}, size_t{48}}) {
    const auto bx = Column(rng, m, true);
    const auto by = Column(rng, m, true);
    std::vector<double> prev(m + 1);
    for (double& p : prev) {
      p = rng->Bernoulli(0.3) ? kInf : rng->Uniform(0.0, 500.0);
    }
    const double qx = rng->Uniform(-100.0, 100.0);
    const double qy = rng->Uniform(-100.0, 100.0);
    const size_t lo = static_cast<size_t>(
        rng->UniformInt(1, static_cast<int64_t>(m)));
    const size_t hi = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(lo), static_cast<int64_t>(m)));
    std::vector<double> want(m + 1, -7.0), scratch(m, -7.0);
    ref.dtw_row(qx, qy, bx.data(), by.data(), m, lo, hi, prev.data(),
                want.data(), scratch.data());
    for (Isa isa : CompiledTiers()) {
      const KernelOps& ops = *KernelDispatch::Table(isa);
      std::vector<double> got(m + 1, -7.0), s2(m, -7.0);
      ops.dtw_row(qx, qy, bx.data(), by.data(), m, lo, hi, prev.data(),
                  got.data(), s2.data());
      ExpectBytesEqual(want, got, isa, "dtw_row(two-pass)");
      std::vector<double> fused(m + 1, -7.0);
      ops.dtw_row(qx, qy, bx.data(), by.data(), m, lo, hi, prev.data(),
                  fused.data(), nullptr);
      ExpectBytesEqual(want, fused, isa, "dtw_row(fused)");
    }
  }
}

TEST(KernelDispatchTest, FrechetRowMatchesScalarOnEveryTier) {
  const KernelOps& ref = *KernelDispatch::Table(Isa::kScalar);
  Rng rng_store(14);
  Rng* rng = &rng_store;
  for (size_t m : {size_t{1}, size_t{2}, size_t{17}, size_t{64}}) {
    const auto bx = Column(rng, m, true);
    const auto by = Column(rng, m, true);
    std::vector<double> prev(m);
    for (double& p : prev) {
      p = rng->Bernoulli(0.2) ? kInf : rng->Uniform(0.0, 800.0);
    }
    const double qx = rng->Uniform(-100.0, 100.0);
    const double qy = rng->Uniform(-100.0, 100.0);
    std::vector<double> want(m, -7.0), scratch(m, -7.0);
    ref.frechet_row(qx, qy, bx.data(), by.data(), m, prev.data(), want.data(),
                    scratch.data());
    for (Isa isa : CompiledTiers()) {
      std::vector<double> got(m, -7.0), s2(m, -7.0);
      KernelDispatch::Table(isa)->frechet_row(qx, qy, bx.data(), by.data(), m,
                                              prev.data(), got.data(),
                                              s2.data());
      ExpectBytesEqual(want, got, isa, "frechet_row");
    }
  }
}

TEST(KernelDispatchTest, FrechetFullMatchesRowIterationOnEveryTier) {
  // Two properties at once: the wavefront form equals the row-kernel
  // composition (row 0 = prefix max of dist_row, then frechet_row per row)
  // on the scalar tier, and every tier's wavefront equals the scalar
  // wavefront -- so the anti-diagonal schedule changes no bits anywhere.
  const KernelOps& ref = *KernelDispatch::Table(Isa::kScalar);
  Rng rng_store(16);
  Rng* rng = &rng_store;
  for (size_t n : {size_t{1}, size_t{2}, size_t{7}, size_t{33}}) {
    for (size_t m : {size_t{1}, size_t{5}, size_t{31}, size_t{64}}) {
      const auto ax = Column(rng, n, true);
      const auto ay = Column(rng, n, true);
      const auto bx = Column(rng, m, true);
      const auto by = Column(rng, m, true);
      // Row-kernel composition on the scalar tier.
      std::vector<double> prev(m), cur(m), dist(m);
      ref.dist_row(ax[0], ay[0], bx.data(), by.data(), 0, m, dist.data());
      prev[0] = dist[0];
      for (size_t j = 1; j < m; ++j) {
        prev[j] = std::max(prev[j - 1], dist[j]);
      }
      for (size_t i = 1; i < n; ++i) {
        ref.frechet_row(ax[i], ay[i], bx.data(), by.data(), m, prev.data(),
                        cur.data(), dist.data());
        std::swap(prev, cur);
      }
      const double want = prev[m - 1];
      for (Isa isa : CompiledTiers()) {
        std::vector<double> scratch(3 * m, -7.0);
        const double got = KernelDispatch::Table(isa)->frechet_full(
            ax.data(), ay.data(), n, bx.data(), by.data(), m, scratch.data());
        EXPECT_EQ(0, std::memcmp(&want, &got, sizeof(double)))
            << "frechet_full (n=" << n << ", m=" << m
            << ") diverges from the row iteration on tier " << IsaName(isa);
      }
    }
  }
}

TEST(KernelDispatchTest, LeafScanMatchesScalarOnEveryTier) {
  const KernelOps& ref = *KernelDispatch::Table(Isa::kScalar);
  Rng rng_store(15);
  Rng* rng = &rng_store;
  // Counts cover the AVX-512 full-lane and masked-tail paths plus the
  // kMaxEntriesCap-sized worst case of the portable compaction buffer.
  for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{63}, size_t{64}, size_t{256}}) {
    std::vector<double> min_x(count), min_y(count), max_x(count), max_y(count);
    std::vector<uint64_t> ids(count);
    for (size_t j = 0; j < count; ++j) {
      const double cx = rng->Uniform(-100.0, 100.0);
      const double cy = rng->Uniform(-100.0, 100.0);
      const double w = rng->Uniform(0.0, 20.0), h = rng->Uniform(0.0, 20.0);
      min_x[j] = cx - w;
      max_x[j] = cx + w;
      min_y[j] = cy - h;
      max_y[j] = cy + h;
      ids[j] = j * 3 + 1;
      if (rng->Bernoulli(0.05)) min_x[j] = kNan;  // never a hit, every tier
    }
    const double qx = rng->Uniform(-80.0, 80.0);
    const double qy = rng->Uniform(-80.0, 80.0);
    std::vector<uint64_t> want(count + 1, ~uint64_t{0});
    const size_t want_n =
        ref.leaf_scan(min_x.data(), min_y.data(), max_x.data(), max_y.data(),
                      ids.data(), count, qx - 30.0, qy - 30.0, qx + 30.0,
                      qy + 30.0, want.data());
    for (Isa isa : CompiledTiers()) {
      std::vector<uint64_t> got(count + 1, ~uint64_t{0});
      const size_t got_n = KernelDispatch::Table(isa)->leaf_scan(
          min_x.data(), min_y.data(), max_x.data(), max_y.data(), ids.data(),
          count, qx - 30.0, qy - 30.0, qx + 30.0, qy + 30.0, got.data());
      EXPECT_EQ(want_n, got_n) << "leaf_scan count on " << IsaName(isa);
      EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                               want_n * sizeof(uint64_t)))
          << "leaf_scan ids diverge on tier " << IsaName(isa);
    }
  }
}

// One checksum over a long randomized mixed workload per tier: the
// compressed form of the property above, and the number run_all.sh's
// forced-scalar gate compares at the bench level.
TEST(KernelDispatchTest, WorkloadChecksumIdenticalAcrossTiers) {
  const auto run = [](const KernelOps& ops) {
    Rng rng_store(99);
    Rng* rng = &rng_store;
    uint64_t h = 1469598103934665603ull;
    for (int trial = 0; trial < 20; ++trial) {
      const size_t n = static_cast<size_t>(rng->UniformInt(1, 96));
      const auto xs = Column(rng, n, trial % 2 == 0);
      const auto ys = Column(rng, n, trial % 3 == 0);
      std::vector<double> out(n * n);
      ops.pairwise_sq_dist(xs.data(), ys.data(), n, xs.data(), ys.data(), n,
                           out.data());
      h = Fnv1a(out.data(), out.size() * sizeof(double), h);
      ops.point_to_many_dist(xs[0], ys[0], xs.data(), ys.data(), n,
                             out.data());
      h = Fnv1a(out.data(), n * sizeof(double), h);
      const double poly =
          ops.point_to_polyline_dist(ys[0], xs[0], xs.data(), ys.data(), n);
      h = Fnv1a(&poly, sizeof(double), h);
    }
    return h;
  };
  const uint64_t want = run(*KernelDispatch::Table(Isa::kScalar));
  for (Isa isa : CompiledTiers()) {
    EXPECT_EQ(want, run(*KernelDispatch::Table(isa)))
        << "workload checksum diverges on tier " << IsaName(isa);
  }
}

// -------------------------------------------------- SIDQ_FORCE_ISA knob

TEST(KernelDispatchTest, ForceIsaPinsEveryAvailableTier) {
  ForceIsaGuard guard;
  for (Isa isa : CompiledTiers()) {
    setenv("SIDQ_FORCE_ISA", IsaName(isa), 1);
    KernelDispatch::ReinitForTest();
    EXPECT_EQ(KernelDispatch::Active(), isa) << "forcing " << IsaName(isa);
    EXPECT_EQ(KernelDispatch::Get().isa, isa);
  }
  unsetenv("SIDQ_FORCE_ISA");
  KernelDispatch::ReinitForTest();
  EXPECT_EQ(KernelDispatch::Active(), KernelDispatch::Best());
}

TEST(KernelDispatchTest, UnknownForceValueFallsBackToBest) {
  ForceIsaGuard guard;
  setenv("SIDQ_FORCE_ISA", "pentium-pro", 1);
  KernelDispatch::ReinitForTest();
  EXPECT_EQ(KernelDispatch::Active(), KernelDispatch::Best());
}

TEST(KernelDispatchTest, UnavailableForceClampsDownNotUp) {
  ForceIsaGuard guard;
  // Forcing the widest tier must never resolve to something wider than the
  // host supports: exactly avx512 when available, else the best tier at or
  // below it (which is Best(), since avx512 is the widest).
  setenv("SIDQ_FORCE_ISA", "avx512", 1);
  KernelDispatch::ReinitForTest();
  if (KernelDispatch::Available(Isa::kAvx512)) {
    EXPECT_EQ(KernelDispatch::Active(), Isa::kAvx512);
  } else {
    EXPECT_EQ(KernelDispatch::Active(), KernelDispatch::Best());
  }
  // Forcing scalar always lands exactly on scalar.
  setenv("SIDQ_FORCE_ISA", "scalar", 1);
  KernelDispatch::ReinitForTest();
  EXPECT_EQ(KernelDispatch::Active(), Isa::kScalar);
}

TEST(KernelDispatchTest, IsaNamesRoundTrip) {
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kSse2), "sse2");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
  EXPECT_STREQ(IsaName(Isa::kAvx512), "avx512");
}

}  // namespace
}  // namespace kernels
}  // namespace sidq

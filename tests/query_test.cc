#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/random.h"
#include "query/continuous.h"
#include "query/partition.h"
#include "query/uncertain_point.h"
#include "query/uncertain_trajectory.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace query {
namespace {

using geometry::BBox;
using geometry::Point;

// ---------------------------------------------------------- UncertainPoint

TEST(UncertainPointTest, GaussianProbInBox) {
  const auto p = UncertainPoint::MakeGaussian(1, Point(0, 0), 10.0);
  // Whole plane ~ 1.
  EXPECT_NEAR(p.ProbInBox(BBox(-1000, -1000, 1000, 1000)), 1.0, 1e-9);
  // Half plane (x >= 0) ~ 0.5.
  EXPECT_NEAR(p.ProbInBox(BBox(0, -1000, 1000, 1000)), 0.5, 1e-6);
  // Quadrant ~ 0.25.
  EXPECT_NEAR(p.ProbInBox(BBox(0, 0, 1000, 1000)), 0.25, 1e-6);
  // Far away ~ 0.
  EXPECT_LT(p.ProbInBox(BBox(100, 100, 200, 200)), 1e-9);
}

TEST(UncertainPointTest, DiscreteProbInBox) {
  auto p = UncertainPoint::MakeDiscrete(
      2, {{Point(0, 0), 2.0}, {Point(10, 0), 1.0}, {Point(20, 0), 1.0}});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->ProbInBox(BBox(-1, -1, 1, 1)), 0.5, 1e-12);
  EXPECT_NEAR(p->ProbInBox(BBox(5, -1, 25, 1)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(p->ProbInBox(BBox(100, 100, 101, 101)), 0.0);
}

TEST(UncertainPointTest, DiscreteValidation) {
  EXPECT_FALSE(UncertainPoint::MakeDiscrete(1, {}).ok());
  EXPECT_FALSE(
      UncertainPoint::MakeDiscrete(1, {{Point(0, 0), -1.0}}).ok());
  EXPECT_FALSE(UncertainPoint::MakeDiscrete(1, {{Point(0, 0), 0.0}}).ok());
}

TEST(UncertainPointTest, ExpectedDistanceGaussianMatchesMonteCarlo) {
  Rng rng(1);
  const double sigma = 8.0;
  const auto p = UncertainPoint::MakeGaussian(1, Point(50, 0), sigma);
  for (const Point q : {Point(50, 0), Point(60, 0), Point(50, 30),
                        Point(200, 0)}) {
    double mc = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      const Point sample(50 + rng.Gaussian(0, sigma),
                         rng.Gaussian(0, sigma));
      mc += geometry::Distance(sample, q);
    }
    mc /= n;
    EXPECT_NEAR(p.ExpectedDistance(q), mc, mc * 0.02 + 0.05)
        << "q=(" << q.x << "," << q.y << ")";
  }
}

TEST(UncertainPointTest, ExpectedDistanceDiscrete) {
  auto p = UncertainPoint::MakeDiscrete(
      1, {{Point(0, 0), 1.0}, {Point(10, 0), 1.0}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->ExpectedDistance(Point(0, 0)), 5.0);
}

TEST(UncertainPointTest, BoundingRegion) {
  const auto g = UncertainPoint::MakeGaussian(1, Point(0, 0), 10.0);
  const BBox region = g.BoundingRegion(3.0);
  EXPECT_DOUBLE_EQ(region.min_x, -30.0);
  EXPECT_DOUBLE_EQ(region.max_y, 30.0);
  auto d = UncertainPoint::MakeDiscrete(
      2, {{Point(-5, 0), 1.0}, {Point(7, 3), 1.0}});
  ASSERT_TRUE(d.ok());
  const BBox db = d->BoundingRegion();
  EXPECT_DOUBLE_EQ(db.min_x, -5.0);
  EXPECT_DOUBLE_EQ(db.max_x, 7.0);
}

// ------------------------------------------------- ProbabilisticRangeQuery

std::vector<UncertainPoint> RandomObjects(size_t n, double extent,
                                          double sigma, uint64_t seed) {
  Rng rng(seed);
  std::vector<UncertainPoint> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(UncertainPoint::MakeGaussian(
        i, Point(rng.Uniform(0, extent), rng.Uniform(0, extent)), sigma));
  }
  return out;
}

TEST(ProbRangeTest, MatchesExhaustiveEvaluation) {
  const auto objects = RandomObjects(300, 2000.0, 20.0, 2);
  const BBox box(400, 400, 900, 1100);
  for (double tau : {0.1, 0.5, 0.9}) {
    PruningStats stats;
    auto got = ProbabilisticRangeQuery(objects, box, tau, &stats);
    std::vector<ObjectId> want;
    for (const auto& obj : objects) {
      if (obj.ProbInBox(box) >= tau) want.push_back(obj.id());
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "tau=" << tau;
    EXPECT_EQ(stats.total_objects, objects.size());
    // Pruning must have skipped a decent share of exact evaluations.
    EXPECT_GT(stats.PrunedFraction(), 0.5);
  }
}

TEST(ProbRangeTest, EmptyBoxNoResults) {
  const auto objects = RandomObjects(10, 100.0, 5.0, 3);
  EXPECT_TRUE(
      ProbabilisticRangeQuery(objects, BBox(), 0.5).empty());
}

// The batched form shares one R-tree walk across all boxes but must be
// indistinguishable from running the solo query per box: identical id
// sequences AND identical pruning statistics.
TEST(ProbRangeTest, BatchedManyMatchesSoloPerBox) {
  const auto objects = RandomObjects(300, 2000.0, 20.0, 12);
  Rng rng(13);
  std::vector<BBox> boxes;
  for (int i = 0; i < 25; ++i) {
    const double x = rng.Uniform(0, 1800), y = rng.Uniform(0, 1800);
    boxes.emplace_back(x, y, x + rng.Uniform(10, 400),
                       y + rng.Uniform(10, 400));
  }
  boxes.push_back(BBox());                          // empty box
  boxes.emplace_back(-1e6, -1e6, 1e6, 1e6);         // contains everything
  for (double tau : {0.1, 0.5, 0.9, 1.0}) {
    std::vector<PruningStats> batch_stats;
    const auto batch =
        ProbabilisticRangeQueryMany(objects, boxes, tau, &batch_stats);
    ASSERT_EQ(batch.size(), boxes.size());
    ASSERT_EQ(batch_stats.size(), boxes.size());
    for (size_t q = 0; q < boxes.size(); ++q) {
      PruningStats solo_stats;
      const auto solo =
          ProbabilisticRangeQuery(objects, boxes[q], tau, &solo_stats);
      EXPECT_EQ(batch[q], solo) << "box " << q << " tau " << tau;
      EXPECT_EQ(batch_stats[q].total_objects, solo_stats.total_objects);
      EXPECT_EQ(batch_stats[q].pruned_out, solo_stats.pruned_out);
      EXPECT_EQ(batch_stats[q].accepted_cheap, solo_stats.accepted_cheap);
      EXPECT_EQ(batch_stats[q].evaluated_exact, solo_stats.evaluated_exact);
    }
  }
}

TEST(ProbRangeTest, BatchedManyHandlesEmptyInputs) {
  EXPECT_TRUE(ProbabilisticRangeQueryMany({}, {}, 0.5).empty());
  const auto no_objects =
      ProbabilisticRangeQueryMany({}, {BBox(0, 0, 1, 1)}, 0.5);
  ASSERT_EQ(no_objects.size(), 1u);
  EXPECT_TRUE(no_objects[0].empty());
  const auto objects = RandomObjects(20, 100.0, 5.0, 14);
  EXPECT_TRUE(ProbabilisticRangeQueryMany(objects, {}, 0.5).empty());
}

// ----------------------------------------------------- ExpectedDistanceKnn

TEST(KnnTest, MatchesExhaustiveRanking) {
  const auto objects = RandomObjects(200, 1000.0, 15.0, 4);
  const Point q(500, 500);
  PruningStats stats;
  const auto got = ExpectedDistanceKnn(objects, q, 10, &stats);
  // Exhaustive.
  std::vector<std::pair<double, ObjectId>> all;
  for (const auto& obj : objects) {
    all.emplace_back(obj.ExpectedDistance(q), obj.id());
  }
  std::sort(all.begin(), all.end());
  std::vector<ObjectId> want;
  for (size_t i = 0; i < 10; ++i) want.push_back(all[i].second);
  EXPECT_EQ(got, want);
  EXPECT_GT(stats.pruned_out, 0u);
}

TEST(KnnTest, EdgeCases) {
  const auto objects = RandomObjects(5, 100.0, 5.0, 5);
  EXPECT_TRUE(ExpectedDistanceKnn(objects, Point(0, 0), 0).empty());
  EXPECT_EQ(ExpectedDistanceKnn(objects, Point(0, 0), 10).size(), 5u);
  EXPECT_TRUE(ExpectedDistanceKnn({}, Point(0, 0), 3).empty());
}

// ---------------------------------------------------------------- BeadModel

Trajectory TwoPointTrack() {
  Trajectory tr(1);
  tr.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));
  tr.AppendUnordered(TrajectoryPoint(100'000, Point(1000, 0)));
  return tr;
}

TEST(BeadModelTest, LensShrinksAtEndpoints) {
  const Trajectory tr = TwoPointTrack();
  const BeadModel model(&tr, 20.0);  // vmax 20 m/s, straight speed 10 m/s
  // At t=0 the object is exactly at the sample.
  EXPECT_TRUE(model.PossiblyAt(Point(0, 0), 0));
  EXPECT_FALSE(model.PossiblyAt(Point(100, 0), 0));
  // Midpoint in time: reachable lens around (500, 0).
  EXPECT_TRUE(model.PossiblyAt(Point(500, 0), 50'000));
  EXPECT_TRUE(model.PossiblyAt(Point(500, 300), 50'000));
  // Too far off the axis: |p-a| + |p-b| > vmax * 100s = 2000.
  EXPECT_FALSE(model.PossiblyAt(Point(500, 900), 50'000));
  // Outside the time span.
  EXPECT_FALSE(model.PossiblyAt(Point(0, 0), -1));
}

TEST(BeadModelTest, PossiblyAndDefinitelyInside) {
  const Trajectory tr = TwoPointTrack();
  const BeadModel model(&tr, 12.0);
  // A generous box containing every lens.
  const BBox everything(-300, -700, 1300, 700);
  EXPECT_TRUE(model.PossiblyInside(everything, 0, 100'000));
  EXPECT_TRUE(model.DefinitelyInside(everything, 0, 100'000));
  // A small box off the path.
  const BBox off_path(0, 500, 100, 600);
  EXPECT_FALSE(model.PossiblyInside(off_path, 0, 100'000));
  // A box on the path: possible but not definite.
  const BBox on_path(400, -50, 600, 50);
  EXPECT_TRUE(model.PossiblyInside(on_path, 30'000, 70'000));
  EXPECT_FALSE(model.DefinitelyInside(on_path, 0, 100'000));
}

TEST(UncertainRangeTest, SeparatesPossibleAndDefinite) {
  Rng rng(6);
  std::vector<Trajectory> trs;
  // Object 0 passes through the box; object 1 stays far away.
  Trajectory a(0);
  a.AppendUnordered(TrajectoryPoint(0, Point(0, 0)));
  a.AppendUnordered(TrajectoryPoint(60'000, Point(600, 0)));
  Trajectory b(1);
  b.AppendUnordered(TrajectoryPoint(0, Point(0, 10'000)));
  b.AppendUnordered(TrajectoryPoint(60'000, Point(600, 10'000)));
  trs.push_back(a);
  trs.push_back(b);
  const auto result = UncertainTrajectoryRange(
      trs, 15.0, BBox(200, -100, 400, 100), 0, 60'000);
  ASSERT_EQ(result.possible.size(), 1u);
  EXPECT_EQ(result.possible[0], 0u);
  EXPECT_TRUE(result.definite.empty());
}

// ------------------------------------------------------------- MarkovGrid

TEST(MarkovGridTest, MassConcentratesNearInterpolation) {
  const Trajectory tr = TwoPointTrack();
  MarkovGridModel::Options opts;
  opts.cell_m = 100.0;
  opts.steps_per_interval = 6;
  const MarkovGridModel model(&tr, opts);
  // At mid time, probability near the midpoint must dominate an equally
  // sized box far off the path.
  const double near_mid =
      model.ProbInBox(BBox(300, -200, 700, 200), 50'000);
  const double off_path =
      model.ProbInBox(BBox(300, 400, 700, 800), 50'000);
  EXPECT_GT(near_mid, 10.0 * std::max(off_path, 1e-12));
  // Outside the span: zero.
  EXPECT_DOUBLE_EQ(model.ProbInBox(BBox(0, 0, 100, 100), -5), 0.0);
}

TEST(MarkovGridTest, TotalMassIsOne) {
  const Trajectory tr = TwoPointTrack();
  const MarkovGridModel model(&tr);
  const double total =
      model.ProbInBox(BBox(-100000, -100000, 100000, 100000), 50'000);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ------------------------------------------------------------- SafeRegion

TEST(SafeRegionTest, SavesMessagesOnSmoothMotion) {
  Rng rng(7);
  SafeRegionMonitor monitor(BBox(400, 400, 900, 900));
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory tr =
      simulator.RandomWaypoint(BBox(0, 0, 1200, 1200), 2000, 1);
  for (const auto& pt : tr.points()) {
    monitor.ProcessUpdate(1, pt.p);
  }
  EXPECT_EQ(monitor.updates_processed(), 2000u);
  EXPECT_LT(monitor.messages_sent(), 800u);
  EXPECT_GT(monitor.MessageSavings(), 0.6);
}

TEST(SafeRegionTest, ResultAlwaysCorrect) {
  Rng rng(8);
  const BBox range(300, 300, 700, 700);
  SafeRegionMonitor monitor(range);
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory tr =
      simulator.RandomWaypoint(BBox(0, 0, 1000, 1000), 1000, 5);
  for (const auto& pt : tr.points()) {
    monitor.ProcessUpdate(5, pt.p);
    // The server's belief must match reality at every step: safe regions
    // guarantee no stale inside/outside status.
    EXPECT_EQ(monitor.inside().count(5) > 0, range.Contains(pt.p));
  }
}

TEST(SafeRegionTest, FirstUpdateAlwaysReports) {
  SafeRegionMonitor monitor(BBox(0, 0, 10, 10));
  EXPECT_TRUE(monitor.ProcessUpdate(1, Point(5, 5)));
  EXPECT_FALSE(monitor.ProcessUpdate(1, Point(5.5, 5.5)));
}

// -------------------------------------------------------------- Partition

std::vector<Point> SkewedPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.8)) {
      // Hotspot cluster.
      pts.emplace_back(rng.Gaussian(100, 30), rng.Gaussian(100, 30));
    } else {
      pts.emplace_back(rng.Uniform(0, 4000), rng.Uniform(0, 4000));
    }
  }
  return pts;
}

TEST(PartitionTest, UniformGridSuffersUnderSkew) {
  const auto pts = SkewedPoints(5000, 9);
  const auto uniform = UniformGridPartition(pts, 8, 8);
  const auto stats = ComputeStats(uniform);
  EXPECT_EQ(stats.num_partitions, 64u);
  EXPECT_GT(stats.imbalance, 10.0);
}

TEST(PartitionTest, AdaptiveBoundsLoad) {
  const auto pts = SkewedPoints(5000, 9);
  const auto adaptive = AdaptiveQuadPartition(pts, 200);
  const auto stats = ComputeStats(adaptive);
  EXPECT_LE(stats.max_load, 200u);
  const auto uniform_stats = ComputeStats(UniformGridPartition(pts, 8, 8));
  EXPECT_LT(stats.imbalance, uniform_stats.imbalance);
  // Every point lands in exactly one partition.
  size_t total = 0;
  for (const auto& p : adaptive) total += p.load;
  EXPECT_EQ(total, pts.size());
}

TEST(PartitionTest, EmptyInput) {
  EXPECT_TRUE(UniformGridPartition({}, 4, 4).empty());
  EXPECT_TRUE(AdaptiveQuadPartition({}, 10).empty());
}

// ------------------------------------------------------- RangeCount/PNN

TEST(RangeCountTest, MatchesBinomialOnIdenticalObjects) {
  // 10 objects each with inclusion probability ~0.5: count ~ Binomial(10, p).
  std::vector<UncertainPoint> objects;
  const BBox box(0, -1000, 1000, 1000);  // half-plane cut at x=0
  for (int i = 0; i < 10; ++i) {
    objects.push_back(
        UncertainPoint::MakeGaussian(i, Point(0, 0), 10.0));
  }
  const auto dist = RangeCount(objects, box);
  EXPECT_NEAR(dist.expected, 5.0, 0.1);
  EXPECT_NEAR(dist.variance, 2.5, 0.1);
  EXPECT_NEAR(dist.ProbAtLeast(0), 1.0, 1e-12);
  EXPECT_NEAR(dist.ProbAtLeast(1), 1.0 - std::pow(0.5, 10), 0.02);
  EXPECT_NEAR(dist.ProbAtLeast(10), std::pow(0.5, 10), 0.02);
  EXPECT_DOUBLE_EQ(dist.ProbAtLeast(11), 0.0);
  // Tail is non-increasing.
  for (size_t m = 1; m < dist.tail.size(); ++m) {
    EXPECT_LE(dist.tail[m], dist.tail[m - 1] + 1e-12);
  }
}

TEST(RangeCountTest, CertainObjectsCountExactly) {
  std::vector<UncertainPoint> objects;
  for (int i = 0; i < 5; ++i) {
    objects.push_back(
        UncertainPoint::MakeGaussian(i, Point(50, 50), 0.5));
  }
  const auto dist = RangeCount(objects, BBox(0, 0, 100, 100));
  EXPECT_NEAR(dist.expected, 5.0, 1e-6);
  EXPECT_NEAR(dist.ProbAtLeast(5), 1.0, 1e-6);
}

TEST(PnnTest, ProbabilitiesReflectDistanceAndUncertainty) {
  Rng rng(42);
  std::vector<UncertainPoint> objects;
  objects.push_back(UncertainPoint::MakeGaussian(0, Point(10, 0), 1.0));
  objects.push_back(UncertainPoint::MakeGaussian(1, Point(20, 0), 1.0));
  objects.push_back(UncertainPoint::MakeGaussian(2, Point(1000, 0), 1.0));
  const auto pnn =
      ProbabilisticNearestNeighbor(objects, Point(0, 0), 20000, &rng);
  ASSERT_FALSE(pnn.empty());
  EXPECT_EQ(pnn.front().first, 0u);
  EXPECT_GT(pnn.front().second, 0.95);
  double total = 0.0;
  for (const auto& [id, p] : pnn) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // A highly uncertain object steals probability mass it would never get
  // under certainty (with sigma=1 its NN probability was ~0; with sigma=30
  // a Monte Carlo estimate puts it near 0.05).
  double p1_before = 0.0;
  for (const auto& [id, p] : pnn) {
    if (id == 1) p1_before = p;
  }
  objects[1] = UncertainPoint::MakeGaussian(1, Point(20, 0), 30.0);
  const auto pnn2 =
      ProbabilisticNearestNeighbor(objects, Point(0, 0), 20000, &rng);
  double p1 = 0.0;
  for (const auto& [id, p] : pnn2) {
    if (id == 1) p1 = p;
  }
  EXPECT_GT(p1, p1_before + 0.02);
}

// Parameterised tau sweep: higher thresholds can only shrink the result.
class TauSweep : public ::testing::TestWithParam<double> {};

TEST_P(TauSweep, ResultMonotoneInTau) {
  const auto objects = RandomObjects(200, 1500.0, 25.0, 10);
  const BBox box(300, 300, 800, 800);
  const double tau = GetParam();
  const auto at_tau = ProbabilisticRangeQuery(objects, box, tau);
  const auto at_higher = ProbabilisticRangeQuery(objects, box, tau + 0.2);
  EXPECT_GE(at_tau.size(), at_higher.size());
  for (ObjectId id : at_higher) {
    EXPECT_NE(std::find(at_tau.begin(), at_tau.end(), id), at_tau.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, TauSweep,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75));

}  // namespace
}  // namespace query
}  // namespace sidq

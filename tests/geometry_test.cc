#include <cmath>

#include <gtest/gtest.h>

#include "geometry/bbox.h"
#include "geometry/geo.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/segment.h"

namespace sidq {
namespace geometry {
namespace {

constexpr double kTol = 1e-9;

TEST(PointTest, Arithmetic) {
  const Point a(1.0, 2.0);
  const Point b(3.0, -1.0);
  EXPECT_EQ(a + b, Point(4.0, 1.0));
  EXPECT_EQ(a - b, Point(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Point(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Point(0.5, 1.0));
}

TEST(PointTest, DotCrossNorm) {
  const Point a(3.0, 4.0);
  EXPECT_DOUBLE_EQ(a.Dot(Point(1.0, 0.0)), 3.0);
  EXPECT_DOUBLE_EQ(a.Cross(Point(1.0, 0.0)), -4.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.NormSq(), 25.0);
}

TEST(PointTest, NormalizedZeroVector) {
  EXPECT_EQ(Point(0.0, 0.0).Normalized(), Point(0.0, 0.0));
  const Point u = Point(0.0, 5.0).Normalized();
  EXPECT_NEAR(u.Norm(), 1.0, kTol);
}

TEST(PointTest, DistanceAndLerp) {
  EXPECT_DOUBLE_EQ(Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_EQ(Lerp(Point(0, 0), Point(10, 20), 0.5), Point(5, 10));
  EXPECT_EQ(Lerp(Point(0, 0), Point(10, 20), 0.0), Point(0, 0));
  EXPECT_EQ(Lerp(Point(0, 0), Point(10, 20), 1.0), Point(10, 20));
}

TEST(BBoxTest, EmptyAndExtend) {
  BBox box;
  EXPECT_TRUE(box.Empty());
  box.Extend(Point(1, 2));
  EXPECT_FALSE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  box.Extend(Point(3, 5));
  EXPECT_DOUBLE_EQ(box.Width(), 2.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
}

TEST(BBoxTest, ContainsAndIntersects) {
  const BBox a(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(Point(5, 5)));
  EXPECT_TRUE(a.Contains(Point(0, 0)));   // boundary inclusive
  EXPECT_TRUE(a.Contains(Point(10, 10)));
  EXPECT_FALSE(a.Contains(Point(10.01, 5)));
  const BBox b(5, 5, 15, 15);
  const BBox c(11, 11, 12, 12);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(BBox(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(b));
}

TEST(BBoxTest, MinMaxDistance) {
  const BBox a(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(a.MinDistance(Point(5, 5)), 0.0);
  EXPECT_DOUBLE_EQ(a.MinDistance(Point(13, 14)), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxDistance(Point(0, 0)), std::sqrt(200.0));
}

TEST(BBoxTest, ExpandedGrowsAllSides) {
  const BBox a(0, 0, 10, 10);
  const BBox e = a.Expanded(2.0);
  EXPECT_DOUBLE_EQ(e.min_x, -2.0);
  EXPECT_DOUBLE_EQ(e.max_y, 12.0);
}

TEST(SegmentTest, ProjectFraction) {
  const Point a(0, 0), b(10, 0);
  EXPECT_DOUBLE_EQ(ProjectFraction(Point(5, 3), a, b), 0.5);
  EXPECT_DOUBLE_EQ(ProjectFraction(Point(-5, 0), a, b), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(ProjectFraction(Point(20, 0), a, b), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(ProjectFraction(Point(1, 1), a, a), 0.0);   // degenerate
}

TEST(SegmentTest, PointSegmentDistance) {
  const Point a(0, 0), b(10, 0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(5, 3), a, b), 3.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(-3, 4), a, b), 5.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(13, -4), a, b), 5.0);
}

TEST(SegmentTest, PointLineDistanceUnclamped) {
  const Point a(0, 0), b(10, 0);
  // Beyond the endpoint, the *line* distance ignores the segment extent.
  EXPECT_DOUBLE_EQ(PointLineDistance(Point(20, 3), a, b), 3.0);
  EXPECT_DOUBLE_EQ(PointLineDistance(Point(1, 1), a, a), std::sqrt(2.0));
}

TEST(SegmentTest, SynchronizedEuclideanDistance) {
  const Point a(0, 0), b(10, 0);
  // At the midpoint in time, the reference position is the midpoint.
  EXPECT_DOUBLE_EQ(
      SynchronizedEuclideanDistance(Point(5, 4), 5.0, a, 0.0, b, 10.0), 4.0);
  // Degenerate time span falls back to distance from a.
  EXPECT_DOUBLE_EQ(
      SynchronizedEuclideanDistance(Point(3, 4), 5.0, a, 10.0, b, 10.0), 5.0);
  // Clamped outside the interval.
  EXPECT_DOUBLE_EQ(
      SynchronizedEuclideanDistance(Point(0, 3), -2.0, a, 0.0, b, 10.0), 3.0);
}

TEST(SegmentTest, SegmentsIntersect) {
  EXPECT_TRUE(SegmentsIntersect(Point(0, 0), Point(10, 10), Point(0, 10),
                                Point(10, 0)));
  EXPECT_FALSE(SegmentsIntersect(Point(0, 0), Point(1, 1), Point(2, 2),
                                 Point(3, 3)));
  // Collinear overlap counts as intersection.
  EXPECT_TRUE(SegmentsIntersect(Point(0, 0), Point(5, 0), Point(3, 0),
                                Point(8, 0)));
  // Touching endpoints count.
  EXPECT_TRUE(SegmentsIntersect(Point(0, 0), Point(5, 0), Point(5, 0),
                                Point(5, 5)));
}

TEST(GeoTest, HaversineKnownDistance) {
  // 1 degree of latitude is ~111.2 km.
  const LatLon a(0.0, 0.0), b(1.0, 0.0);
  EXPECT_NEAR(HaversineDistance(a, b), 111195.0, 100.0);
  EXPECT_DOUBLE_EQ(HaversineDistance(a, a), 0.0);
}

TEST(GeoTest, InitialBearingCardinal) {
  const LatLon a(0.0, 0.0);
  EXPECT_NEAR(InitialBearing(a, LatLon(1.0, 0.0)), 0.0, 1e-6);       // north
  EXPECT_NEAR(InitialBearing(a, LatLon(0.0, 1.0)), M_PI / 2, 1e-6);  // east
  EXPECT_NEAR(InitialBearing(a, LatLon(-1.0, 0.0)), M_PI, 1e-6);     // south
}

TEST(GeoTest, LocalProjectionRoundTrip) {
  const LocalProjection proj(LatLon(55.68, 12.57));  // Copenhagen
  const LatLon g(55.70, 12.60);
  const Point p = proj.Forward(g);
  const LatLon back = proj.Backward(p);
  EXPECT_NEAR(back.lat, g.lat, 1e-9);
  EXPECT_NEAR(back.lon, g.lon, 1e-9);
}

TEST(GeoTest, LocalProjectionMatchesHaversine) {
  const LocalProjection proj(LatLon(55.68, 12.57));
  const LatLon g(55.69, 12.59);
  const double planar = proj.Forward(g).Norm();
  const double sphere = HaversineDistance(LatLon(55.68, 12.57), g);
  EXPECT_NEAR(planar / sphere, 1.0, 1e-3);
}

TEST(PolygonTest, RectangleContains) {
  const Polygon rect = Polygon::Rectangle(BBox(0, 0, 10, 10));
  EXPECT_TRUE(rect.Contains(Point(5, 5)));
  EXPECT_TRUE(rect.Contains(Point(0, 5)));  // boundary
  EXPECT_FALSE(rect.Contains(Point(11, 5)));
  EXPECT_DOUBLE_EQ(rect.Area(), 100.0);
}

TEST(PolygonTest, CircleApproximation) {
  const Polygon circle = Polygon::Circle(Point(0, 0), 10.0, 64);
  EXPECT_TRUE(circle.Contains(Point(0, 0)));
  EXPECT_TRUE(circle.Contains(Point(9.0, 0.0)));
  EXPECT_FALSE(circle.Contains(Point(10.5, 0.0)));
  EXPECT_NEAR(circle.Area(), M_PI * 100.0, 1.5);
}

TEST(PolygonTest, InvalidPolygon) {
  const Polygon p(std::vector<Point>{Point(0, 0), Point(1, 1)});
  EXPECT_FALSE(p.Valid());
  EXPECT_FALSE(p.Contains(Point(0.5, 0.5)));
  EXPECT_DOUBLE_EQ(p.Area(), 0.0);
}

TEST(PolygonTest, BoundaryDistance) {
  const Polygon rect = Polygon::Rectangle(BBox(0, 0, 10, 10));
  EXPECT_DOUBLE_EQ(rect.BoundaryDistance(Point(5, 5)), 5.0);
  EXPECT_DOUBLE_EQ(rect.BoundaryDistance(Point(15, 5)), 5.0);
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  std::vector<Point> pts{Point(0, 0), Point(10, 0), Point(10, 10),
                         Point(0, 10), Point(5, 5), Point(2, 3)};
  const std::vector<Point> hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHullTest, DegenerateInputs) {
  EXPECT_EQ(ConvexHull({}).size(), 0u);
  EXPECT_EQ(ConvexHull({Point(1, 1)}).size(), 1u);
  EXPECT_EQ(ConvexHull({Point(1, 1), Point(2, 2)}).size(), 2u);
  // All-collinear input collapses to the two extremes.
  const auto hull =
      ConvexHull({Point(0, 0), Point(1, 1), Point(2, 2), Point(3, 3)});
  EXPECT_EQ(hull.size(), 2u);
}

// Property sweep: SED of the segment midpoint at the time midpoint equals
// half the distance between endpoint perpendicular offsets.
class SedPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SedPropertyTest, SedLessOrEqualMaxEndpointDistance) {
  const double offset = GetParam();
  const Point a(0, 0), b(100, 0);
  const Point p(50, offset);
  const double sed =
      SynchronizedEuclideanDistance(p, 50.0, a, 0.0, b, 100.0);
  EXPECT_DOUBLE_EQ(sed, std::abs(offset));
  // SED can never exceed the max distance to the endpoints.
  EXPECT_LE(sed, std::max(Distance(p, a), Distance(p, b)) + kTol);
}

INSTANTIATE_TEST_SUITE_P(Offsets, SedPropertyTest,
                         ::testing::Values(-20.0, -1.0, 0.0, 0.5, 7.0,
                                           100.0));

}  // namespace
}  // namespace geometry
}  // namespace sidq

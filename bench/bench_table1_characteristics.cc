// E1 -- reproduces Table 1 of the tutorial: "SID Characteristics and
// Resulting Quality Issues". Each characteristic is injected into clean
// synthetic data; the DQ profiler measures every dimension before and
// after; the diagnosis (down = quality degraded) is printed next to what
// Table 1 predicts.

#include <map>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "core/quality.h"
#include "core/random.h"
#include "sim/noise.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

using bench::Table;

// Expected issues straight from Table 1 of the paper (arrows translated:
// "low precision" = precision degraded, "high time sparsity" = sparsity
// metric degraded, ...).
const std::map<std::string, std::set<std::string>> kTable1 = {
    {"noisy_and_erroneous", {"precision", "accuracy", "consistency"}},
    {"temporally_discrete", {"time_sparsity", "completeness", "staleness"}},
    {"heterogeneous", {"consistency", "interpretability"}},
    {"voluminous_duplicated", {"redundancy", "data_volume"}},
    {"decentralized_delayed", {"latency"}},
    {"unverifiable", {"truth_volume"}},
    {"multi_scaled", {"resolution"}},
    {"spatially_discrete", {"space_coverage"}},
};

struct Scenario {
  std::string name;
  std::vector<Trajectory> observed;
  std::vector<Trajectory> truth;
  std::vector<std::vector<Timestamp>> arrivals;
  bool has_arrivals = false;
};

int Run() {
  bench::Banner(
      "E1", "Table 1: SID characteristics -> quality issues",
      "each IoT data characteristic degrades the specific DQ dimensions "
      "listed in Table 1");

  Rng rng(1);
  const sim::Fleet fleet = sim::MakeFleet(10, 10, 150.0, 12, 24, &rng);
  const std::vector<Trajectory>& truth = fleet.trajectories;

  // Clean observation: truth plus negligible noise, instant delivery.
  auto identity_arrivals = [&](const std::vector<Trajectory>& trs) {
    std::vector<std::vector<Timestamp>> out;
    for (const auto& tr : trs) {
      std::vector<Timestamp> a;
      for (const auto& pt : tr.points()) a.push_back(pt.t);
      out.push_back(std::move(a));
    }
    return out;
  };

  std::vector<Scenario> scenarios;

  {
    Scenario s;
    s.name = "noisy_and_erroneous";
    for (const auto& tr : truth) {
      Trajectory noisy = sim::AddGpsNoise(tr, 25.0, &rng);
      s.observed.push_back(sim::AddOutliers(noisy, 0.05, 150, 400, &rng));
    }
    s.truth = truth;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "temporally_discrete";
    for (const auto& tr : truth) {
      Trajectory sparse = sim::Resample(tr, 8000);
      s.observed.push_back(sim::TruncateTail(sparse, 60'000));
    }
    s.truth = truth;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "heterogeneous";
    // A third of the sources report feet instead of metres: unit chaos.
    for (size_t i = 0; i < truth.size(); ++i) {
      s.observed.push_back(i % 3 == 0 ? sim::ScaleUnits(truth[i], 3.2808)
                                      : truth[i]);
    }
    s.truth = truth;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "voluminous_duplicated";
    for (const auto& tr : truth) {
      s.observed.push_back(sim::DuplicateSamples(tr, 0.35, &rng));
    }
    s.truth = truth;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "decentralized_delayed";
    for (const auto& tr : truth) {
      std::vector<Timestamp> arrival;
      s.observed.push_back(
          sim::AddDeliveryDelay(tr, 6.0, &rng, &arrival));
      s.arrivals.push_back(std::move(arrival));
    }
    s.truth = truth;
    s.has_arrivals = true;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "unverifiable";
    s.observed = truth;
    // Ground truth exists for only a quarter of the objects.
    for (size_t i = 0; i < truth.size(); ++i) {
      s.truth.push_back(i % 4 == 0 ? truth[i] : Trajectory());
    }
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "multi_scaled";
    for (const auto& tr : truth) {
      s.observed.push_back(sim::QuantizeCoordinates(tr, 100.0));
    }
    s.truth = truth;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "spatially_discrete";
    // Each source only covers the left half of the city.
    for (const auto& tr : truth) {
      Trajectory half(tr.object_id());
      for (const auto& pt : tr.points()) {
        if (pt.p.x < 700.0) half.AppendUnordered(pt);
      }
      if (half.size() < 2) half = tr.Slice(tr.front().t, tr.front().t + 1);
      s.observed.push_back(std::move(half));
    }
    s.truth = truth;
    scenarios.push_back(std::move(s));
  }

  TrajectoryProfiler::Options popts;
  popts.expected_interval_ms = 1000;
  // Pin "now" to the fleet's wall clock so staleness compares against the
  // same instant in every scenario.
  popts.now = 0;
  for (const auto& tr : truth) {
    popts.now = std::max(popts.now, tr.back().t);
  }
  const TrajectoryProfiler profiler(popts);
  const auto clean_arrivals = identity_arrivals(truth);
  std::vector<Trajectory> truth_copy = truth;
  const DqReport clean =
      profiler.Profile(truth, &truth_copy, &clean_arrivals);

  Table table({"characteristic", "degraded dimensions (measured)",
               "Table 1 prediction", "match"});
  int matches = 0;
  for (const Scenario& s : scenarios) {
    const auto arrivals =
        s.has_arrivals ? s.arrivals : identity_arrivals(s.observed);
    const DqReport dirty = profiler.Profile(s.observed, &s.truth, &arrivals);
    const auto issues = DiagnoseChanges(clean, dirty, 0.25);
    std::set<std::string> degraded;
    for (const DqIssue& issue : issues) {
      if (issue.degraded) degraded.insert(DqDimensionName(issue.dimension));
    }
    const std::set<std::string>& expected = kTable1.at(s.name);
    // The prediction matches when every expected dimension degraded.
    bool all_found = true;
    for (const std::string& d : expected) {
      all_found = all_found && degraded.count(d) > 0;
    }
    matches += all_found ? 1 : 0;
    auto join = [](const std::set<std::string>& items) {
      std::string out;
      for (const auto& s2 : items) {
        if (!out.empty()) out += ", ";
        out += s2;
      }
      return out.empty() ? "-" : out;
    };
    table.AddRow({s.name, join(degraded), join(expected),
                  all_found ? "yes" : "PARTIAL"});
  }
  table.Print();
  std::printf("Table 1 reproduction: %d/%zu characteristics show every "
              "predicted issue\n",
              matches, scenarios.size());
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

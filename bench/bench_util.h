#pragma once

// Shared table-printing helpers for the experiment harness. Every bench
// binary regenerates one experiment from DESIGN.md and prints it as a
// markdown table so EXPERIMENTS.md can quote the output verbatim.

#include <cstdio>
#include <string>
#include <vector>

namespace sidq {
namespace bench {

// A minimal markdown table writer: set headers, add rows of formatted
// cells, print.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (const auto& h : headers_) {
      rule.push_back(std::string(std::max<size_t>(3, h.size()), '-'));
    }
    PrintRow(rule);
    for (const auto& row : rows_) PrintRow(row);
    std::printf("\n");
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::printf("|");
    for (size_t i = 0; i < cells.size(); ++i) {
      const size_t width =
          i < headers_.size() ? std::max(headers_[i].size(), size_t{3}) : 3;
      std::printf(" %-*s |", static_cast<int>(width), cells[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string F1(double v) { return Fmt("%.1f", v); }
inline std::string F2(double v) { return Fmt("%.2f", v); }
inline std::string F3(double v) { return Fmt("%.3f", v); }
inline std::string FInt(double v) { return Fmt("%.0f", v); }

inline void Banner(const char* experiment, const char* title,
                   const char* claim) {
  std::printf("== %s: %s ==\n", experiment, title);
  std::printf("paper claim: %s\n\n", claim);
}

}  // namespace bench
}  // namespace sidq

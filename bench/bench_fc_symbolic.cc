// E9 -- Fault Correction (Section 2.2.4): RFID symbolic cleaning under
// false-negative and false-positive sweeps (smoothing vs constraints vs
// HMM), plus timestamp repair accuracy under jitter.

#include "bench/bench_util.h"
#include "core/random.h"
#include "fault/rfid_cleaning.h"
#include "fault/timestamp_repair.h"
#include "sim/noise.h"
#include "sim/rfid.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E9", "fault correction (symbolic + timestamps)",
                "probabilistic and constraint-based repair that exploits "
                "deployment structure beats purely local smoothing");

  Rng rng(9);
  const auto deployment = sim::RfidDeployment::Corridor(14);
  const int kTags = 15;
  auto scenario_accuracy = [&](double fn, double fp, double* dirty_acc,
                               double* smooth_acc, double* constraint_acc,
                               double* hmm_acc) {
    fault::SmoothingWindowCleaner smoothing;
    fault::ConstraintCleaner constraints(&deployment);
    fault::HmmCleaner hmm(&deployment);
    *dirty_acc = *smooth_acc = *constraint_acc = *hmm_acc = 0.0;
    for (int tag = 0; tag < kTags; ++tag) {
      const auto truth = deployment.SimulateWalk(tag, 40, 4, 1000, &rng);
      const auto dirty = deployment.Degrade(truth, fn, fp, &rng);
      *dirty_acc += fault::TickAccuracy(dirty, truth, 1000);
      *smooth_acc +=
          fault::TickAccuracy(smoothing.Clean(dirty).value(), truth, 1000);
      *constraint_acc +=
          fault::TickAccuracy(constraints.Clean(dirty).value(), truth, 1000);
      *hmm_acc +=
          fault::TickAccuracy(hmm.Clean(dirty).value(), truth, 1000);
    }
    *dirty_acc /= kTags;
    *smooth_acc /= kTags;
    *constraint_acc /= kTags;
    *hmm_acc /= kTags;
  };

  std::printf("-- per-tick accuracy vs false-negative rate (fp = 0.10) --\n");
  bench::Table table({"fn rate", "dirty", "smoothing", "constraints", "hmm"});
  for (double fn : {0.05, 0.15, 0.30, 0.45}) {
    double d, s, c, h;
    scenario_accuracy(fn, 0.10, &d, &s, &c, &h);
    table.AddRow({bench::F2(fn), bench::F3(d), bench::F3(s), bench::F3(c),
                  bench::F3(h)});
  }
  table.Print();

  std::printf("-- per-tick accuracy vs false-positive rate (fn = 0.15) --\n");
  bench::Table table2({"fp rate", "dirty", "smoothing", "constraints",
                       "hmm"});
  for (double fp : {0.05, 0.15, 0.30, 0.45}) {
    double d, s, c, h;
    scenario_accuracy(0.15, fp, &d, &s, &c, &h);
    table2.AddRow({bench::F2(fp), bench::F3(d), bench::F3(s), bench::F3(c),
                   bench::F3(h)});
  }
  table2.Print();

  std::printf("-- timestamp repair (PAVA) under jitter --\n");
  bench::Table table3({"jitter sigma (ms)", "disorder rate before",
                       "disorder after", "mean |change| (ms)"});
  for (double jitter : {200.0, 600.0, 1500.0, 3000.0}) {
    Trajectory tr(1);
    for (int i = 0; i < 500; ++i) {
      tr.AppendUnordered(
          TrajectoryPoint(i * 1000, geometry::Point(i * 10.0, 0)));
    }
    const Trajectory jittered = sim::JitterTimestamps(tr, jitter, &rng);
    size_t before = 0;
    for (size_t i = 1; i < jittered.size(); ++i) {
      before += jittered[i].t < jittered[i - 1].t ? 1 : 0;
    }
    const auto repaired =
        fault::RepairTrajectoryTimestamps(jittered, 1).value();
    size_t after = 0;
    double change = 0.0;
    for (size_t i = 0; i < repaired.size(); ++i) {
      if (i > 0 && repaired[i].t < repaired[i - 1].t) ++after;
      change += std::abs(
          static_cast<double>(repaired[i].t - jittered[i].t));
    }
    table3.AddRow({bench::FInt(jitter),
                   bench::F3(static_cast<double>(before) / jittered.size()),
                   bench::F3(static_cast<double>(after) / repaired.size()),
                   bench::F1(change / repaired.size())});
  }
  table3.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

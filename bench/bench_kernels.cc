// BENCH kernels: columnar kernel layer vs. scalar AoS reference.
//
// Times each kernel primitive against the scalar reference implementation
// it replaced (kernels/scalar_ref.cc, compiled with auto-vectorization
// disabled) on a fleet-scale workload, and checks BIT-IDENTITY of every
// output via FNV-1a checksums over the raw double bit patterns: the kernel
// layer is only allowed to be faster, never different. A checksum mismatch
// is a hard failure (exit 1), so this bench doubles as the cross-layer
// equivalence gate. scripts/bench_json.py scrapes the BENCH_JSON line into
// BENCH_kernels.json.
//
// Primitives:
//   pairwise     all-pairs squared distances (the EDR/LCSS/Frechet inner
//                pattern) -- embarrassingly vectorizable, the headline win
//   dtw_row      full banded DTW through kernels::DtwRowKernel; the
//                loop-carried DP recurrence bounds both paths, so this
//                one is a parity check (expect ~1x), not a speedup
//   frechet_row  full discrete Frechet through kernels::FrechetRowKernel
//   packed_range batched range queries over per-segment boxes on
//                kernels::PackedRTree vs. per-query
//                index::RTree::RangeQuery
//
// Pass --quick to cut repetitions (CI smoke). Pass --checksums-out FILE to
// additionally write one "<primitive> <checksum>" line per primitive:
// run_all.sh and CI byte-compare (cmp) that file between a dispatched run
// and a SIDQ_FORCE_ISA=scalar run -- the runtime-dispatch analogue of the
// in-process scalar-vs-kernel gate. The BENCH_JSON line records which ISA
// tier the dispatcher resolved ("isa").

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/random.h"
#include "core/trajectory.h"
#include "index/rtree.h"
#include "kernels/dispatch.h"
#include "kernels/distance.h"
#include "kernels/packed_rtree.h"
#include "kernels/scalar_ref.h"
#include "kernels/soa.h"
#include "query/similarity.h"
#include "store/vfs.h"

namespace sidq {
namespace {

constexpr size_t kFleetSize = 1000;
constexpr size_t kPointsEach = 64;
constexpr uint64_t kSeed = 20220611;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<Trajectory> MakeFleet() {
  Rng rng(kSeed);
  std::vector<Trajectory> fleet;
  fleet.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    Trajectory t(static_cast<ObjectId>(i));
    t.Reserve(kPointsEach);
    double x = rng.Uniform(0.0, 5000.0);
    double y = rng.Uniform(0.0, 5000.0);
    double vx = rng.Gaussian(0.0, 8.0);
    double vy = rng.Gaussian(0.0, 8.0);
    for (size_t k = 0; k < kPointsEach; ++k) {
      t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 1000,
                                        geometry::Point(x, y), 8.0));
      vx += rng.Gaussian(0.0, 1.0);
      vy += rng.Gaussian(0.0, 1.0);
      x += vx;
      y += vy;
    }
    fleet.push_back(std::move(t));
  }
  return fleet;
}

// FNV-1a over raw bit patterns: any rounding difference flips the hash.
struct Checksum {
  uint64_t h = 1469598103934665603ull;
  void Mix(uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
  void MixDouble(double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
};

struct PrimitiveResult {
  const char* name;
  double scalar_s = 0.0;
  double kernel_s = 0.0;
  double speedup = 0.0;
  uint64_t checksum = 0;
  bool identical = false;
};

// ------------------------------------------------------------- primitives

PrimitiveResult BenchPairwise(const std::vector<Trajectory>& fleet,
                              size_t pairs) {
  PrimitiveResult r{"pairwise"};
  std::vector<double> out(kPointsEach * kPointsEach);
  Checksum scalar_sum, kernel_sum;

  auto t0 = std::chrono::steady_clock::now();
  for (size_t p = 0; p < pairs; ++p) {
    const Trajectory& a = fleet[p % fleet.size()];
    const Trajectory& b = fleet[(p * 7 + 1) % fleet.size()];
    kernels::scalar::PairwiseSqDist(a, b, out.data());
    scalar_sum.MixDouble(out[p % out.size()]);
  }
  r.scalar_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  for (size_t p = 0; p < pairs; ++p) {
    const Trajectory& a = fleet[p % fleet.size()];
    const Trajectory& b = fleet[(p * 7 + 1) % fleet.size()];
    const kernels::TrajectoryView va = kernels::TrajectoryView::Of(a);
    const kernels::TrajectoryView vb = kernels::TrajectoryView::Of(b);
    kernels::PairwiseSqDist(va.x(), va.y(), va.size(), vb.x(), vb.y(),
                            vb.size(), out.data());
    kernel_sum.MixDouble(out[p % out.size()]);
  }
  r.kernel_s = SecondsSince(t0);

  r.speedup = r.scalar_s / r.kernel_s;
  r.checksum = kernel_sum.h;
  r.identical = scalar_sum.h == kernel_sum.h;
  return r;
}

PrimitiveResult BenchDtw(const std::vector<Trajectory>& fleet, size_t pairs,
                         int band) {
  PrimitiveResult r{"dtw_row"};
  Checksum scalar_sum, kernel_sum;

  auto t0 = std::chrono::steady_clock::now();
  for (size_t p = 0; p < pairs; ++p) {
    const Trajectory& a = fleet[p % fleet.size()];
    const Trajectory& b = fleet[(p * 13 + 3) % fleet.size()];
    scalar_sum.MixDouble(kernels::scalar::DtwDistance(a, b, band));
  }
  r.scalar_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  for (size_t p = 0; p < pairs; ++p) {
    const Trajectory& a = fleet[p % fleet.size()];
    const Trajectory& b = fleet[(p * 13 + 3) % fleet.size()];
    kernel_sum.MixDouble(query::DtwDistance(a, b, band));
  }
  r.kernel_s = SecondsSince(t0);

  r.speedup = r.scalar_s / r.kernel_s;
  r.checksum = kernel_sum.h;
  r.identical = scalar_sum.h == kernel_sum.h;
  return r;
}

PrimitiveResult BenchFrechet(const std::vector<Trajectory>& fleet,
                             size_t pairs) {
  PrimitiveResult r{"frechet_row"};
  Checksum scalar_sum, kernel_sum;

  auto t0 = std::chrono::steady_clock::now();
  for (size_t p = 0; p < pairs; ++p) {
    const Trajectory& a = fleet[p % fleet.size()];
    const Trajectory& b = fleet[(p * 11 + 5) % fleet.size()];
    scalar_sum.MixDouble(kernels::scalar::FrechetDistance(a, b));
  }
  r.scalar_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  for (size_t p = 0; p < pairs; ++p) {
    const Trajectory& a = fleet[p % fleet.size()];
    const Trajectory& b = fleet[(p * 11 + 5) % fleet.size()];
    kernel_sum.MixDouble(query::DiscreteFrechetDistance(a, b));
  }
  r.kernel_s = SecondsSince(t0);

  r.speedup = r.scalar_s / r.kernel_s;
  r.checksum = kernel_sum.h;
  r.identical = scalar_sum.h == kernel_sum.h;
  return r;
}

PrimitiveResult BenchPackedRange(const std::vector<Trajectory>& fleet,
                                 size_t rounds) {
  PrimitiveResult r{"packed_range"};
  // Index every trajectory SEGMENT box (fleet_size * (points - 1) items)
  // and run the map-matching candidate-fetch pattern: one small box
  // (+-75 m) around every 4th sample point. Many small queries over an
  // out-of-cache tree is where layout and batching matter -- contiguous
  // level-order node arrays, one amortized result buffer instead of a
  // per-query allocation, and the contains-whole-subtree linear emit.
  std::vector<index::RTree::Item> base_items;
  std::vector<kernels::PackedRTree::Item> packed_items;
  std::vector<geometry::BBox> queries;
  for (size_t i = 0; i < fleet.size(); ++i) {
    const auto& pts = fleet[i].points();
    for (size_t k = 0; k + 1 < pts.size(); ++k) {
      const geometry::BBox box(pts[k].p, pts[k + 1].p);
      const uint64_t id = i * kPointsEach + k;
      base_items.push_back({id, box});
      packed_items.push_back({id, box});
    }
    for (size_t k = 0; k < pts.size(); k += 4) {
      queries.push_back(geometry::BBox(pts[k].p, pts[k].p).Expanded(75.0));
    }
  }
  index::RTree baseline;
  baseline.BulkLoad(base_items);
  // Wide leaves: the SIMD leaf sweep makes 64-entry leaves cheaper than
  // deeper traversal, which a branchy AoS scan cannot afford.
  kernels::PackedRTree packed(64);
  packed.BulkLoad(packed_items);

  // Time pure query work; checksum afterwards. Result sets are
  // order-insensitive between the two trees, so checksum sorted ids.
  std::vector<std::vector<uint64_t>> base_results(queries.size());
  kernels::PackedRTree::BatchResults batch;

  auto t0 = std::chrono::steady_clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t q = 0; q < queries.size(); ++q) {
      base_results[q] = baseline.RangeQuery(queries[q]);
    }
  }
  r.scalar_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    packed.RangeQueryMany(queries, &batch);
  }
  r.kernel_s = SecondsSince(t0);

  Checksum scalar_sum, kernel_sum;
  std::vector<uint64_t> ids;
  for (size_t q = 0; q < queries.size(); ++q) {
    ids = base_results[q];
    std::sort(ids.begin(), ids.end());
    for (uint64_t id : ids) scalar_sum.Mix(id);
    ids.assign(batch.begin_of(q), batch.end_of(q));
    std::sort(ids.begin(), ids.end());
    for (uint64_t id : ids) kernel_sum.Mix(id);
  }

  r.speedup = r.scalar_s / r.kernel_s;
  r.checksum = kernel_sum.h;
  r.identical = scalar_sum.h == kernel_sum.h;
  return r;
}

std::string JsonResults(const std::vector<PrimitiveResult>& results) {
  std::string out = "[";
  for (size_t i = 0; i < results.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"primitive\":\"%s\",\"scalar_s\":%.4f,"
                  "\"kernel_s\":%.4f,\"speedup\":%.2f,"
                  "\"checksum\":\"%016llx\",\"identical\":%s}",
                  i == 0 ? "" : ",", results[i].name, results[i].scalar_s,
                  results[i].kernel_s, results[i].speedup,
                  static_cast<unsigned long long>(results[i].checksum),
                  results[i].identical ? "true" : "false");
    out += buf;
  }
  return out + "]";
}

}  // namespace
}  // namespace sidq

int main(int argc, char** argv) {
  using namespace sidq;

  bool quick = false;
  std::string checksums_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--quick") quick = true;
    if (arg == "--checksums-out" && i + 1 < argc) checksums_out = argv[++i];
  }

  bench::Banner("BENCH kernels", "columnar kernels vs scalar reference",
                "querying massive low-quality SID collections needs "
                "hardware-friendly similarity/index primitives; the "
                "columnar fast lane must change performance, not results");

  const char* isa = kernels::IsaName(kernels::KernelDispatch::Active());
  const auto fleet = MakeFleet();
  std::printf("fleet: %zu trajectories x %zu points, isa: %s%s\n\n",
              fleet.size(), static_cast<size_t>(kPointsEach), isa,
              quick ? " (--quick)" : "");

  // Materialize every trajectory's column view up front. Views are
  // memoized on the trajectory in production, so timing the one-time
  // build inside the first primitive would misattribute it.
  for (const Trajectory& t : fleet) {
    (void)kernels::TrajectoryView::Of(t);  // sidq: allow-ignored-status(warmup)
  }

  const size_t mul = quick ? 1 : 10;
  std::vector<PrimitiveResult> results;
  results.push_back(BenchPairwise(fleet, 400 * mul));
  results.push_back(BenchDtw(fleet, 200 * mul, /*band=*/32));
  results.push_back(BenchFrechet(fleet, 100 * mul));
  results.push_back(BenchPackedRange(fleet, 2 * mul));

  bench::Table table(
      {"primitive", "scalar_s", "kernel_s", "speedup", "bit-identical"});
  bool all_identical = true;
  for (const PrimitiveResult& r : results) {
    table.AddRow({r.name, bench::F3(r.scalar_s), bench::F3(r.kernel_s),
                  bench::F2(r.speedup), r.identical ? "yes" : "NO"});
    all_identical = all_identical && r.identical;
  }
  table.Print();

  if (!all_identical) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION: kernel output differs from the "
                 "scalar reference\n");
    return 1;
  }
  std::printf("equivalence: all kernel outputs bit-identical to scalar\n\n");

  if (!checksums_out.empty()) {
    // One "<primitive> <checksum>" line per primitive: the byte-compare
    // surface for the forced-scalar vs dispatched gate. Published
    // atomically so a crashed bench can never leave a truncated file that
    // cmp would read as a checksum mismatch.
    std::string lines;
    for (const PrimitiveResult& r : results) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s %016llx\n", r.name,
                    static_cast<unsigned long long>(r.checksum));
      lines += buf;
    }
    const sidq::Status st = sidq::store::AtomicWriteFile(
        sidq::store::DefaultVfs(), checksums_out, lines);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", checksums_out.c_str(),
                   st.message().c_str());
      return 1;
    }
  }

  std::printf(
      "BENCH_JSON: {\"bench\":\"kernels\",\"fleet_size\":%zu,"
      "\"points_per_trajectory\":%zu,\"isa\":\"%s\","
      "\"equivalence\":\"bit-identical\",\"primitives\":%s}\n",
      fleet.size(), static_cast<size_t>(kPointsEach), isa,
      JsonResults(results).c_str());
  return 0;
}

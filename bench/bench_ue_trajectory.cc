// E5 -- Trajectory Uncertainty Elimination (Section 2.2.2): calibration,
// inference-based completion, and smoothing vs a linear baseline, swept
// over the sampling interval.

#include "bench/bench_util.h"
#include "core/random.h"
#include "refine/hmm_map_matcher.h"
#include "refine/kalman.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/calibration.h"
#include "uncertainty/completion.h"
#include "uncertainty/smoothing.h"

namespace sidq {
namespace {

// Mean reconstruction error of `reconstructed` against ground truth at the
// reconstructed timestamps.
double ReconstructionError(const Trajectory& reconstructed,
                           const Trajectory& truth) {
  double err = 0.0;
  size_t n = 0;
  for (const auto& pt : reconstructed.points()) {
    auto p = truth.InterpolateAt(pt.t);
    if (p.ok()) {
      err += geometry::Distance(pt.p, p.value());
      ++n;
    }
  }
  return n > 0 ? err / n : 0.0;
}

int Run() {
  bench::Banner("E5", "trajectory uncertainty elimination",
                "inference-based (road) completion beats linear "
                "interpolation at low sampling rates; calibration and "
                "smoothing cut noise");

  Rng rng(5);
  sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(10, 10, 160.0, 0.0, 0.0, &rng);
  sim::TrajectorySimulator::Options sopts;
  sopts.mean_speed_mps = 12.0;
  sim::TrajectorySimulator simulator(sopts, &rng);
  const int kTrajectories = 10;
  std::vector<Trajectory> truths;
  for (int i = 0; i < kTrajectories; ++i) {
    truths.push_back(simulator.RandomOnNetwork(net, 24, i).value());
  }

  // Part A: gap completion under increasing sparsity. Route inference
  // needs on-road endpoints, so the sparse fixes are map-matched first --
  // the localization layer feeding the pre-processing layer, exactly the
  // layering of Figure 2.
  std::printf("-- completion error vs sampling interval (gps sigma 8 m, "
              "sparse fixes map-matched first) --\n");
  bench::Table table({"interval (s)", "linear err (m)", "road-inference err",
                      "densification"});
  uncertainty::RoadCompleter completer(&net);
  refine::HmmMapMatcher matcher(&net);
  for (Timestamp interval : {5, 10, 20, 40}) {
    double linear_err = 0.0, road_err = 0.0, densify = 0.0;
    for (const Trajectory& truth : truths) {
      const Trajectory noisy = sim::AddGpsNoise(truth, 8.0, &rng);
      const Trajectory sparse = sim::Resample(noisy, interval * 1000);
      const auto linear =
          uncertainty::LinearComplete(sparse, 1000).value();
      const auto matched = matcher.Match(sparse);
      const Trajectory& anchors = matched.ok() ? matched->matched : sparse;
      const auto road = completer.Complete(anchors).value();
      linear_err += ReconstructionError(linear, truth);
      road_err += ReconstructionError(road, truth);
      densify += static_cast<double>(road.size()) / sparse.size();
    }
    table.AddRow({std::to_string(interval),
                  bench::F2(linear_err / kTrajectories),
                  bench::F2(road_err / kTrajectories),
                  bench::F2(densify / kTrajectories)});
  }
  table.Print();

  // Part B: calibration + smoothing on dense but noisy data.
  std::printf("-- denoising (1 s sampling, gps sigma sweep) --\n");
  bench::Table table2({"gps sigma (m)", "raw err", "calibrated err",
                       "moving-avg err", "kalman-rts err"});
  uncertainty::TrajectoryCalibrator calibrator;
  calibrator.BuildAnchors(truths);  // historical corpus as reference
  refine::KalmanFilter2D::Options kopts;
  kopts.process_noise = 0.5;
  const refine::KalmanFilter2D kalman(kopts);
  for (double sigma : {5.0, 10.0, 20.0, 30.0}) {
    double raw = 0.0, cal = 0.0, ma = 0.0, rts = 0.0;
    for (const Trajectory& truth : truths) {
      const Trajectory noisy = sim::AddGpsNoise(truth, sigma, &rng);
      raw += RmseBetween(truth, noisy).value();
      cal += RmseBetween(truth, calibrator.Calibrate(noisy).value()).value();
      ma += RmseBetween(truth,
                        uncertainty::MovingAverageSmooth(noisy, 3).value())
                .value();
      rts += RmseBetween(truth, kalman.Smooth(noisy).value()).value();
    }
    table2.AddRow({bench::F1(sigma), bench::F2(raw / kTrajectories),
                   bench::F2(cal / kTrajectories),
                   bench::F2(ma / kTrajectories),
                   bench::F2(rts / kTrajectories)});
  }
  table2.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

// BENCH stream: record-at-a-time ingestion engine throughput and replay
// determinism (DESIGN.md "Streaming & watermarks").
//
// Workload: a seeded fleet of sensors sampling a smooth scalar field,
// dirtied with noise, spikes, duplicate deliveries, and stragglers past
// the lateness bound, then recorded as an arrival-ordered event log.
//
//   ingest        serial Push() over the whole log: sustained records/s
//                 plus the per-record latency distribution (p50/p99) --
//                 the figure that decides whether online cleaning keeps up
//                 with a device gateway.
//   window_close  amortized cost of closing a window (sort + online
//                 outlier gate + incremental Kalman + KPI fold), measured
//                 over the engine's own closes.
//   replay        Replay() at 1/2/8 workers vs. the serial engine.
//
// Every configuration -- serial engine, every worker count, and the batch
// reference -- must agree on OutputChecksum bit-for-bit; any mismatch
// exits 1, so this bench doubles as the stream determinism gate.
// scripts/bench_json.py scrapes the BENCH_JSON line into BENCH_stream.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/random.h"
#include "geometry/bbox.h"
#include "sim/sensor_field.h"
#include "stream/engine.h"
#include "stream/event_log.h"
#include "stream/replay.h"
#include "stream/rules.h"

namespace sidq {
namespace {

constexpr uint64_t kSeed = 777;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

stream::EventLog MakeLog(size_t num_sensors, size_t samples_per_sensor) {
  Rng rng(kSeed);
  const geometry::BBox bounds(geometry::Point(0, 0),
                              geometry::Point(8000, 8000));
  const sim::ScalarField field = sim::ScalarField::MakeRandom(
      bounds, 3, 20.0, 30.0, 300.0, 900.0, 3600.0, &rng);
  const std::vector<geometry::Point> sensors =
      sim::DeploySensors(bounds, num_sensors, &rng);
  StDataset truth = sim::SampleField(field, sensors, 0, 60'000,
                                     samples_per_sensor, "pm25");
  StDataset dirty = sim::AddValueNoise(truth, 0.8, &rng);
  dirty = sim::AddValueSpikes(dirty, 0.02, 400.0, &rng);

  stream::ArrivalOptions options;
  options.mean_delay_ms = 20'000;
  options.straggler_probability = 0.05;
  options.straggler_delay_ms = 400'000;
  options.duplicate_probability = 0.05;
  return stream::RecordArrivals(dirty, options, &rng);
}

stream::StreamConfig MakeConfig() {
  stream::StreamConfig config;
  stream::SensorRule rule;
  rule.min_value = -50.0;
  rule.max_value = 500.0;
  rule.expected_interval_ms = 60'000;
  rule.max_lateness_ms = 120'000;
  rule.max_rate_per_s = 1.0;
  config.rules.set_default_rule(rule);
  config.window_ms = 300'000;
  config.window_capacity = 32;
  config.robust_z.z_threshold = 4.0;
  config.robust_z.min_samples = 6;
  return config;
}

struct IngestStats {
  double seconds = 0.0;
  double records_per_s = 0.0;
  double push_p50_us = 0.0;
  double push_p99_us = 0.0;
  double flush_s = 0.0;
  size_t windows = 0;
  double close_us_per_window = 0.0;
  uint64_t checksum = 0;
};

// One serial engine pass with per-Push latency capture. Best-of-`reps` on
// the aggregate time (per-record latencies come from the fastest rep too:
// noise on a shared box is additive).
IngestStats BenchIngest(const stream::EventLog& log,
                        const stream::StreamConfig& config, int reps) {
  IngestStats best;
  best.seconds = 1e300;
  std::vector<double> latencies_us;
  for (int rep = 0; rep < reps; ++rep) {
    stream::StreamEngine engine(config);
    engine.set_field_name(log.field_name);
    std::vector<double> lat;
    lat.reserve(log.events.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const stream::StreamEvent& ev : log.events) {
      const auto p0 = std::chrono::steady_clock::now();
      const Status st = engine.Push(ev);
      lat.push_back(SecondsSince(p0) * 1e6);
      if (!st.ok()) {
        std::fprintf(stderr, "ingest: Push failed: %s\n",
                     st.ToString().c_str());
        std::exit(1);
      }
    }
    const double ingest_s = SecondsSince(t0);
    const auto f0 = std::chrono::steady_clock::now();
    const Status st = engine.Flush();
    const double flush_s = SecondsSince(f0);
    if (!st.ok()) {
      std::fprintf(stderr, "ingest: Flush failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
    stream::StreamOutput out = engine.TakeOutput();
    if (ingest_s < best.seconds) {
      best.seconds = ingest_s;
      best.flush_s = flush_s;
      best.windows = out.kpis.size();
      best.checksum = stream::OutputChecksum(out);
      latencies_us = std::move(lat);
    }
  }
  best.records_per_s = static_cast<double>(log.events.size()) / best.seconds;
  auto pct = [&latencies_us](double q) {
    const size_t k = static_cast<size_t>(
        q * static_cast<double>(latencies_us.size() - 1));
    std::nth_element(latencies_us.begin(), latencies_us.begin() + k,
                     latencies_us.end());
    return latencies_us[k];
  };
  best.push_p50_us = pct(0.50);
  best.push_p99_us = pct(0.99);
  // Window-close work happens inline in Push (watermark crossings) and in
  // Flush; amortize the whole pass over the closes for an honest per-close
  // figure.
  best.close_us_per_window =
      best.windows == 0
          ? 0.0
          : (best.seconds + best.flush_s) * 1e6 /
                static_cast<double>(best.windows);
  return best;
}

struct ReplayPoint {
  int threads = 0;
  double seconds = 0.0;
  double records_per_s = 0.0;
  double speedup = 1.0;
};

}  // namespace
}  // namespace sidq

int main(int argc, char** argv) {
  using namespace sidq;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }

  bench::Banner("BENCH stream", "record-at-a-time ingestion engine",
                "online cleaning must keep pace with device gateways "
                "(Karkouch et al.): watermarked windows, incremental "
                "Kalman, online outlier gate, deterministic replay");

  const size_t num_sensors = quick ? 16 : 64;
  const size_t samples = quick ? 120 : 400;
  const int reps = quick ? 1 : 3;
  const stream::EventLog log = MakeLog(num_sensors, samples);
  const stream::StreamConfig config = MakeConfig();
  std::printf("log: %zu events from %zu sensors, %u hardware threads%s\n\n",
              log.events.size(), num_sensors,
              std::thread::hardware_concurrency(), quick ? " (--quick)" : "");

  const IngestStats ingest = BenchIngest(log, config, reps);

  bench::Table ingest_table(
      {"metric", "value"});
  ingest_table.AddRow({"ingest seconds", bench::F3(ingest.seconds)});
  ingest_table.AddRow({"records/s", bench::FInt(ingest.records_per_s)});
  ingest_table.AddRow({"Push p50 (us)", bench::F2(ingest.push_p50_us)});
  ingest_table.AddRow({"Push p99 (us)", bench::F2(ingest.push_p99_us)});
  ingest_table.AddRow({"windows closed", std::to_string(ingest.windows)});
  ingest_table.AddRow(
      {"amortized us/window", bench::F1(ingest.close_us_per_window)});
  ingest_table.Print();

  // The batch reference must agree with the serial engine before any
  // parallel claim means anything.
  const uint64_t batch_checksum =
      stream::OutputChecksum(stream::BatchReference(log, config));
  if (batch_checksum != ingest.checksum) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: batch reference differs from the "
                 "serial stream engine\n");
    return 1;
  }

  std::vector<ReplayPoint> replay;
  double serial_replay_s = 0.0;
  for (const int threads : {1, 2, 8}) {
    stream::ReplayOptions options;
    options.num_threads = threads;
    double best_s = 1e300;
    uint64_t checksum = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const StatusOr<stream::StreamOutput> out =
          stream::Replay(log, config, options);
      const double secs = SecondsSince(t0);
      if (!out.ok()) {
        std::fprintf(stderr, "replay: %d threads failed: %s\n", threads,
                     out.status().ToString().c_str());
        return 1;
      }
      checksum = stream::OutputChecksum(*out);
      best_s = std::min(best_s, secs);
    }
    if (checksum != ingest.checksum) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION at %d threads: replay output "
                   "differs from the serial engine\n",
                   threads);
      return 1;
    }
    if (threads == 1) serial_replay_s = best_s;
    replay.push_back({threads, best_s,
                      static_cast<double>(log.events.size()) / best_s,
                      serial_replay_s / best_s});
  }

  bench::Table replay_table({"threads", "seconds", "records/s", "speedup"});
  for (const ReplayPoint& p : replay) {
    replay_table.AddRow({std::to_string(p.threads), bench::F3(p.seconds),
                         bench::FInt(p.records_per_s), bench::F2(p.speedup)});
  }
  replay_table.Print();

  std::printf(
      "determinism: serial engine, batch reference, and every replay "
      "worker count agree on checksum %llu\n\n",
      static_cast<unsigned long long>(ingest.checksum));

  // records_per_s is an absolute machine-dependent rate, deliberately NOT
  // named traj_per_s: bench_compare's --ratios-only mode would treat that
  // as host-portable. speedup is a same-machine quotient, so it is.
  std::string replay_json = "[";
  for (size_t i = 0; i < replay.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\":%d,\"seconds\":%.4f,"
                  "\"records_per_s\":%.0f,\"speedup\":%.2f}",
                  i == 0 ? "" : ",", replay[i].threads, replay[i].seconds,
                  replay[i].records_per_s, replay[i].speedup);
    replay_json += buf;
  }
  replay_json += "]";

  std::printf(
      "BENCH_JSON: {\"bench\":\"stream\",\"events\":%zu,\"sensors\":%zu,"
      "\"hardware_threads\":%u,\"determinism\":\"bit-identical\","
      "\"checksum\":\"%llu\","
      "\"ingest\":{\"seconds\":%.4f,\"records_per_s\":%.0f,"
      "\"push_p50_us\":%.2f,\"push_p99_us\":%.2f},"
      "\"window_close\":{\"windows\":%zu,\"close_us_per_window\":%.1f},"
      "\"replay\":%s}\n",
      log.events.size(), num_sensors, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(ingest.checksum), ingest.seconds,
      ingest.records_per_s, ingest.push_p50_us, ingest.push_p99_us,
      ingest.windows, ingest.close_us_per_window, replay_json.c_str());
  return 0;
}

// A1 -- ablations of the design choices DESIGN.md calls out: how sensitive
// are the headline results to the knobs each algorithm exposes?
//   (a) HMM map matching: candidate count and transition scale beta.
//   (b) Kalman smoothing: process-noise setting vs measurement noise.
//   (c) Stream anomaly detection: grid cell size (the E14 lesson).
//   (d) Trajectory calibration: anchor cell size vs corpus density.
//   (e) Similarity search: Sakoe-Chiba band width vs accuracy and cost.

#include <chrono>

#include "analytics/stream_anomaly.h"
#include "bench/bench_util.h"
#include "core/random.h"
#include "query/similarity.h"
#include "refine/hmm_map_matcher.h"
#include "refine/kalman.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/calibration.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("A1", "design-choice ablations",
                "each knob has a broad sweet spot; the defaults sit in it");

  Rng rng(21);
  sim::RoadNetwork net =
      sim::MakeGridRoadNetwork(10, 10, 160.0, 6.0, 0.0, &rng);
  sim::TrajectorySimulator::Options sopts;
  sopts.mean_speed_mps = 12.0;
  sim::TrajectorySimulator simulator(sopts, &rng);
  std::vector<Trajectory> truths;
  for (int i = 0; i < 6; ++i) {
    truths.push_back(simulator.RandomOnNetwork(net, 18, i).value());
  }
  std::vector<Trajectory> noisy;
  for (const auto& tr : truths) {
    noisy.push_back(sim::AddGpsNoise(tr, 15.0, &rng));
  }

  std::printf("-- (a) HMM map matching: max candidates x beta --\n");
  bench::Table table({"max candidates", "beta (m)", "rmse (m)"});
  for (size_t cands : {2, 4, 8}) {
    for (double beta : {5.0, 30.0, 120.0}) {
      refine::HmmMapMatcher::Options mopts;
      mopts.max_candidates = cands;
      mopts.beta_m = beta;
      refine::HmmMapMatcher matcher(&net, mopts);
      double err = 0.0;
      for (size_t i = 0; i < truths.size(); ++i) {
        err += RmseBetween(truths[i], matcher.Match(noisy[i])->matched)
                   .value();
      }
      table.AddRow({std::to_string(cands), bench::F1(beta),
                    bench::F2(err / truths.size())});
    }
  }
  table.Print();

  std::printf("-- (b) Kalman smoothing: process noise vs rmse (meas sigma "
              "15 m) --\n");
  bench::Table table2({"process noise q", "rmse (m)"});
  for (double q : {0.01, 0.1, 0.5, 2.0, 10.0, 100.0}) {
    refine::KalmanFilter2D::Options kopts;
    kopts.process_noise = q;
    const refine::KalmanFilter2D kf(kopts);
    double err = 0.0;
    for (size_t i = 0; i < truths.size(); ++i) {
      err += RmseBetween(truths[i], kf.Smooth(noisy[i]).value()).value();
    }
    table2.AddRow({bench::F2(q), bench::F2(err / truths.size())});
  }
  table2.Print();

  std::printf("-- (c) anomaly detection: cell size vs detection/false "
              "alarms --\n");
  bench::Table table3({"cell (m)", "intruders detected /10",
                       "false alarms /10"});
  {
    const sim::Fleet fleet = sim::MakeFleet(10, 10, 200.0, 50, 20, &rng);
    std::vector<Trajectory> train(fleet.trajectories.begin(),
                                  fleet.trajectories.end() - 10);
    std::vector<Trajectory> held(fleet.trajectories.end() - 10,
                                 fleet.trajectories.end());
    std::vector<Trajectory> intruders;
    for (int i = 0; i < 10; ++i) {
      intruders.push_back(simulator.RandomWaypoint(
          geometry::BBox(0, 0, 1800, 1800), 120, 500 + i));
    }
    for (double cell : {50.0, 100.0, 250.0, 500.0}) {
      analytics::StreamAnomalyDetector::Options dopts;
      dopts.cell_m = cell;
      dopts.min_support = 1;
      dopts.anomaly_threshold = 0.4;
      analytics::StreamAnomalyDetector detector(dopts);
      detector.Train(train);
      size_t det = 0, fa = 0;
      for (const auto& tr : intruders) {
        det += detector.IsAnomalous(tr) ? 1 : 0;
      }
      for (const auto& tr : held) fa += detector.IsAnomalous(tr) ? 1 : 0;
      table3.AddRow({bench::FInt(cell), std::to_string(det),
                     std::to_string(fa)});
    }
  }
  table3.Print();

  std::printf("-- (d) calibration: anchor cell size vs rmse --\n");
  bench::Table table4({"anchor cell (m)", "anchors", "rmse (m)"});
  for (double cell : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    uncertainty::TrajectoryCalibrator::Options copts;
    copts.anchor_cell_m = cell;
    copts.min_points_per_anchor = 3;
    copts.snap_radius_m = 60.0;
    uncertainty::TrajectoryCalibrator calibrator(copts);
    calibrator.BuildAnchors(truths);
    double err = 0.0;
    for (size_t i = 0; i < truths.size(); ++i) {
      err += RmseBetween(truths[i],
                         calibrator.Calibrate(noisy[i]).value())
                 .value();
    }
    table4.AddRow({bench::FInt(cell),
                   std::to_string(calibrator.num_anchors()),
                   bench::F2(err / truths.size())});
  }
  table4.Print();

  std::printf("-- (f) routing: Dijkstra vs A* expansions (same paths) --\n");
  {
    sim::RoadNetwork big =
        sim::MakeGridRoadNetwork(25, 25, 150.0, 5.0, 0.0, &rng);
    size_t dj = 0, as = 0;
    for (int t = 0; t < 40; ++t) {
      const NodeId a = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(big.num_nodes()) - 1));
      const NodeId b = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(big.num_nodes()) - 1));
      if (big.ShortestPath(a, b).ok()) dj += big.last_nodes_expanded;
      if (big.ShortestPathAStar(a, b).ok()) as += big.last_nodes_expanded;
    }
    std::printf("dijkstra expanded %zu nodes, A* expanded %zu (%.1fx "
                "fewer), identical path lengths\n\n",
                dj, as, static_cast<double>(dj) / as);
  }

  std::printf("-- (e) similarity search: DTW band vs accuracy and time --\n");
  bench::Table table5({"band", "rank-1 hits /20", "time (ms)"});
  {
    const sim::Fleet fleet = sim::MakeFleet(20, 20, 300.0, 20, 10, &rng);
    std::vector<Trajectory> collection;
    for (const auto& tr : fleet.trajectories) {
      collection.push_back(sim::AddGpsNoise(tr, 8.0, &rng));
    }
    for (int band : {2, 8, 32, -1}) {
      query::TrajectorySimilaritySearch::Options qopts;
      qopts.dtw_band = band;
      query::TrajectorySimilaritySearch search(qopts);
      search.Build(&collection);
      size_t hits = 0;
      const auto start = std::chrono::steady_clock::now();
      for (size_t q = 0; q < fleet.trajectories.size(); ++q) {
        const Trajectory queried =
            sim::AddGpsNoise(fleet.trajectories[q], 20.0, &rng);
        const auto knn = search.Knn(queried, 1);
        hits += knn.ok() && !knn->empty() && knn->front() == q ? 1 : 0;
      }
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      table5.AddRow({band < 0 ? "none" : std::to_string(band),
                     std::to_string(hits), bench::F1(ms)});
    }
  }
  table5.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

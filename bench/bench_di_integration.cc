// E10 -- Data Integration (Section 2.2.5): trajectory entity linking
// across ID systems vs noise and corpus size; trajectory+STID attachment
// quality; multi-source STID fusion with truth-discovery weights; and
// semantic annotation accuracy.

#include "bench/bench_util.h"
#include "core/random.h"
#include "integrate/attachment.h"
#include "integrate/entity_linking.h"
#include "integrate/semantic.h"
#include "integrate/stid_fusion.h"
#include "sim/noise.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/interpolation.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E10", "data integration",
                "spatiotemporal signatures link entities across ID systems; "
                "fusion weights unreliable sources down; semantics make raw "
                "traces interpretable");

  Rng rng(10);

  std::printf("-- entity linking accuracy vs gps noise (20 objects) --\n");
  bench::Table table({"gps sigma (m)", "linking accuracy",
                      "mean matched similarity"});
  const sim::Fleet fleet = sim::MakeFleet(10, 10, 180.0, 20, 18, &rng);
  for (double sigma : {5.0, 15.0, 30.0, 60.0}) {
    std::vector<Trajectory> a, b;
    for (const auto& tr : fleet.trajectories) {
      a.push_back(sim::AddGpsNoise(tr, sigma, &rng));
      b.push_back(sim::AddGpsNoise(tr, sigma, &rng));
    }
    const integrate::EntityLinker linker;
    const auto links = linker.Link(a, b);
    size_t correct = 0;
    double sim_sum = 0.0;
    for (const auto& link : links) {
      correct += link.a_index == link.b_index ? 1 : 0;
      sim_sum += link.similarity;
    }
    table.AddRow(
        {bench::F1(sigma),
         bench::F3(static_cast<double>(correct) / fleet.trajectories.size()),
         bench::F3(links.empty() ? 0.0 : sim_sum / links.size())});
  }
  table.Print();

  std::printf("-- trajectory+STID attachment (exposure annotation) --\n");
  const geometry::BBox region(0, 0, 2000, 2000);
  const auto field = sim::ScalarField::MakeRandom(region, 4, 12.0, 25.0, 400,
                                                  800, 3600, &rng);
  bench::Table table2({"sensors", "attachment rate", "attached value err"});
  for (int sensors : {10, 30, 90}) {
    const auto locs = sim::DeploySensors(region, sensors, &rng);
    const StDataset data = sim::AddValueNoise(
        sim::SampleField(field, locs, 0, 60'000, 40, "pm25"), 1.0, &rng);
    uncertainty::IdwInterpolator idw(&data);
    sim::TrajectorySimulator simulator({}, &rng);
    const Trajectory traj = simulator.RandomWaypoint(region, 400, 1);
    const auto enriched = integrate::AttachStid(traj, idw).value();
    double err = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < traj.size(); ++i) {
      if (!enriched.values[i].has_value()) continue;
      err += std::abs(*enriched.values[i] -
                      field.Value(traj[i].p, traj[i].t));
      ++n;
    }
    table2.AddRow({std::to_string(sensors),
                   bench::F3(enriched.AttachmentRate()),
                   bench::F2(n > 0 ? err / n : -1.0)});
  }
  table2.Print();

  std::printf("-- multi-source STID fusion: truth-discovery weights --\n");
  bench::Table table3({"source", "noise sigma", "learned weight"});
  {
    const auto locs = sim::DeploySensors(region, 40, &rng);
    const StDataset truth =
        sim::SampleField(field, locs, 0, 60'000, 20, "pm25");
    const std::vector<double> sigmas{1.0, 2.0, 8.0};
    std::vector<StDataset> sources;
    for (double s : sigmas) {
      sources.push_back(sim::AddValueNoise(truth, s, &rng));
    }
    const auto fused = integrate::GridFuser().Fuse(sources).value();
    for (size_t i = 0; i < sigmas.size(); ++i) {
      // Built via snprintf: `"S" + std::to_string(i)` trips a GCC 12
      // -Wrestrict false positive in the inlined libstdc++ operator+.
      char label[32];
      std::snprintf(label, sizeof(label), "S%zu", i);
      table3.AddRow({label, bench::F1(sigmas[i]),
                     bench::F2(fused.source_weights[i])});
    }
  }
  table3.Print();

  std::printf("-- semantic annotation: stay/POI recovery --\n");
  {
    // Build a trajectory with three known stops near known POIs.
    const std::vector<integrate::Poi> pois{
        {geometry::Point(500, 500), "Office", "work"},
        {geometry::Point(1500, 500), "Cafe", "food"},
        {geometry::Point(1000, 1500), "Gym", "sport"},
    };
    Trajectory tr(1);
    Timestamp t = 0;
    auto move_to = [&](geometry::Point from, geometry::Point to) {
      for (int i = 1; i <= 20; ++i) {
        tr.AppendUnordered(TrajectoryPoint(
            t, geometry::Lerp(from, to, i / 20.0)));
        t += 15'000;
      }
    };
    auto stay_at = [&](geometry::Point p) {
      for (int i = 0; i < 20; ++i) {
        tr.AppendUnordered(TrajectoryPoint(
            t, geometry::Point(p.x + rng.Gaussian(0, 8),
                               p.y + rng.Gaussian(0, 8))));
        t += 30'000;
      }
    };
    tr.AppendUnordered(TrajectoryPoint(t, geometry::Point(0, 0)));
    t += 15'000;
    move_to({0, 0}, pois[0].p);
    stay_at(pois[0].p);
    move_to(pois[0].p, pois[1].p);
    stay_at(pois[1].p);
    move_to(pois[1].p, pois[2].p);
    stay_at(pois[2].p);
    const integrate::SemanticAnnotator annotator(pois);
    const auto episodes = annotator.Annotate(tr).value();
    size_t stays = 0, labelled = 0;
    for (const auto& e : episodes) {
      if (e.kind == integrate::Episode::Kind::kStay) {
        ++stays;
        if (e.label != "unknown") ++labelled;
      }
    }
    std::printf("episodes: %zu, stays detected: %zu/3, stays labelled with "
                "a POI: %zu/3\n",
                episodes.size(), stays, labelled);
  }
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

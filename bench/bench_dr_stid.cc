// E12 -- STID Reduction (Section 2.2.6): lossless Golomb-Rice compression,
// lossy LTC vs error tolerance, and prediction-based transmission
// suppression (dual prediction).

#include "bench/bench_util.h"
#include "core/random.h"
#include "reduce/stid_compression.h"
#include "sim/sensor_field.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E12", "STID reduction",
                "lossless coding preserves values exactly; lossy coding "
                "buys higher ratios with bounded precision loss; "
                "prediction-based suppression cuts transmissions");

  Rng rng(12);
  const geometry::BBox region(0, 0, 3000, 3000);
  const auto field = sim::ScalarField::MakeRandom(region, 4, 12.0, 30.0, 400,
                                                  900, 3600, &rng);
  const auto locs = sim::DeploySensors(region, 20, &rng);
  const StDataset truth =
      sim::SampleField(field, locs, 0, 30'000, 400, "pm25");
  const StDataset observed = sim::AddValueNoise(truth, 0.3, &rng);

  std::printf("-- lossless Golomb-Rice (quantum sweep) --\n");
  bench::Table table({"quantum", "bytes/record", "ratio vs raw16",
                      "max abs err"});
  for (double quantum : {0.001, 0.01, 0.1}) {
    size_t bytes = 0, records = 0;
    double max_err = 0.0;
    for (const StSeries& s : observed.series()) {
      const auto enc = reduce::LosslessCompress(s, quantum);
      bytes += enc.TotalBytes();
      records += s.size();
      const auto dec =
          reduce::LosslessDecompress(enc, s.sensor(), s.loc()).value();
      for (size_t i = 0; i < s.size(); ++i) {
        max_err = std::max(max_err, std::abs(dec[i].value - s[i].value));
      }
    }
    table.AddRow({bench::F3(quantum),
                  bench::F2(static_cast<double>(bytes) / records),
                  bench::F1(16.0 * records / bytes), bench::F3(max_err)});
  }
  table.Print();

  std::printf("-- lossy LTC: ratio vs error bound --\n");
  bench::Table table2({"epsilon", "knots kept", "ratio vs raw16",
                       "max abs err"});
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    size_t knots = 0, records = 0, bytes = 0;
    double max_err = 0.0;
    for (const StSeries& s : observed.series()) {
      const auto enc = reduce::LtcCompress(s, eps).value();
      knots += enc.knot_times.size();
      bytes += enc.TotalBytes();
      records += s.size();
      std::vector<Timestamp> ts;
      for (const auto& r : s.records()) ts.push_back(r.t);
      const auto dec =
          reduce::LtcDecompress(enc, ts, s.sensor(), s.loc()).value();
      for (size_t i = 0; i < s.size(); ++i) {
        max_err = std::max(max_err, std::abs(dec[i].value - s[i].value));
      }
    }
    table2.AddRow({bench::F1(eps), std::to_string(knots),
                   bench::F1(16.0 * records / bytes), bench::F3(max_err)});
  }
  table2.Print();

  std::printf("-- prediction-based suppression (dual prediction) --\n");
  bench::Table table3({"epsilon", "suppression rate", "max abs err"});
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    double suppression = 0.0, max_err = 0.0;
    for (const StSeries& s : observed.series()) {
      const auto values = s.Values();
      const auto result = reduce::DualPredictionReduce(values, eps);
      suppression += result.SuppressionRate();
      for (size_t i = 0; i < values.size(); ++i) {
        max_err = std::max(max_err,
                           std::abs(result.reconstructed[i] - values[i]));
      }
    }
    table3.AddRow({bench::F1(eps),
                   bench::F3(suppression / observed.num_sensors()),
                   bench::F3(max_err)});
  }
  table3.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

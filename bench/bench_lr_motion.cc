// E3 -- Motion-based Location Refinement (Section 2.2.1): raw GPS vs
// Kalman filter, RTS smoother, particle filter (free and road-constrained)
// and HMM map matching, swept over GPS noise.

#include "bench/bench_util.h"
#include "core/random.h"
#include "refine/hmm_map_matcher.h"
#include "refine/kalman.h"
#include "refine/particle_filter.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E3", "motion-based location refinement",
                "introducing motion dynamics and map constraints improves "
                "positioning; gains grow with measurement noise");

  Rng rng(3);
  sim::RoadNetwork net = sim::MakeGridRoadNetwork(10, 10, 160.0, 6.0, 0.0,
                                                  &rng);
  sim::TrajectorySimulator::Options sopts;
  sopts.mean_speed_mps = 12.0;
  sim::TrajectorySimulator simulator(sopts, &rng);
  const int kTrajectories = 8;
  std::vector<Trajectory> truths;
  for (int i = 0; i < kTrajectories; ++i) {
    truths.push_back(simulator.RandomOnNetwork(net, 20, i).value());
  }

  refine::KalmanFilter2D::Options kopts;
  kopts.process_noise = 0.5;
  const refine::KalmanFilter2D kalman(kopts);
  refine::HmmMapMatcher matcher(&net);

  bench::Table table({"gps sigma (m)", "raw", "kalman", "rts smooth",
                      "particle", "particle+road", "hmm match"});

  for (double sigma : {5.0, 10.0, 20.0, 30.0, 40.0}) {
    double raw = 0, kf = 0, rts = 0, pf = 0, pfr = 0, hmm = 0;
    for (const Trajectory& truth : truths) {
      const Trajectory noisy = sim::AddGpsNoise(truth, sigma, &rng);
      raw += RmseBetween(truth, noisy).value();
      kf += RmseBetween(truth, kalman.Filter(noisy).value()).value();
      rts += RmseBetween(truth, kalman.Smooth(noisy).value()).value();
      refine::ParticleFilter2D::Options popts;
      popts.num_particles = 250;
      refine::ParticleFilter2D free_pf(popts, &rng);
      pf += RmseBetween(truth, free_pf.Filter(noisy).value()).value();
      refine::ParticleFilter2D road_pf(popts, &rng);
      road_pf.AttachNetwork(&net);
      pfr += RmseBetween(truth, road_pf.Filter(noisy).value()).value();
      refine::HmmMapMatcher::Options mopts;
      mopts.gps_sigma_m = sigma;
      mopts.candidate_radius_m = std::max(60.0, 3.0 * sigma);
      refine::HmmMapMatcher sized(&net, mopts);
      hmm += RmseBetween(truth, sized.Match(noisy)->matched).value();
    }
    const double n = kTrajectories;
    table.AddRow({bench::F1(sigma), bench::F2(raw / n), bench::F2(kf / n),
                  bench::F2(rts / n), bench::F2(pf / n), bench::F2(pfr / n),
                  bench::F2(hmm / n)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

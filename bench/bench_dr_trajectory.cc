// E11 -- Trajectory Data Reduction (Section 2.2.6): error-bounded
// simplification (offline DP vs online DR/OPW/SQUISH vs uniform baseline)
// swept over the SED bound, plus network-constrained compression rates.

#include "bench/bench_util.h"
#include "core/random.h"
#include "reduce/network_compression.h"
#include "reduce/reference_compression.h"
#include "reduce/simplify.h"
#include "refine/hmm_map_matcher.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E11", "trajectory data reduction",
                "compression ratio grows with the error bound; offline DP "
                "dominates online methods at equal bounds; map-matched "
                "trajectories compress dramatically");

  Rng rng(11);
  const sim::Fleet fleet = sim::MakeFleet(10, 10, 170.0, 10, 30, &rng);
  std::vector<Trajectory> noisy;
  for (const auto& tr : fleet.trajectories) {
    noisy.push_back(sim::AddGpsNoise(tr, 4.0, &rng));
  }

  std::printf("-- compression ratio (and max SED) vs error bound --\n");
  bench::Table table({"eps (m)", "DP-SED ratio", "DP maxSED", "SQUISH ratio",
                      "SQUISH maxSED", "DR ratio", "DR maxSED", "OPW ratio",
                      "OPW maxSED"});
  for (double eps : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    double dp_r = 0, dp_e = 0, sq_r = 0, sq_e = 0, dr_r = 0, dr_e = 0,
           ow_r = 0, ow_e = 0;
    for (const Trajectory& tr : noisy) {
      const auto dp = reduce::DouglasPeuckerSed(tr, eps).value();
      const auto sq = reduce::SquishE(tr, eps).value();
      const auto dr = reduce::DeadReckoning(tr, eps).value();
      const auto ow = reduce::OpeningWindow(tr, eps).value();
      dp_r += reduce::CompressionRatio(tr, dp);
      dp_e += reduce::MaxSedError(tr, dp);
      sq_r += reduce::CompressionRatio(tr, sq);
      sq_e += reduce::MaxSedError(tr, sq);
      dr_r += reduce::CompressionRatio(tr, dr);
      dr_e += reduce::MaxSedError(tr, dr);
      ow_r += reduce::CompressionRatio(tr, ow);
      ow_e += reduce::MaxSedError(tr, ow);
    }
    const double n = noisy.size();
    table.AddRow({bench::F1(eps), bench::F1(dp_r / n), bench::F1(dp_e / n),
                  bench::F1(sq_r / n), bench::F1(sq_e / n),
                  bench::F1(dr_r / n), bench::F1(dr_e / n),
                  bench::F1(ow_r / n), bench::F1(ow_e / n)});
  }
  table.Print();

  std::printf("-- uniform-sampling baseline at matched point budgets --\n");
  bench::Table table2({"eps (m)", "DP points", "DP maxSED",
                       "uniform maxSED @ same budget"});
  for (double eps : {10.0, 20.0, 40.0}) {
    double dp_pts = 0, dp_err = 0, uni_err = 0;
    for (const Trajectory& tr : noisy) {
      const auto dp = reduce::DouglasPeuckerSed(tr, eps).value();
      const size_t every =
          std::max<size_t>(1, tr.size() / std::max<size_t>(1, dp.size()));
      const auto uni = reduce::UniformSample(tr, every).value();
      dp_pts += dp.size();
      dp_err += reduce::MaxSedError(tr, dp);
      uni_err += reduce::MaxSedError(tr, uni);
    }
    const double n = noisy.size();
    table2.AddRow({bench::F1(eps), bench::F1(dp_pts / n),
                   bench::F1(dp_err / n), bench::F1(uni_err / n)});
  }
  table2.Print();

  std::printf("-- reference-based compression (REST-style) vs corpus "
              "size --\n");
  {
    // Commuter routes: new rides repeat historical paths.
    sim::TrajectorySimulator::Options ropts;
    ropts.mean_speed_mps = 12.0;
    ropts.speed_jitter = 0.0;
    sim::TrajectorySimulator rsim(ropts, &rng);
    std::vector<std::vector<NodeId>> routes;
    for (int r = 0; r < 8; ++r) {
      routes.push_back(sim::RandomRoute(fleet.network, 20, &rng).value());
    }
    bench::Table tabler({"references", "matched frac", "bytes/point",
                         "vs raw24"});
    for (size_t refs : {2, 4, 8}) {
      std::vector<Trajectory> corpus;
      for (size_t r = 0; r < refs; ++r) {
        corpus.push_back(
            rsim.AlongRoute(fleet.network, routes[r], 100 + r).value());
      }
      reduce::ReferenceCompressor compressor;
      compressor.BuildReferences(&corpus);
      double matched = 0.0;
      size_t bytes = 0, pts = 0;
      for (int ride = 0; ride < 8; ++ride) {
        const Trajectory noisy_ride = sim::AddGpsNoise(
            rsim.AlongRoute(fleet.network, routes[ride % routes.size()],
                            ride)
                .value(),
            4.0, &rng);
        const auto enc = compressor.Compress(noisy_ride).value();
        matched += enc.MatchedFraction();
        bytes += enc.ApproxBytes();
        pts += noisy_ride.size();
      }
      tabler.AddRow({std::to_string(refs), bench::F3(matched / 8),
                     bench::F2(static_cast<double>(bytes) / pts),
                     bench::F1(24.0 * pts / bytes)});
    }
    tabler.Print();
    std::printf("(rides on routes absent from the reference corpus fall "
                "back to literals)\n\n");
  }

  std::printf("-- network-constrained compression (map-matched rides) --\n");
  refine::HmmMapMatcher matcher(&fleet.network);
  size_t raw_bytes = 0, net_bytes = 0, points = 0;
  for (const Trajectory& tr : noisy) {
    const auto matched = matcher.Match(tr);
    if (!matched.ok()) continue;
    std::vector<Timestamp> times;
    for (const auto& pt : matched->matched.points()) times.push_back(pt.t);
    const auto compressed =
        reduce::CompressMatched(matched->edges, times).value();
    raw_bytes += reduce::RawPointBytes(tr.size());
    net_bytes += compressed.TotalBytes();
    points += tr.size();
  }
  std::printf("%zu points: raw %zu B, compressed %zu B -> %.1fx "
              "(%.1f bits/point)\n",
              points, raw_bytes, net_bytes,
              static_cast<double>(raw_bytes) / net_bytes,
              8.0 * net_bytes / points);
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

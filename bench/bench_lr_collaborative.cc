// E4 -- Collaborative Location Refinement (Section 2.2.1): independent
// positioning vs joint denoising (shared system bias) vs iterative
// optimisation over pairwise ranges, swept over the number of objects.

#include "bench/bench_util.h"
#include "core/random.h"
#include "refine/collaborative.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E4", "collaborative location refinement",
                "optimising all objects' positions together beats "
                "independent per-object estimates");

  Rng rng(4);
  bench::Table table({"objects", "independent err", "joint denoise err",
                      "iterative err"});

  for (int n : {5, 10, 20, 40, 80}) {
    double independent = 0.0, joint = 0.0, iterative = 0.0;
    const int trials = 20;
    for (int trial = 0; trial < trials; ++trial) {
      // Truth positions in a 300 m hall.
      std::vector<geometry::Point> truths;
      for (int i = 0; i < n; ++i) {
        truths.emplace_back(rng.Uniform(0, 300), rng.Uniform(0, 300));
      }
      // Scenario A: shared infrastructure bias + small random noise.
      const geometry::Point bias(rng.Gaussian(0, 8), rng.Gaussian(0, 8));
      std::vector<refine::JointDenoiseInput> inputs;
      for (int i = 0; i < n; ++i) {
        refine::JointDenoiseInput in;
        in.observed = truths[i] + bias +
                      geometry::Point(rng.Gaussian(0, 1.0),
                                      rng.Gaussian(0, 1.0));
        in.is_anchor = i < std::max(1, n / 5);
        in.anchor_truth = truths[i];
        inputs.push_back(in);
      }
      const auto denoised = refine::JointDenoise(inputs).value();
      // Scenario B: independent random errors + pairwise BLE ranges.
      std::vector<geometry::Point> observed;
      for (int i = 0; i < n; ++i) {
        observed.push_back(truths[i] + geometry::Point(rng.Gaussian(0, 6),
                                                       rng.Gaussian(0, 6)));
      }
      std::vector<refine::PairRange> ranges;
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          if (geometry::Distance(truths[i], truths[j]) > 120.0) continue;
          refine::PairRange r;
          r.i = i;
          r.j = j;
          r.distance = geometry::Distance(truths[i], truths[j]) +
                       rng.Gaussian(0, 0.5);
          r.sigma = 0.5;
          ranges.push_back(r);
        }
      }
      const auto refined =
          refine::IterativeRefiner().Refine(observed, ranges).value();
      for (int i = 0; i < n; ++i) {
        independent += geometry::Distance(inputs[i].observed, truths[i]) +
                       geometry::Distance(observed[i], truths[i]);
        joint += geometry::Distance(denoised[i], truths[i]);
        iterative += geometry::Distance(refined[i], truths[i]);
      }
    }
    const double total = static_cast<double>(n) * trials;
    table.AddRow({std::to_string(n), bench::F2(independent / (2 * total)),
                  bench::F2(joint / total), bench::F2(iterative / total)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

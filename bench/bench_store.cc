// BENCH store: durable segment-store throughput and recovery cost
// (DESIGN.md "Durability & recovery").
//
// Workload: a seeded synthetic STID stream (deterministic bytes, same
// every run) appended through the real POSIX Vfs into a scratch store
// under $TMPDIR.
//
//   append     sustained Append()+Commit throughput: rows/s and MB/s of
//              durable (fsync'd, manifested) columnar blocks.
//   scan       store-backed Scan() vs. the in-memory vector walk over the
//              identical records -- the price of reading through the
//              checksummed block path instead of RAM.
//   recovery   Store::Open wall time as the store grows across segment
//              counts, plus a reopen after an injected torn tail (the
//              power-cut case recovery exists for).
//
// The store-backed scan must reproduce the in-memory FNV-1a checksum over
// every record's raw bits; any mismatch or failed recovery exits 1, so
// this bench doubles as the store bit-identity gate.
// scripts/bench_json.py scrapes the BENCH_JSON line into BENCH_store.json.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/random.h"
#include "core/stid.h"
#include "store/store.h"
#include "store/vfs.h"

namespace sidq {
namespace {

constexpr uint64_t kSeed = 20220613;  // SIGMOD'22, for the record
constexpr size_t kRowBytes = 48;      // columnar footprint per record

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Deterministic synthetic stream: plausible ranges, exact bytes fixed by
// the seed. NaNs and negative zero ride along on purpose -- the store
// must round-trip them bit-exactly, not "approximately".
std::vector<StRecord> MakeRecords(size_t n) {
  Rng rng(kSeed);
  std::vector<StRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StRecord rec;
    rec.sensor = 1 + static_cast<SensorId>(i % 64);
    rec.t = static_cast<Timestamp>(i) * 1000;
    rec.loc = geometry::Point(rng.Uniform(0.0, 8000.0),
                              rng.Uniform(0.0, 8000.0));
    rec.value = rng.Uniform(-50.0, 500.0);
    rec.stddev = rng.Uniform(0.1, 4.0);
    if (i % 4096 == 7) rec.value = std::numeric_limits<double>::quiet_NaN();
    if (i % 4096 == 11) rec.value = -0.0;
    out.push_back(rec);
  }
  return out;
}

uint64_t MixBits(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;  // FNV-1a
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

uint64_t RecordChecksum(uint64_t h, const StRecord& rec) {
  h = MixBits(h, rec.sensor);
  h = MixBits(h, static_cast<uint64_t>(rec.t));
  h = MixBits(h, DoubleBits(rec.loc.x));
  h = MixBits(h, DoubleBits(rec.loc.y));
  h = MixBits(h, DoubleBits(rec.value));
  h = MixBits(h, DoubleBits(rec.stddev));
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

void RemoveTree(const std::string& dir) {
  store::Vfs* vfs = store::DefaultVfs();
  const StatusOr<std::vector<std::string>> names = vfs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      (void)vfs->Remove(dir + "/" + name);  // sidq: allow-ignored-status(best-effort scratch cleanup)
    }
  }
  ::rmdir(dir.c_str());
}

[[noreturn]] void Die(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_store: %s: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

struct RecoveryPoint {
  size_t segments = 0;
  uint64_t rows = 0;
  double open_ms = 0.0;
};

}  // namespace
}  // namespace sidq

int main(int argc, char** argv) {
  using namespace sidq;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }

  bench::Banner("BENCH store", "durable segment store",
                "IoT ingest must survive power cuts: checksummed columnar "
                "blocks, atomic manifest commits, reason-coded recovery "
                "(Mansouri et al.'s incompleteness/corruption threats)");

  const size_t rows = quick ? 50'000 : 400'000;
  const int reps = quick ? 1 : 3;
  const std::vector<StRecord> records = MakeRecords(rows);

  uint64_t mem_checksum = kFnvOffset;
  for (const StRecord& rec : records) {
    mem_checksum = RecordChecksum(mem_checksum, rec);
  }

  char tmpl[] = "/tmp/sidq_bench_store.XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "bench_store: mkdtemp failed\n");
    return 1;
  }
  const std::string scratch = tmpl;

  store::StoreOptions options;
  options.field_name = "bench";

  // --- append: durable ingest throughput (best of reps) -----------------
  double append_s = 1e300;
  const std::string append_dir = scratch + "/append";
  for (int rep = 0; rep < reps; ++rep) {
    RemoveTree(append_dir);
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, append_dir, options);
    if (!db.ok()) Die("append open", db.status());
    for (const StRecord& rec : records) {
      const Status st = (*db)->Append(rec);
      if (!st.ok()) Die("append", st);
    }
    const Status st = (*db)->Close();
    if (!st.ok()) Die("append commit", st);
    append_s = std::min(append_s, SecondsSince(t0));
  }
  const double append_rows_per_s = static_cast<double>(rows) / append_s;
  const double append_mb_per_s =
      static_cast<double>(rows * kRowBytes) / append_s / 1e6;

  // --- scan: store-backed vs. in-memory, with the bit-identity gate -----
  double scan_store_s = 1e300;
  uint64_t store_checksum = 0;
  uint64_t readable = 0;
  for (int rep = 0; rep < reps; ++rep) {
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, append_dir, options);
    if (!db.ok()) Die("scan open", db.status());
    uint64_t checksum = kFnvOffset;
    uint64_t n = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const Status st = (*db)->Scan([&](uint64_t, const StRecord& rec) {
      checksum = RecordChecksum(checksum, rec);
      ++n;
    });
    const double secs = SecondsSince(t0);
    if (!st.ok()) Die("scan", st);
    scan_store_s = std::min(scan_store_s, secs);
    store_checksum = checksum;
    readable = n;
  }

  double scan_mem_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t checksum = kFnvOffset;
    const auto t0 = std::chrono::steady_clock::now();
    for (const StRecord& rec : records) {
      checksum = RecordChecksum(checksum, rec);
    }
    const double secs = SecondsSince(t0);
    if (checksum != mem_checksum) {
      std::fprintf(stderr, "bench_store: in-memory checksum unstable\n");
      return 1;
    }
    scan_mem_s = std::min(scan_mem_s, secs);
  }

  if (readable != rows || store_checksum != mem_checksum) {
    std::fprintf(stderr,
                 "BIT-IDENTITY VIOLATION: store-backed scan (%llu rows, "
                 "checksum %llu) differs from the in-memory path (%zu rows, "
                 "checksum %llu)\n",
                 static_cast<unsigned long long>(readable),
                 static_cast<unsigned long long>(store_checksum), rows,
                 static_cast<unsigned long long>(mem_checksum));
    return 1;
  }

  // --- recovery: Open() wall time vs. segment count ---------------------
  // Fixed block size, growing row counts: more rows -> more segments.
  // Every block of every manifested segment is CRC-verified on open, so
  // this curve is the price of paranoia at startup.
  std::vector<RecoveryPoint> recovery;
  for (const size_t target_segments : {1u, 4u, 16u}) {
    store::StoreOptions ropts;
    ropts.field_name = "bench";
    ropts.block_records = 256;
    ropts.segment_target_blocks = 16;
    const size_t nrows =
        std::min(rows, target_segments * ropts.block_records *
                           ropts.segment_target_blocks);
    const std::string dir =
        scratch + "/recover" + std::to_string(target_segments);
    {
      StatusOr<std::unique_ptr<store::Store>> db =
          store::Store::Open(nullptr, dir, ropts);
      if (!db.ok()) Die("recovery build open", db.status());
      for (size_t i = 0; i < nrows; ++i) {
        const Status st = (*db)->Append(records[i]);
        if (!st.ok()) Die("recovery build append", st);
      }
      const Status st = (*db)->Close();
      if (!st.ok()) Die("recovery build commit", st);
    }
    double open_s = 1e300;
    uint64_t got = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<std::unique_ptr<store::Store>> db =
          store::Store::Open(nullptr, dir, ropts);
      const double secs = SecondsSince(t0);
      if (!db.ok()) Die("recovery open", db.status());
      got = (*db)->rows_readable();
      open_s = std::min(open_s, secs);
    }
    if (got != nrows) {
      std::fprintf(stderr,
                   "RECOVERY VIOLATION: reopened store serves %llu of %zu "
                   "rows\n",
                   static_cast<unsigned long long>(got), nrows);
      return 1;
    }
    recovery.push_back({target_segments, nrows, open_s * 1e3});
  }

  // Torn-tail reopen: append garbage past the committed manifest the way
  // a power cut mid-append would, and time the recovery that truncates it.
  const std::string torn_dir = scratch + "/recover16";
  {
    store::Vfs* vfs = store::DefaultVfs();
    // The torn append lands where a crash would put it: at the end of the
    // highest-numbered (actively written) segment.
    StatusOr<std::vector<std::string>> names = vfs->ListDir(torn_dir);
    if (!names.ok()) Die("torn listdir", names.status());
    std::string last_seg;
    for (const std::string& name : *names) {
      uint32_t seg = 0;
      if (store::ParseSegmentFileName(name, &seg)) last_seg = name;
    }
    if (last_seg.empty()) {
      std::fprintf(stderr, "bench_store: no segment files in %s\n",
                   torn_dir.c_str());
      return 1;
    }
    StatusOr<std::unique_ptr<store::WritableFile>> f = vfs->NewWritableFile(
        torn_dir + "/" + last_seg, store::WriteMode::kAppend);
    if (!f.ok()) Die("torn append open", f.status());
    Status st = (*f)->Append("SBLK torn by a power cut");
    if (st.ok()) st = (*f)->Close();
    if (!st.ok()) Die("torn append", st);
  }
  double torn_open_ms = 0.0;
  {
    store::StoreOptions ropts;
    ropts.field_name = "bench";
    ropts.block_records = 256;
    ropts.segment_target_blocks = 16;
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, torn_dir, ropts);
    torn_open_ms = SecondsSince(t0) * 1e3;
    if (!db.ok()) Die("torn reopen", db.status());
    if (!(*db)->recovery().tail_truncated ||
        (*db)->recovery().rows_lost != 0) {
      std::fprintf(stderr,
                   "RECOVERY VIOLATION: torn tail not truncated cleanly "
                   "(%s)\n",
                   (*db)->recovery().Summary().c_str());
      return 1;
    }
  }

  RemoveTree(append_dir);
  for (const size_t s : {1u, 4u, 16u}) {
    RemoveTree(scratch + "/recover" + std::to_string(s));
  }
  ::rmdir(scratch.c_str());

  bench::Table t({"metric", "value"});
  t.AddRow({"rows", std::to_string(rows)});
  t.AddRow({"append rows/s", bench::FInt(append_rows_per_s)});
  t.AddRow({"append MB/s (durable)", bench::F1(append_mb_per_s)});
  t.AddRow({"scan rows/s (store)",
            bench::FInt(static_cast<double>(rows) / scan_store_s)});
  t.AddRow({"scan rows/s (memory)",
            bench::FInt(static_cast<double>(rows) / scan_mem_s)});
  t.AddRow({"scan slowdown vs RAM", bench::F2(scan_store_s / scan_mem_s)});
  t.Print();

  bench::Table rt({"segments", "rows", "open ms"});
  for (const RecoveryPoint& p : recovery) {
    rt.AddRow({std::to_string(p.segments), std::to_string(p.rows),
               bench::F2(p.open_ms)});
  }
  rt.AddRow({"16 + torn tail", std::to_string(recovery.back().rows),
             bench::F2(torn_open_ms)});
  rt.Print();

  std::printf(
      "bit-identity: store-backed scan == in-memory path "
      "(checksum %llu over %zu rows)\n\n",
      static_cast<unsigned long long>(mem_checksum), rows);

  std::string recovery_json = "[";
  for (size_t i = 0; i < recovery.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"segments\":%zu,\"rows\":%llu,\"open_ms\":%.2f}",
                  i == 0 ? "" : ",", recovery[i].segments,
                  static_cast<unsigned long long>(recovery[i].rows),
                  recovery[i].open_ms);
    recovery_json += buf;
  }
  recovery_json += "]";

  // rows_per_s / mb_per_s are absolute machine-dependent rates;
  // scan_slowdown_vs_ram is a same-machine quotient, so bench_compare's
  // --ratios-only mode may hold it across hosts.
  std::printf(
      "BENCH_JSON: {\"bench\":\"store\",\"rows\":%zu,"
      "\"determinism\":\"bit-identical\",\"checksum\":\"%llu\","
      "\"append\":{\"seconds\":%.4f,\"rows_per_s\":%.0f,\"mb_per_s\":%.1f},"
      "\"scan\":{\"store_rows_per_s\":%.0f,\"mem_rows_per_s\":%.0f,"
      "\"scan_slowdown_vs_ram\":%.2f},"
      "\"recovery\":%s,\"torn_tail_open_ms\":%.2f}\n",
      rows, static_cast<unsigned long long>(mem_checksum), append_s,
      append_rows_per_s, append_mb_per_s,
      static_cast<double>(rows) / scan_store_s,
      static_cast<double>(rows) / scan_mem_s, scan_store_s / scan_mem_s,
      recovery_json.c_str(), torn_open_ms);
  return 0;
}

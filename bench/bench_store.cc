// BENCH store: durable segment-store throughput and recovery cost
// (DESIGN.md "Durability & recovery").
//
// Workload: a seeded synthetic STID stream (deterministic bytes, same
// every run) appended through the real POSIX Vfs into a scratch store
// under $TMPDIR.
//
//   append     sustained Append()+Commit throughput: rows/s and MB/s of
//              durable (fsync'd, manifested) columnar blocks.
//   scan       store-backed Scan() vs. the in-memory vector walk over the
//              identical records -- the price of reading through the
//              checksummed block path instead of RAM.
//   recovery   Store::Open wall time as the store grows across segment
//              counts, plus a reopen after an injected torn tail (the
//              power-cut case recovery exists for).
//
// The store-backed scan must reproduce the in-memory FNV-1a checksum over
// every record's raw bits; any mismatch or failed recovery exits 1, so
// this bench doubles as the store bit-identity gate.
// scripts/bench_json.py scrapes the BENCH_JSON line into BENCH_store.json.

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/random.h"
#include "core/stid.h"
#include "store/store.h"
#include "store/vfs.h"

namespace sidq {
namespace {

constexpr uint64_t kSeed = 20220613;  // SIGMOD'22, for the record
constexpr size_t kRowBytes = 48;      // columnar footprint per record

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Deterministic synthetic stream: plausible ranges, exact bytes fixed by
// the seed. NaNs and negative zero ride along on purpose -- the store
// must round-trip them bit-exactly, not "approximately". A generator
// rather than a vector so the ≫-RAM fleet section can replay the exact
// byte stream twice (append, then reference checksum) without ever
// materializing it.
class RecordStream {
 public:
  RecordStream() : rng_(kSeed) {}

  StRecord Next() {
    const size_t i = i_++;
    StRecord rec;
    rec.sensor = 1 + static_cast<SensorId>(i % 64);
    rec.t = static_cast<Timestamp>(i) * 1000;
    rec.loc = geometry::Point(rng_.Uniform(0.0, 8000.0),
                              rng_.Uniform(0.0, 8000.0));
    rec.value = rng_.Uniform(-50.0, 500.0);
    rec.stddev = rng_.Uniform(0.1, 4.0);
    if (i % 4096 == 7) rec.value = std::numeric_limits<double>::quiet_NaN();
    if (i % 4096 == 11) rec.value = -0.0;
    return rec;
  }

 private:
  Rng rng_;
  size_t i_ = 0;
};

std::vector<StRecord> MakeRecords(size_t n) {
  RecordStream stream;
  std::vector<StRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(stream.Next());
  return out;
}

uint64_t MixBits(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;  // FNV-1a
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

uint64_t RecordChecksum(uint64_t h, const StRecord& rec) {
  h = MixBits(h, rec.sensor);
  h = MixBits(h, static_cast<uint64_t>(rec.t));
  h = MixBits(h, DoubleBits(rec.loc.x));
  h = MixBits(h, DoubleBits(rec.loc.y));
  h = MixBits(h, DoubleBits(rec.value));
  h = MixBits(h, DoubleBits(rec.stddev));
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

void RemoveTree(const std::string& dir) {
  store::Vfs* vfs = store::DefaultVfs();
  const StatusOr<std::vector<std::string>> names = vfs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      (void)vfs->Remove(dir + "/" + name);  // sidq: allow-ignored-status(best-effort scratch cleanup)
    }
  }
  ::rmdir(dir.c_str());
}

[[noreturn]] void Die(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_store: %s: %s\n", what, st.ToString().c_str());
  std::exit(1);
}

struct RecoveryPoint {
  size_t segments = 0;
  uint64_t rows = 0;
  double open_ms = 0.0;
};

struct CachePoint {
  size_t budget_bytes = 0;  // 0 = unbounded
  double cold_s = 0.0;      // first pass after open (recovery pre-warms)
  double warm_s = 0.0;      // second pass, steady-state hit rate
  double hit_ratio = 0.0;
  uint64_t resident_bytes = 0;
};

// Process peak RSS in bytes (ru_maxrss is KiB on Linux). A high-water
// mark: deltas across a section bound that section's extra footprint.
uint64_t PeakRssBytes() {
  struct rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

// Flips one byte inside the second block of a rolled segment, through the
// Vfs only (read, mutate, rewrite -- the bench runs on the real
// filesystem, which has no CorruptByte hook).
void CorruptSecondBlock(store::Vfs* vfs, const std::string& path) {
  StatusOr<std::string> data = vfs->ReadFile(path);
  if (!data.ok()) Die("corrupt read", data.status());
  const store::ParsedBlock first = store::ParseBlockAt(*data, 0);
  if (first.defect != store::BlockDefect::kNone ||
      first.bytes_consumed + 20 >= data->size()) {
    std::fprintf(stderr, "bench_store: cannot locate block 1 in %s\n",
                 path.c_str());
    std::exit(1);
  }
  (*data)[first.bytes_consumed + 20] ^= 0x10;
  StatusOr<std::unique_ptr<store::WritableFile>> f =
      vfs->NewWritableFile(path, store::WriteMode::kTruncate);
  if (!f.ok()) Die("corrupt reopen", f.status());
  Status st = (*f)->Append(*data);
  if (st.ok()) st = (*f)->Close();
  if (!st.ok()) Die("corrupt rewrite", st);
}

}  // namespace
}  // namespace sidq

int main(int argc, char** argv) {
  using namespace sidq;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }

  bench::Banner("BENCH store", "durable segment store",
                "IoT ingest must survive power cuts: checksummed columnar "
                "blocks, atomic manifest commits, reason-coded recovery "
                "(Mansouri et al.'s incompleteness/corruption threats)");

  const size_t rows = quick ? 50'000 : 400'000;
  const int reps = quick ? 1 : 3;
  const std::vector<StRecord> records = MakeRecords(rows);

  uint64_t mem_checksum = kFnvOffset;
  for (const StRecord& rec : records) {
    mem_checksum = RecordChecksum(mem_checksum, rec);
  }

  char tmpl[] = "/tmp/sidq_bench_store.XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "bench_store: mkdtemp failed\n");
    return 1;
  }
  const std::string scratch = tmpl;

  store::StoreOptions options;
  options.field_name = "bench";

  // --- append: durable ingest throughput (best of reps) -----------------
  double append_s = 1e300;
  const std::string append_dir = scratch + "/append";
  for (int rep = 0; rep < reps; ++rep) {
    RemoveTree(append_dir);
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, append_dir, options);
    if (!db.ok()) Die("append open", db.status());
    for (const StRecord& rec : records) {
      const Status st = (*db)->Append(rec);
      if (!st.ok()) Die("append", st);
    }
    const Status st = (*db)->Close();
    if (!st.ok()) Die("append commit", st);
    append_s = std::min(append_s, SecondsSince(t0));
  }
  const double append_rows_per_s = static_cast<double>(rows) / append_s;
  const double append_mb_per_s =
      static_cast<double>(rows * kRowBytes) / append_s / 1e6;

  // --- scan: store-backed vs. in-memory, with the bit-identity gate -----
  double scan_store_s = 1e300;
  uint64_t store_checksum = 0;
  uint64_t readable = 0;
  for (int rep = 0; rep < reps; ++rep) {
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, append_dir, options);
    if (!db.ok()) Die("scan open", db.status());
    uint64_t checksum = kFnvOffset;
    uint64_t n = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const Status st = (*db)->Scan([&](uint64_t, const StRecord& rec) {
      checksum = RecordChecksum(checksum, rec);
      ++n;
    });
    const double secs = SecondsSince(t0);
    if (!st.ok()) Die("scan", st);
    scan_store_s = std::min(scan_store_s, secs);
    store_checksum = checksum;
    readable = n;
  }

  double scan_mem_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t checksum = kFnvOffset;
    const auto t0 = std::chrono::steady_clock::now();
    for (const StRecord& rec : records) {
      checksum = RecordChecksum(checksum, rec);
    }
    const double secs = SecondsSince(t0);
    if (checksum != mem_checksum) {
      std::fprintf(stderr, "bench_store: in-memory checksum unstable\n");
      return 1;
    }
    scan_mem_s = std::min(scan_mem_s, secs);
  }

  if (readable != rows || store_checksum != mem_checksum) {
    std::fprintf(stderr,
                 "BIT-IDENTITY VIOLATION: store-backed scan (%llu rows, "
                 "checksum %llu) differs from the in-memory path (%zu rows, "
                 "checksum %llu)\n",
                 static_cast<unsigned long long>(readable),
                 static_cast<unsigned long long>(store_checksum), rows,
                 static_cast<unsigned long long>(mem_checksum));
    return 1;
  }

  // --- recovery: Open() wall time vs. segment count ---------------------
  // Fixed block size, growing row counts: more rows -> more segments.
  // Every block of every manifested segment is CRC-verified on open, so
  // this curve is the price of paranoia at startup.
  std::vector<RecoveryPoint> recovery;
  for (const size_t target_segments : {1u, 4u, 16u}) {
    store::StoreOptions ropts;
    ropts.field_name = "bench";
    ropts.block_records = 256;
    ropts.segment_target_blocks = 16;
    const size_t nrows =
        std::min(rows, target_segments * ropts.block_records *
                           ropts.segment_target_blocks);
    const std::string dir =
        scratch + "/recover" + std::to_string(target_segments);
    {
      StatusOr<std::unique_ptr<store::Store>> db =
          store::Store::Open(nullptr, dir, ropts);
      if (!db.ok()) Die("recovery build open", db.status());
      for (size_t i = 0; i < nrows; ++i) {
        const Status st = (*db)->Append(records[i]);
        if (!st.ok()) Die("recovery build append", st);
      }
      const Status st = (*db)->Close();
      if (!st.ok()) Die("recovery build commit", st);
    }
    double open_s = 1e300;
    uint64_t got = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<std::unique_ptr<store::Store>> db =
          store::Store::Open(nullptr, dir, ropts);
      const double secs = SecondsSince(t0);
      if (!db.ok()) Die("recovery open", db.status());
      got = (*db)->rows_readable();
      open_s = std::min(open_s, secs);
    }
    if (got != nrows) {
      std::fprintf(stderr,
                   "RECOVERY VIOLATION: reopened store serves %llu of %zu "
                   "rows\n",
                   static_cast<unsigned long long>(got), nrows);
      return 1;
    }
    recovery.push_back({target_segments, nrows, open_s * 1e3});
  }

  // Torn-tail reopen: append garbage past the committed manifest the way
  // a power cut mid-append would, and time the recovery that truncates it.
  const std::string torn_dir = scratch + "/recover16";
  {
    store::Vfs* vfs = store::DefaultVfs();
    // The torn append lands where a crash would put it: at the end of the
    // highest-numbered (actively written) segment.
    StatusOr<std::vector<std::string>> names = vfs->ListDir(torn_dir);
    if (!names.ok()) Die("torn listdir", names.status());
    std::string last_seg;
    for (const std::string& name : *names) {
      uint32_t seg = 0;
      if (store::ParseSegmentFileName(name, &seg)) last_seg = name;
    }
    if (last_seg.empty()) {
      std::fprintf(stderr, "bench_store: no segment files in %s\n",
                   torn_dir.c_str());
      return 1;
    }
    StatusOr<std::unique_ptr<store::WritableFile>> f = vfs->NewWritableFile(
        torn_dir + "/" + last_seg, store::WriteMode::kAppend);
    if (!f.ok()) Die("torn append open", f.status());
    Status st = (*f)->Append("SBLK torn by a power cut");
    if (st.ok()) st = (*f)->Close();
    if (!st.ok()) Die("torn append", st);
  }
  double torn_open_ms = 0.0;
  {
    store::StoreOptions ropts;
    ropts.field_name = "bench";
    ropts.block_records = 256;
    ropts.segment_target_blocks = 16;
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, torn_dir, ropts);
    torn_open_ms = SecondsSince(t0) * 1e3;
    if (!db.ok()) Die("torn reopen", db.status());
    if (!(*db)->recovery().tail_truncated ||
        (*db)->recovery().rows_lost != 0) {
      std::fprintf(stderr,
                   "RECOVERY VIOLATION: torn tail not truncated cleanly "
                   "(%s)\n",
                   (*db)->recovery().Summary().c_str());
      return 1;
    }
  }

  // --- cached scan: hit ratio and latency vs. block-cache budget --------
  // Same append_dir store, opened under shrinking cache budgets. Two
  // passes per budget: Open's recovery verification pre-warms whatever
  // fits, so pass 1 is "as warm as the budget allows" and pass 2 is
  // steady state. Every pass must reproduce the in-memory checksum --
  // a bounded cache changes timing, never bytes.
  std::vector<CachePoint> cache_curve;
  double cached_warm_64mb_s = 0.0;
  for (const size_t budget : {size_t{1} << 20, size_t{8} << 20,
                              size_t{64} << 20, size_t{0}}) {
    store::StoreOptions copts = options;
    copts.cache_bytes = budget;
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, append_dir, copts);
    if (!db.ok()) Die("cached scan open", db.status());
    CachePoint point;
    point.budget_bytes = budget;
    for (int pass = 0; pass < 2; ++pass) {
      uint64_t checksum = kFnvOffset;
      uint64_t n = 0;
      const auto t0 = std::chrono::steady_clock::now();
      const Status st = (*db)->Scan([&](uint64_t, const StRecord& rec) {
        checksum = RecordChecksum(checksum, rec);
        ++n;
      });
      const double secs = SecondsSince(t0);
      if (!st.ok()) Die("cached scan", st);
      if (n != rows || checksum != mem_checksum) {
        std::fprintf(stderr,
                     "BIT-IDENTITY VIOLATION: scan under %zu-byte cache "
                     "budget diverged from the in-memory path\n",
                     budget);
        return 1;
      }
      (pass == 0 ? point.cold_s : point.warm_s) = secs;
    }
    const store::BlockCache::Stats stats = (*db)->cache_stats();
    point.hit_ratio = stats.hits + stats.misses == 0
                          ? 0.0
                          : static_cast<double>(stats.hits) /
                                static_cast<double>(stats.hits + stats.misses);
    point.resident_bytes = stats.resident_bytes;
    // The budget is a hard bound on decoded bytes held, not a hint. No
    // pins are live between scans, so resident == unpinned here.
    if (budget > 0 && stats.resident_bytes > budget) {
      std::fprintf(stderr,
                   "CACHE BUDGET VIOLATION: %llu resident bytes exceed the "
                   "%zu-byte budget\n",
                   static_cast<unsigned long long>(stats.resident_bytes),
                   budget);
      return 1;
    }
    if (budget == 0 && stats.evictions != 0) {
      std::fprintf(stderr,
                   "CACHE BUDGET VIOLATION: unbounded cache evicted %llu "
                   "blocks\n",
                   static_cast<unsigned long long>(stats.evictions));
      return 1;
    }
    if (budget == (size_t{64} << 20)) cached_warm_64mb_s = point.warm_s;
    cache_curve.push_back(point);
  }
  const double cached_scan_slowdown = cached_warm_64mb_s / scan_mem_s;

  // --- compaction: reclaim throughput on a quarantine-pocked store ------
  // Build a multi-segment store, flip one byte in an interior block of a
  // few rolled segments (media corruption), let recovery quarantine them,
  // then time the Compact() pass that rewrites those segments without the
  // dead bytes. The readable rows must be bit-identical before and after:
  // maintenance reclaims space, it never touches data.
  const std::string compact_dir = scratch + "/compact";
  const std::vector<uint32_t> pocked_segs = {0, 2, 4};
  store::StoreOptions popts;
  popts.field_name = "bench";
  popts.block_records = 256;
  popts.segment_target_blocks = 16;
  {
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, compact_dir, popts);
    if (!db.ok()) Die("compact build open", db.status());
    for (const StRecord& rec : records) {
      const Status st = (*db)->Append(rec);
      if (!st.ok()) Die("compact build append", st);
    }
    const Status st = (*db)->Close();
    if (!st.ok()) Die("compact build commit", st);
  }
  store::Vfs* vfs = store::DefaultVfs();
  uint64_t compact_input_bytes = 0;
  for (const uint32_t seg : pocked_segs) {
    const std::string path = compact_dir + "/" + store::SegmentFileName(seg);
    CorruptSecondBlock(vfs, path);
    const StatusOr<uint64_t> size = vfs->FileSize(path);
    if (!size.ok()) Die("compact stat", size.status());
    compact_input_bytes += *size;
  }
  {
    // Recovery quarantines the corrupt blocks; Close commits the verdicts.
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, compact_dir, popts);
    if (!db.ok()) Die("compact recover open", db.status());
    if ((*db)->recovery().quarantined.size() != pocked_segs.size()) {
      std::fprintf(stderr,
                   "bench_store: expected %zu quarantined blocks, got %zu\n",
                   pocked_segs.size(), (*db)->recovery().quarantined.size());
      return 1;
    }
    const Status st = (*db)->Close();
    if (!st.ok()) Die("compact recover commit", st);
  }
  double compact_s = 0.0;
  store::CompactionReport compact_report;
  uint64_t compact_checksum_pre = kFnvOffset;
  uint64_t compact_rows_pre = 0;
  {
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, compact_dir, popts);
    if (!db.ok()) Die("compact open", db.status());
    Status st = (*db)->Scan([&](uint64_t, const StRecord& rec) {
      compact_checksum_pre = RecordChecksum(compact_checksum_pre, rec);
      ++compact_rows_pre;
    });
    if (!st.ok()) Die("compact pre-scan", st);
    const auto t0 = std::chrono::steady_clock::now();
    st = (*db)->Compact(&compact_report);
    compact_s = SecondsSince(t0);
    if (!st.ok()) Die("compact", st);
    uint64_t checksum = kFnvOffset;
    uint64_t n = 0;
    st = (*db)->Scan([&](uint64_t, const StRecord& rec) {
      checksum = RecordChecksum(checksum, rec);
      ++n;
    });
    if (!st.ok()) Die("compact post-scan", st);
    if (n != compact_rows_pre || checksum != compact_checksum_pre) {
      std::fprintf(stderr,
                   "BIT-IDENTITY VIOLATION: compaction changed the readable "
                   "rows\n");
      return 1;
    }
    st = (*db)->Close();
    if (!st.ok()) Die("compact close", st);
  }
  if (compact_report.segments_compacted != pocked_segs.size() ||
      compact_report.blocks_dropped != pocked_segs.size() ||
      compact_report.bytes_reclaimed == 0) {
    std::fprintf(stderr,
                 "bench_store: compaction report off (%u segments, %llu "
                 "dropped, %llu reclaimed)\n",
                 compact_report.segments_compacted,
                 static_cast<unsigned long long>(compact_report.blocks_dropped),
                 static_cast<unsigned long long>(
                     compact_report.bytes_reclaimed));
    return 1;
  }
  {
    // Reopen: the compacted generation must serve the same rows durably.
    StatusOr<std::unique_ptr<store::Store>> db =
        store::Store::Open(nullptr, compact_dir, popts);
    if (!db.ok()) Die("compact reopen", db.status());
    uint64_t checksum = kFnvOffset;
    uint64_t n = 0;
    const Status st = (*db)->Scan([&](uint64_t, const StRecord& rec) {
      checksum = RecordChecksum(checksum, rec);
      ++n;
    });
    if (!st.ok()) Die("compact reopen scan", st);
    if (n != compact_rows_pre || checksum != compact_checksum_pre) {
      std::fprintf(stderr,
                   "BIT-IDENTITY VIOLATION: reopened compacted store "
                   "diverged\n");
      return 1;
    }
  }
  const double compact_mb_per_s =
      static_cast<double>(compact_input_bytes) / compact_s / 1e6;

  // --- fleet: ≫-RAM scan under a fixed cache budget (full runs only) ----
  // 10M rows (~480 MB on disk) streamed through the store and scanned
  // under the default 64 MB budget. The record stream is regenerated for
  // the reference checksum instead of materialized, so the bench itself
  // stays small; the RSS high-water delta across append+scan must stay
  // far below the dataset, or the out-of-core claim is false.
  const size_t fleet_rows = quick ? 0 : 10'000'000;
  double fleet_append_s = 0.0;
  double fleet_scan_s = 0.0;
  double fleet_hit_ratio = 0.0;
  uint64_t fleet_rss_delta = 0;
  uint64_t fleet_data_bytes = fleet_rows * kRowBytes;
  if (fleet_rows > 0) {
    uint64_t fleet_checksum = kFnvOffset;
    {
      RecordStream stream;
      for (size_t i = 0; i < fleet_rows; ++i) {
        fleet_checksum = RecordChecksum(fleet_checksum, stream.Next());
      }
    }
    const std::string fleet_dir = scratch + "/fleet";
    const uint64_t rss_before = PeakRssBytes();
    {
      store::StoreOptions fopts;
      fopts.field_name = "bench";
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<std::unique_ptr<store::Store>> db =
          store::Store::Open(nullptr, fleet_dir, fopts);
      if (!db.ok()) Die("fleet open", db.status());
      RecordStream stream;
      for (size_t i = 0; i < fleet_rows; ++i) {
        const Status st = (*db)->Append(stream.Next());
        if (!st.ok()) Die("fleet append", st);
      }
      const Status st = (*db)->Close();
      if (!st.ok()) Die("fleet commit", st);
      fleet_append_s = SecondsSince(t0);
    }
    {
      store::StoreOptions fopts;
      fopts.field_name = "bench";
      StatusOr<std::unique_ptr<store::Store>> db =
          store::Store::Open(nullptr, fleet_dir, fopts);
      if (!db.ok()) Die("fleet reopen", db.status());
      uint64_t checksum = kFnvOffset;
      uint64_t n = 0;
      const auto t0 = std::chrono::steady_clock::now();
      const Status st = (*db)->Scan([&](uint64_t, const StRecord& rec) {
        checksum = RecordChecksum(checksum, rec);
        ++n;
      });
      fleet_scan_s = SecondsSince(t0);
      if (!st.ok()) Die("fleet scan", st);
      if (n != fleet_rows || checksum != fleet_checksum) {
        std::fprintf(stderr,
                     "BIT-IDENTITY VIOLATION: fleet scan (%llu rows) "
                     "diverged from the streamed reference\n",
                     static_cast<unsigned long long>(n));
        return 1;
      }
      const store::BlockCache::Stats stats = (*db)->cache_stats();
      fleet_hit_ratio = stats.hits + stats.misses == 0
                            ? 0.0
                            : static_cast<double>(stats.hits) /
                                  static_cast<double>(stats.hits +
                                                      stats.misses);
      if (stats.resident_bytes > fopts.cache_bytes) {
        std::fprintf(stderr,
                     "CACHE BUDGET VIOLATION: fleet scan holds %llu "
                     "resident bytes over the %zu-byte budget\n",
                     static_cast<unsigned long long>(stats.resident_bytes),
                     fopts.cache_bytes);
        return 1;
      }
    }
    fleet_rss_delta = PeakRssBytes() - rss_before;
    // Peak extra footprint: cache budget + the bounded window of live
    // segment mappings + transients. Half the dataset is a loose ceiling
    // that still proves the scan never loaded the store into RAM.
    if (fleet_rss_delta > fleet_data_bytes / 2) {
      std::fprintf(stderr,
                   "RSS VIOLATION: fleet append+scan grew peak RSS by "
                   "%.1f MB against a %.1f MB dataset under a 64 MB cache "
                   "budget\n",
                   static_cast<double>(fleet_rss_delta) / 1e6,
                   static_cast<double>(fleet_data_bytes) / 1e6);
      return 1;
    }
    RemoveTree(fleet_dir);
  }

  RemoveTree(append_dir);
  RemoveTree(compact_dir);
  for (const size_t s : {1u, 4u, 16u}) {
    RemoveTree(scratch + "/recover" + std::to_string(s));
  }
  ::rmdir(scratch.c_str());

  bench::Table t({"metric", "value"});
  t.AddRow({"rows", std::to_string(rows)});
  t.AddRow({"append rows/s", bench::FInt(append_rows_per_s)});
  t.AddRow({"append MB/s (durable)", bench::F1(append_mb_per_s)});
  t.AddRow({"scan rows/s (store)",
            bench::FInt(static_cast<double>(rows) / scan_store_s)});
  t.AddRow({"scan rows/s (memory)",
            bench::FInt(static_cast<double>(rows) / scan_mem_s)});
  t.AddRow({"scan slowdown vs RAM", bench::F2(scan_store_s / scan_mem_s)});
  t.AddRow({"cached scan slowdown vs RAM", bench::F2(cached_scan_slowdown)});
  t.AddRow({"compaction MB/s", bench::F1(compact_mb_per_s)});
  t.AddRow({"compaction bytes reclaimed",
            std::to_string(compact_report.bytes_reclaimed)});
  t.Print();

  bench::Table ct({"cache budget", "pass1 ms", "pass2 ms", "hit ratio",
                   "resident MB"});
  for (const CachePoint& p : cache_curve) {
    ct.AddRow({p.budget_bytes == 0
                   ? std::string("unbounded")
                   : std::to_string(p.budget_bytes >> 20) + " MB",
               bench::F2(p.cold_s * 1e3), bench::F2(p.warm_s * 1e3),
               bench::F2(p.hit_ratio),
               bench::F2(static_cast<double>(p.resident_bytes) / 1e6)});
  }
  ct.Print();

  if (fleet_rows > 0) {
    bench::Table ft({"fleet metric", "value"});
    ft.AddRow({"rows", std::to_string(fleet_rows)});
    ft.AddRow({"data MB",
               bench::F1(static_cast<double>(fleet_data_bytes) / 1e6)});
    ft.AddRow({"append rows/s",
               bench::FInt(static_cast<double>(fleet_rows) / fleet_append_s)});
    ft.AddRow({"scan rows/s (64 MB cache)",
               bench::FInt(static_cast<double>(fleet_rows) / fleet_scan_s)});
    ft.AddRow({"cache hit ratio", bench::F2(fleet_hit_ratio)});
    ft.AddRow({"peak RSS delta MB",
               bench::F1(static_cast<double>(fleet_rss_delta) / 1e6)});
    ft.Print();
  }

  bench::Table rt({"segments", "rows", "open ms"});
  for (const RecoveryPoint& p : recovery) {
    rt.AddRow({std::to_string(p.segments), std::to_string(p.rows),
               bench::F2(p.open_ms)});
  }
  rt.AddRow({"16 + torn tail", std::to_string(recovery.back().rows),
             bench::F2(torn_open_ms)});
  rt.Print();

  std::printf(
      "bit-identity: store-backed scan == in-memory path "
      "(checksum %llu over %zu rows)\n\n",
      static_cast<unsigned long long>(mem_checksum), rows);

  std::string recovery_json = "[";
  for (size_t i = 0; i < recovery.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"segments\":%zu,\"rows\":%llu,\"open_ms\":%.2f}",
                  i == 0 ? "" : ",", recovery[i].segments,
                  static_cast<unsigned long long>(recovery[i].rows),
                  recovery[i].open_ms);
    recovery_json += buf;
  }
  recovery_json += "]";

  std::string cache_json = "[";
  for (size_t i = 0; i < cache_curve.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"budget_mb\":%zu,\"pass1_ms\":%.2f,\"pass2_ms\":%.2f,"
                  "\"hit_ratio\":%.3f}",
                  i == 0 ? "" : ",", cache_curve[i].budget_bytes >> 20,
                  cache_curve[i].cold_s * 1e3, cache_curve[i].warm_s * 1e3,
                  cache_curve[i].hit_ratio);
    cache_json += buf;
  }
  cache_json += "]";

  std::string fleet_json;
  if (fleet_rows > 0) {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        ",\"fleet\":{\"rows\":%zu,\"data_mb\":%.0f,\"cache_mb\":64,"
        "\"append_rows_per_s\":%.0f,\"scan_rows_per_s\":%.0f,"
        "\"hit_ratio\":%.3f,\"peak_rss_delta_mb\":%.1f,"
        "\"determinism\":\"bit-identical\"}",
        fleet_rows, static_cast<double>(fleet_data_bytes) / 1e6,
        static_cast<double>(fleet_rows) / fleet_append_s,
        static_cast<double>(fleet_rows) / fleet_scan_s, fleet_hit_ratio,
        static_cast<double>(fleet_rss_delta) / 1e6);
    fleet_json = buf;
  }

  // rows_per_s / mb_per_s are absolute machine-dependent rates;
  // scan_slowdown_vs_ram and cached_scan_slowdown_vs_ram are same-machine
  // quotients, so bench_compare's --ratios-only mode may hold them across
  // hosts.
  std::printf(
      "BENCH_JSON: {\"bench\":\"store\",\"rows\":%zu,"
      "\"determinism\":\"bit-identical\",\"checksum\":\"%llu\","
      "\"append\":{\"seconds\":%.4f,\"rows_per_s\":%.0f,\"mb_per_s\":%.1f},"
      "\"scan\":{\"store_rows_per_s\":%.0f,\"mem_rows_per_s\":%.0f,"
      "\"scan_slowdown_vs_ram\":%.2f,"
      "\"cached_scan_slowdown_vs_ram\":%.2f},"
      "\"cache_curve\":%s,"
      "\"compaction\":{\"segments\":%u,\"blocks_dropped\":%llu,"
      "\"bytes_reclaimed\":%llu,\"seconds\":%.4f,\"mb_per_s\":%.1f},"
      "\"recovery\":%s,\"torn_tail_open_ms\":%.2f%s}\n",
      rows, static_cast<unsigned long long>(mem_checksum), append_s,
      append_rows_per_s, append_mb_per_s,
      static_cast<double>(rows) / scan_store_s,
      static_cast<double>(rows) / scan_mem_s, scan_store_s / scan_mem_s,
      cached_scan_slowdown, cache_json.c_str(),
      compact_report.segments_compacted,
      static_cast<unsigned long long>(compact_report.blocks_dropped),
      static_cast<unsigned long long>(compact_report.bytes_reclaimed),
      compact_s, compact_mb_per_s, recovery_json.c_str(), torn_open_ms,
      fleet_json.c_str());
  return 0;
}

// E15 -- robust similarity queries, privacy-preserving queries, and alibi
// queries over low-quality SID (Sections 2.3.1 and 2.4 trends): DTW/EDR/
// LCSS robustness to noise and sparsity, MBR-pruned kNN search,
// geo-indistinguishable range queries, and space-time-prism alibis.

#include "bench/bench_util.h"
#include "core/random.h"
#include "query/cloaking.h"
#include "query/private.h"
#include "query/similarity.h"
#include "query/uncertain_trajectory.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E15", "similarity, privacy, and alibi queries",
                "robust measures keep ranking quality under noise and "
                "sparsity; treating privacy noise as uncertainty restores "
                "query recall; prisms certify alibis");

  Rng rng(15);

  std::printf("-- self-retrieval rank-1 rate vs degradation (30 rides on "
              "a small, overlapping network) --\n");
  const sim::Fleet fleet = sim::MakeFleet(6, 6, 200.0, 30, 16, &rng);
  bench::Table table({"degradation", "DTW hit", "EDR hit", "LCSS hit",
                      "pruned frac"});
  struct Mode {
    const char* name;
    double noise;
    Timestamp resample_ms;
  };
  for (const Mode mode : {Mode{"noise 10 m", 10.0, 0},
                          Mode{"noise 40 m", 40.0, 0},
                          Mode{"1/5 sampling", 5.0, 5000},
                          Mode{"noise 40 m + 1/5", 40.0, 5000},
                          Mode{"noise 120 m + 1/10", 120.0, 10'000},
                          Mode{"noise 250 m + 1/10", 250.0, 10'000}}) {
    std::vector<Trajectory> collection;
    for (const auto& tr : fleet.trajectories) {
      collection.push_back(sim::AddGpsNoise(tr, 8.0, &rng));
    }
    query::TrajectorySimilaritySearch search;
    search.Build(&collection);
    size_t dtw_hits = 0, edr_hits = 0, lcss_hits = 0;
    double pruned = 0.0;
    for (size_t q = 0; q < fleet.trajectories.size(); ++q) {
      Trajectory queried = sim::AddGpsNoise(fleet.trajectories[q],
                                            mode.noise, &rng);
      if (mode.resample_ms > 0) {
        queried = sim::Resample(queried, mode.resample_ms);
      }
      query::TrajectorySimilaritySearch::SearchStats stats;
      const auto knn = search.Knn(queried, 1, &stats);
      dtw_hits += knn.ok() && !knn->empty() && knn->front() == q ? 1 : 0;
      pruned += stats.candidates > 0
                    ? static_cast<double>(stats.pruned) / stats.candidates
                    : 0.0;
      // EDR / LCSS rank-1 by exhaustive scan.
      size_t best_edr = 0, best_lcss = 0;
      double edr_best = 1e18, lcss_best = -1.0;
      for (size_t c = 0; c < collection.size(); ++c) {
        const double e = query::EdrDistance(queried, collection[c], 60.0);
        if (e < edr_best) {
          edr_best = e;
          best_edr = c;
        }
        const double l =
            query::LcssSimilarity(queried, collection[c], 60.0, 10'000);
        if (l > lcss_best) {
          lcss_best = l;
          best_lcss = c;
        }
      }
      edr_hits += best_edr == q ? 1 : 0;
      lcss_hits += best_lcss == q ? 1 : 0;
    }
    const double n = fleet.trajectories.size();
    table.AddRow({mode.name, bench::F3(dtw_hits / n),
                  bench::F3(edr_hits / n), bench::F3(lcss_hits / n),
                  bench::F3(pruned / n)});
  }
  table.Print();

  std::printf("-- MBR pruning on a dispersed fleet (rides spread over a "
              "6 km city) --\n");
  {
    const sim::Fleet wide = sim::MakeFleet(20, 20, 300.0, 40, 8, &rng);
    std::vector<Trajectory> collection;
    for (const auto& tr : wide.trajectories) {
      collection.push_back(sim::AddGpsNoise(tr, 8.0, &rng));
    }
    query::TrajectorySimilaritySearch search;
    search.Build(&collection);
    double pruned = 0.0;
    size_t hits = 0;
    for (size_t q = 0; q < wide.trajectories.size(); ++q) {
      query::TrajectorySimilaritySearch::SearchStats stats;
      const auto knn = search.Knn(
          sim::AddGpsNoise(wide.trajectories[q], 15.0, &rng), 1, &stats);
      hits += knn.ok() && !knn->empty() && knn->front() == q ? 1 : 0;
      pruned += static_cast<double>(stats.pruned) / stats.candidates;
    }
    std::printf("rank-1 hits: %zu/%zu, mean pruned fraction: %.3f\n\n",
                hits, wide.trajectories.size(),
                pruned / wide.trajectories.size());
  }

  std::printf("-- privacy: the noise-aware query exposes a recall/"
              "precision dial the naive query lacks --\n");
  bench::Table table2({"epsilon (1/m)", "mean noise (m)", "naive R",
                       "naive P", "aware R (tau .15)", "aware P (tau .15)",
                       "aware R (tau .60)", "aware P (tau .60)"});
  const geometry::BBox range(400, 400, 1000, 1000);
  for (double eps : {0.1, 0.04, 0.02, 0.01}) {
    const query::PlanarLaplaceObfuscator mech(eps);
    double stats[6] = {0, 0, 0, 0, 0, 0};
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::pair<ObjectId, geometry::Point>> reports;
      std::vector<bool> truly_inside;
      for (int i = 0; i < 300; ++i) {
        const geometry::Point truth(rng.Uniform(0, 1400),
                                    rng.Uniform(0, 1400));
        truly_inside.push_back(range.Contains(truth));
        reports.emplace_back(i, mech.Obfuscate(truth, &rng));
      }
      auto pr = [&](const std::vector<ObjectId>& found, double* r_out,
                    double* p_out) {
        std::vector<bool> in_found(300, false);
        for (ObjectId id : found) in_found[id] = true;
        size_t tp = 0, fp = 0, fn = 0;
        for (size_t i = 0; i < truly_inside.size(); ++i) {
          if (in_found[i] && truly_inside[i]) ++tp;
          if (in_found[i] && !truly_inside[i]) ++fp;
          if (!in_found[i] && truly_inside[i]) ++fn;
        }
        *p_out = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
        *r_out = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
      };
      const auto lo = query::PrivateRangeQuery(reports, mech, range, 0.15);
      const auto hi = query::PrivateRangeQuery(reports, mech, range, 0.60);
      double r, p;
      pr(lo.naive, &r, &p);
      stats[0] += r;
      stats[1] += p;
      pr(lo.aware, &r, &p);
      stats[2] += r;
      stats[3] += p;
      pr(hi.aware, &r, &p);
      stats[4] += r;
      stats[5] += p;
    }
    table2.AddRow({bench::F3(eps), bench::F1(mech.MeanDisplacement()),
                   bench::F3(stats[0] / trials), bench::F3(stats[1] / trials),
                   bench::F3(stats[2] / trials), bench::F3(stats[3] / trials),
                   bench::F3(stats[4] / trials),
                   bench::F3(stats[5] / trials)});
  }
  table2.Print();

  std::printf("-- k-anonymity cloaking: privacy level vs region size and "
              "count accuracy --\n");
  {
    std::vector<std::pair<ObjectId, geometry::Point>> users;
    for (int i = 0; i < 500; ++i) {
      users.emplace_back(
          i, geometry::Point(rng.Uniform(0, 5000), rng.Uniform(0, 5000)));
    }
    const geometry::BBox qrange(1500, 1500, 3500, 3500);
    size_t truth = 0;
    for (const auto& [id, p] : users) truth += qrange.Contains(p) ? 1 : 0;
    bench::Table tablea({"k", "mean cloak side (m)", "true count",
                         "expected count"});
    for (size_t k : {4, 16, 64}) {
      query::SpatialCloaker::Options copts;
      copts.k = k;
      const auto cloaks =
          query::SpatialCloaker(copts).CloakAll(users).value();
      double side = 0.0;
      for (const auto& c : cloaks) side += std::sqrt(c.region.Area());
      tablea.AddRow({std::to_string(k), bench::F1(side / cloaks.size()),
                     std::to_string(truth),
                     bench::F1(query::ExpectedCountInRange(cloaks,
                                                           qrange))});
    }
    tablea.Print();
  }

  std::printf("-- alibi queries: meeting feasibility vs speed bound --\n");
  bench::Table table3({"vmax (m/s)", "alibis confirmed / 45 pairs"});
  {
    // Ten objects sampled sparsely; pairs physically distant throughout.
    std::vector<Trajectory> objs;
    for (int i = 0; i < 10; ++i) {
      Trajectory tr(i);
      const double base_y = i * 800.0;
      for (int k = 0; k <= 6; ++k) {
        tr.AppendUnordered(TrajectoryPoint(
            k * 60'000, geometry::Point(k * 300.0, base_y)));
      }
      objs.push_back(tr);
    }
    for (double vmax : {6.0, 10.0, 20.0, 40.0}) {
      int confirmed = 0;
      for (size_t i = 0; i < objs.size(); ++i) {
        for (size_t j = i + 1; j < objs.size(); ++j) {
          if (!query::AlibiPossiblyMet(objs[i], objs[j], vmax, 0, 360'000,
                                       50.0)) {
            ++confirmed;
          }
        }
      }
      table3.AddRow({bench::F1(vmax), std::to_string(confirmed)});
    }
  }
  table3.Print();
  std::printf("(higher speed bounds widen the space-time prisms: fewer "
              "alibis can be certified)\n");
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

// E14 -- Analyses and decision-making on low-quality SID (Sections
// 2.3.2-2.3.3): uncertainty-aware clustering vs naive, streaming anomaly
// detection quality + throughput, probabilistic pattern mining under
// confidence decay, popular-route recovery from sparse data, and
// next-location prediction under incomplete histories.

#include <chrono>

#include "bench/bench_util.h"
#include "analytics/burst.h"
#include "analytics/next_location.h"
#include "analytics/pattern_mining.h"
#include "analytics/popular_route.h"
#include "analytics/stream_anomaly.h"
#include "analytics/uncertain_clustering.h"
#include "core/random.h"
#include "sim/noise.h"
#include "sim/rfid.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E14", "analytics and decision-making on low-quality SID",
                "uncertainty-aware analysis degrades more gracefully than "
                "naive methods as data quality falls");

  Rng rng(14);

  std::printf("-- uncertain clustering: high-uncertainty objects bridging "
              "two clusters --\n");
  // Two tight clusters of accurate objects plus `wanderers` whose reported
  // positions (sigma large) scatter into the gap. A naive DBSCAN on the
  // reported fixes lets wanderers chain the clusters together; the
  // expected-distance variant inflates their distances by their own
  // uncertainty, so they never become bridges.
  bench::Table table({"wanderers", "naive clusters", "naive ARI",
                      "uncertainty-aware clusters", "ua ARI"});
  for (int wanderers : {0, 5, 10, 20}) {
    double ari_u = 0.0, ari_n = 0.0, k_u = 0.0, k_n = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
      std::vector<query::UncertainPoint> objects;
      std::vector<int> truth_labels;
      for (int c = 0; c < 2; ++c) {
        const geometry::Point center(c * 700.0, 0.0);
        for (int i = 0; i < 25; ++i) {
          const geometry::Point p(center.x + rng.Gaussian(0, 80),
                                  center.y + rng.Gaussian(0, 80));
          objects.push_back(query::UncertainPoint::MakeGaussian(
              objects.size(),
              geometry::Point(p.x + rng.Gaussian(0, 15),
                              p.y + rng.Gaussian(0, 15)),
              15.0));
          truth_labels.push_back(c);
        }
      }
      for (int w = 0; w < wanderers; ++w) {
        // True home is cluster 0, but the fix scatters widely.
        objects.push_back(query::UncertainPoint::MakeGaussian(
            objects.size(),
            geometry::Point(rng.Uniform(100, 600), rng.Gaussian(0, 150)),
            300.0));
        truth_labels.push_back(0);
      }
      analytics::UncertainDbscan::Options uopts;
      uopts.eps_m = 280.0;
      uopts.min_pts = 4;
      analytics::UncertainDbscan::Options nopts = uopts;
      nopts.use_expected_distance = false;
      const auto ua = analytics::UncertainDbscan(uopts).Cluster(objects);
      const auto naive = analytics::UncertainDbscan(nopts).Cluster(objects);
      // Score the partition over the accurate objects only: the question
      // is whether wanderers corrupted the clean structure.
      std::vector<int> ua_clean(ua.labels.begin(), ua.labels.begin() + 50);
      std::vector<int> nv_clean(naive.labels.begin(),
                                naive.labels.begin() + 50);
      std::vector<int> truth_clean(truth_labels.begin(),
                                   truth_labels.begin() + 50);
      ari_u += analytics::AdjustedRandIndex(ua_clean, truth_clean);
      ari_n += analytics::AdjustedRandIndex(nv_clean, truth_clean);
      k_u += ua.num_clusters;
      k_n += naive.num_clusters;
    }
    table.AddRow({std::to_string(wanderers), bench::F1(k_n / trials),
                  bench::F3(ari_n / trials), bench::F1(k_u / trials),
                  bench::F3(ari_u / trials)});
  }
  table.Print();
  std::printf("(expected 2 clusters; ARI computed over the accurate "
              "objects)\n\n");

  std::printf("-- streaming anomaly detection: quality and throughput --\n");
  {
    // Normal fleet traffic + off-road intruders.
    const sim::Fleet fleet = sim::MakeFleet(10, 10, 200.0, 60, 20, &rng);
    std::vector<Trajectory> train(fleet.trajectories.begin(),
                                  fleet.trajectories.end() - 15);
    std::vector<Trajectory> held(fleet.trajectories.end() - 15,
                                 fleet.trajectories.end());
    sim::TrajectorySimulator simulator({}, &rng);
    std::vector<Trajectory> intruders;
    for (int i = 0; i < 15; ++i) {
      intruders.push_back(simulator.RandomWaypoint(
          geometry::BBox(0, 0, 1800, 1800), 120, 1000 + i));
    }
    analytics::StreamAnomalyDetector::Options dopts;
    dopts.cell_m = 100.0;  // finer than the street spacing, so off-road
                           // shortcuts produce unsupported transitions
    dopts.min_support = 1;
    dopts.anomaly_threshold = 0.4;
    analytics::StreamAnomalyDetector detector(dopts);
    detector.Train(train);
    size_t fa = 0, det = 0;
    for (const auto& tr : held) fa += detector.IsAnomalous(tr) ? 1 : 0;
    for (const auto& tr : intruders) det += detector.IsAnomalous(tr) ? 1 : 0;
    // Throughput of the O(1) streaming feed.
    const auto start = std::chrono::steady_clock::now();
    size_t fed = 0;
    analytics::StreamAnomalyDetector::StreamState state;
    for (int rep = 0; rep < 200; ++rep) {
      for (const auto& tr : held) {
        for (const auto& pt : tr.points()) {
          detector.Feed(&state, pt.p);
          ++fed;
        }
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("detected %zu/15 intruders, %zu/15 false alarms; streaming "
                "throughput %.1f M points/s\n\n",
                det, fa, fed / secs / 1e6);
  }

  std::printf("-- probabilistic pattern mining: support vs reading "
              "confidence --\n");
  {
    const auto deployment = sim::RfidDeployment::Corridor(10);
    std::vector<SymbolicTrajectory> walks;
    for (int i = 0; i < 20; ++i) {
      walks.push_back(deployment.SimulateWalk(i, 30, 3, 1000, &rng));
    }
    bench::Table table2({"confidence", "patterns found", "top support"});
    for (double conf : {1.0, 0.8, 0.6, 0.4}) {
      std::vector<analytics::UncertainSequence> db;
      for (const auto& w : walks) {
        db.push_back(analytics::FromSymbolic(w, conf));
      }
      analytics::PatternMiner::Options mopts;
      mopts.min_expected_support = 4.0;
      mopts.min_length = 2;
      mopts.max_length = 3;
      const auto patterns = analytics::PatternMiner(mopts).Mine(db);
      table2.AddRow({bench::F1(conf), std::to_string(patterns.size()),
                     bench::F1(patterns.empty()
                                   ? 0.0
                                   : patterns.front().expected_support)});
    }
    table2.Print();
  }

  std::printf("-- federated next-location training (count-model FedAvg) "
              "--\n");
  {
    const sim::Fleet fleet = sim::MakeFleet(8, 8, 250.0, 40, 14, &rng);
    std::vector<Trajectory> held(fleet.trajectories.end() - 8,
                                 fleet.trajectories.end());
    std::vector<Trajectory> train(fleet.trajectories.begin(),
                                  fleet.trajectories.end() - 8);
    bench::Table tablef({"edge nodes", "mean node accuracy",
                         "federated accuracy", "= central"});
    analytics::NextCellPredictor central;
    central.Train(train);
    const double central_acc = central.Evaluate(held);
    for (int k : {2, 4, 8}) {
      std::vector<analytics::NextCellPredictor> nodes(k);
      for (size_t i = 0; i < train.size(); ++i) {
        nodes[i % k].Observe(train[i]);
      }
      analytics::NextCellPredictor fed;
      double node_acc = 0.0;
      for (auto& node : nodes) {
        node_acc += node.Evaluate(held);
        fed.MergeFrom(node);
      }
      const double fed_acc = fed.Evaluate(held);
      tablef.AddRow({std::to_string(k), bench::F3(node_acc / k),
                     bench::F3(fed_acc),
                     std::abs(fed_acc - central_acc) < 1e-12 ? "yes"
                                                             : "NO"});
    }
    tablef.Print();
    std::printf("(merging count models is exact: no raw trajectories "
                "leave the edge nodes)\n\n");
  }

  std::printf("-- burst-region discovery (event detection) vs incident "
              "size --\n");
  {
    bench::Table tableb({"incident events", "regions fired",
                         "incident localized"});
    for (int incident : {0, 10, 30, 100}) {
      analytics::BurstDetector::Options bopts;
      bopts.cell_m = 300.0;
      bopts.window_ms = 60'000;
      bopts.min_count = 8;
      bopts.warmup_windows = 3;
      analytics::BurstDetector detector(bopts);
      std::vector<analytics::BurstDetector::BurstRegion> fired;
      Timestamp t = 0;
      for (int w = 0; w < 30; ++w) {
        for (int e = 0; e < 6; ++e) {
          auto f = detector.Feed(
              geometry::Point(rng.Uniform(0, 3000), rng.Uniform(0, 3000)),
              t + e * 5000);
          fired.insert(fired.end(), f.begin(), f.end());
        }
        if (w == 20) {
          for (int e = 0; e < incident; ++e) {
            auto f = detector.Feed(geometry::Point(1234.0, 567.0),
                                   t + 30'000);
            fired.insert(fired.end(), f.begin(), f.end());
          }
        }
        t += 60'000;
      }
      bool localized = false;
      for (const auto& region : fired) {
        localized = localized ||
                    region.bounds.Contains(geometry::Point(1234, 567));
      }
      tableb.AddRow({std::to_string(incident),
                     std::to_string(fired.size()),
                     localized ? "yes" : "-"});
    }
    tableb.Print();
  }

  std::printf("-- popular routes & next-location prediction from sparse "
              "histories --\n");
  {
    const sim::Fleet fleet = sim::MakeFleet(8, 8, 250.0, 50, 16, &rng);
    std::vector<Trajectory> train(fleet.trajectories.begin(),
                                  fleet.trajectories.end() - 10);
    std::vector<Trajectory> held(fleet.trajectories.end() - 10,
                                 fleet.trajectories.end());
    bench::Table table3({"drop rate", "route found", "next-cell accuracy"});
    for (double drop : {0.0, 0.3, 0.6}) {
      std::vector<Trajectory> sparse_train;
      for (const auto& tr : train) {
        sparse_train.push_back(sim::DropSamples(tr, drop, &rng));
      }
      analytics::PopularRouteFinder finder;
      finder.Build(sparse_train);
      const auto route = finder.FindRoute(
          fleet.trajectories[0].front().p, fleet.trajectories[0].back().p);
      analytics::NextCellPredictor predictor;
      predictor.Train(sparse_train);
      table3.AddRow({bench::F1(drop), route.ok() ? "yes" : "no",
                     bench::F3(predictor.Evaluate(held))});
    }
    table3.Print();
  }
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

// E13 -- Queries over low-quality SID (Section 2.3.1): probabilistic range
// and kNN pruning effectiveness, bead vs Markov-grid trajectory queries,
// safe-region message savings, and skew-aware partitioning.

#include "bench/bench_util.h"
#include "core/random.h"
#include "query/continuous.h"
#include "query/continuous_knn.h"
#include "query/partition.h"
#include "query/uncertain_point.h"
#include "query/uncertain_trajectory.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E13", "queries over low-quality SID",
                "probability bounds prune most exact evaluations; safe "
                "regions slash communication; adaptive partitioning fixes "
                "skew");

  Rng rng(13);

  std::printf("-- probabilistic range query: pruning vs tau (5000 uncertain "
              "objects) --\n");
  std::vector<query::UncertainPoint> objects;
  for (int i = 0; i < 5000; ++i) {
    objects.push_back(query::UncertainPoint::MakeGaussian(
        i, geometry::Point(rng.Uniform(0, 10000), rng.Uniform(0, 10000)),
        rng.Uniform(5.0, 40.0)));
  }
  const geometry::BBox box(2000, 2000, 4500, 4500);
  bench::Table table({"tau", "results", "pruned out", "cheap accepts",
                      "exact evals", "pruned frac"});
  for (double tau : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    query::PruningStats stats;
    const auto results =
        query::ProbabilisticRangeQuery(objects, box, tau, &stats);
    table.AddRow({bench::F2(tau), std::to_string(results.size()),
                  std::to_string(stats.pruned_out),
                  std::to_string(stats.accepted_cheap),
                  std::to_string(stats.evaluated_exact),
                  bench::F3(stats.PrunedFraction())});
  }
  table.Print();

  std::printf("-- expected-distance kNN: pruning vs k --\n");
  bench::Table table2({"k", "exact evals", "pruned frac"});
  for (size_t k : {1, 10, 50, 200}) {
    query::PruningStats stats;
    query::ExpectedDistanceKnn(objects, geometry::Point(5000, 5000), k,
                               &stats);
    table2.AddRow({std::to_string(k), std::to_string(stats.evaluated_exact),
                   bench::F3(stats.PrunedFraction())});
  }
  table2.Print();

  std::printf("-- probabilistic range aggregates (Poisson-binomial "
              "count) --\n");
  {
    bench::Table tablea({"query box side (m)", "expected count",
                         "std dev", "P(count >= E+10)"});
    for (double side : {1000.0, 2500.0, 5000.0}) {
      const geometry::BBox b(2000, 2000, 2000 + side, 2000 + side);
      const auto dist = query::RangeCount(objects, b);
      tablea.AddRow({bench::FInt(side), bench::F1(dist.expected),
                     bench::F2(std::sqrt(dist.variance)),
                     bench::F3(dist.ProbAtLeast(
                         static_cast<size_t>(dist.expected) + 10))});
    }
    tablea.Print();
  }

  std::printf("-- probabilistic nearest neighbour (Monte Carlo) --\n");
  {
    std::vector<query::UncertainPoint> small(objects.begin(),
                                             objects.begin() + 200);
    const auto pnn = query::ProbabilisticNearestNeighbor(
        small, geometry::Point(5000, 5000), 20000, &rng);
    std::printf("candidates with nonzero NN probability: %zu; top-3: ",
                pnn.size());
    for (size_t i = 0; i < std::min<size_t>(3, pnn.size()); ++i) {
      std::printf("%sobj%llu=%.2f", i ? ", " : "",
                  static_cast<unsigned long long>(pnn[i].first),
                  pnn[i].second);
    }
    std::printf("\n\n");
  }

  std::printf("-- uncertain trajectory range queries (bead model) vs "
              "sampling interval --\n");
  const sim::Fleet fleet = sim::MakeFleet(10, 10, 170.0, 20, 24, &rng);
  bench::Table table3({"interval (s)", "possible", "definite"});
  const geometry::BBox qbox(300, 300, 1000, 1000);
  for (Timestamp interval : {2, 10, 30}) {
    std::vector<Trajectory> sparse;
    for (const auto& tr : fleet.trajectories) {
      sparse.push_back(sim::Resample(tr, interval * 1000));
    }
    const auto result = query::UncertainTrajectoryRange(
        sparse, 20.0, qbox, 30'000, 120'000);
    table3.AddRow({std::to_string(interval),
                   std::to_string(result.possible.size()),
                   std::to_string(result.definite.size())});
  }
  table3.Print();
  std::printf("(sparser sampling widens the beads: 'possible' grows, "
              "'definite' shrinks)\n\n");

  std::printf("-- Markov-grid probability vs bead containment --\n");
  {
    Trajectory tr(1);
    tr.AppendUnordered(TrajectoryPoint(0, geometry::Point(0, 0)));
    tr.AppendUnordered(TrajectoryPoint(60'000, geometry::Point(600, 0)));
    query::MarkovGridModel model(&tr);
    query::BeadModel beads(&tr, 15.0);
    bench::Table table4({"box around", "markov P(inside)", "bead possible"});
    for (double cx : {300.0, 300.0 + 250.0, 300.0 + 500.0}) {
      const geometry::BBox b(cx - 100, -100, cx + 100, 100);
      table4.AddRow({bench::FInt(cx),
                     bench::F3(model.ProbInBox(b, 30'000)),
                     beads.PossiblyInside(b, 29'000, 31'000) ? "yes" : "no"});
    }
    table4.Print();
  }

  std::printf("-- continuous monitoring: safe regions vs naive --\n");
  {
    sim::TrajectorySimulator simulator({}, &rng);
    query::SafeRegionMonitor monitor(geometry::BBox(2000, 2000, 6000, 6000));
    size_t updates = 0;
    for (int obj = 0; obj < 50; ++obj) {
      const Trajectory tr = simulator.RandomWaypoint(
          geometry::BBox(0, 0, 8000, 8000), 500, obj);
      for (const auto& pt : tr.points()) {
        monitor.ProcessUpdate(obj, pt.p);
        ++updates;
      }
    }
    std::printf("naive messages: %zu, safe-region messages: %zu "
                "(%.1f%% saved)\n\n",
                updates, monitor.messages_sent(),
                100.0 * monitor.MessageSavings());
  }

  std::printf("-- continuous kNN monitoring: safe radii vs naive --\n");
  {
    sim::TrajectorySimulator simulator({}, &rng);
    std::vector<Trajectory> trs;
    for (int i = 0; i < 40; ++i) {
      trs.push_back(simulator.RandomWaypoint(
          geometry::BBox(0, 0, 4000, 4000), 400, i));
    }
    bench::Table tablek({"k", "messages", "savings", "result accuracy"});
    for (size_t k : {1, 5, 20}) {
      query::ContinuousKnnMonitor monitor(geometry::Point(2000, 2000), k);
      size_t correct = 0, checked = 0;
      for (size_t step = 0; step < 400; ++step) {
        for (const auto& tr : trs) {
          monitor.ProcessUpdate(tr.object_id(), tr[step].p);
        }
        std::vector<std::pair<double, ObjectId>> truth;
        for (const auto& tr : trs) {
          truth.emplace_back(
              geometry::Distance(tr[step].p, geometry::Point(2000, 2000)),
              tr.object_id());
        }
        std::sort(truth.begin(), truth.end());
        const auto result = monitor.Result();
        for (size_t i = 0; i < k; ++i) {
          ++checked;
          for (ObjectId id : result) {
            if (id == truth[i].second) {
              ++correct;
              break;
            }
          }
        }
      }
      tablek.AddRow({std::to_string(k),
                     std::to_string(monitor.messages_sent()),
                     bench::F3(monitor.MessageSavings()),
                     bench::F3(static_cast<double>(correct) / checked)});
    }
    tablek.Print();
  }

  std::printf("-- partitioning skewed SID --\n");
  {
    std::vector<geometry::Point> pts;
    for (int i = 0; i < 40000; ++i) {
      if (rng.Bernoulli(0.75)) {
        pts.emplace_back(rng.Gaussian(1000, 150), rng.Gaussian(1000, 150));
      } else {
        pts.emplace_back(rng.Uniform(0, 20000), rng.Uniform(0, 20000));
      }
    }
    const auto uniform = query::UniformGridPartition(pts, 16, 16);
    const auto adaptive = query::AdaptiveQuadPartition(pts, 500);
    const auto us = query::ComputeStats(uniform);
    const auto as = query::ComputeStats(adaptive);
    bench::Table table5({"scheme", "partitions", "max load", "imbalance"});
    table5.AddRow({"uniform 16x16", std::to_string(us.num_partitions),
                   std::to_string(us.max_load), bench::F1(us.imbalance)});
    table5.AddRow({"adaptive quad", std::to_string(as.num_partitions),
                   std::to_string(as.max_load), bench::F1(as.imbalance)});
    table5.Print();
  }
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

// E8 -- STID Outlier Removal (Section 2.2.3): spatiotemporal-neighbourhood
// detection vs ST-DBSCAN on thematic spikes, swept over contamination.

#include "bench/bench_util.h"
#include "core/random.h"
#include "outlier/stid_outliers.h"
#include "outlier/trajectory_outliers.h"
#include "sim/sensor_field.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E8", "STID outlier removal",
                "neighbourhood methods exploit spatial autocorrelation to "
                "find thematic outliers; density methods flag isolated "
                "records");

  Rng rng(8);
  const geometry::BBox region(0, 0, 3000, 3000);
  const auto field = sim::ScalarField::MakeRandom(region, 4, 12.0, 25.0, 400,
                                                  800, 3600, &rng);
  const auto locs = sim::DeploySensors(region, 50, &rng);
  const StDataset truth =
      sim::SampleField(field, locs, 0, 60'000, 30, "pm25");

  std::printf("-- thematic spike detection F1 vs contamination --\n");
  bench::Table table({"spike rate", "st-neighborhood F1", "st-dbscan F1"});
  for (double rate : {0.01, 0.03, 0.05, 0.10}) {
    std::vector<std::vector<bool>> labels;
    const StDataset spiked =
        sim::AddValueSpikes(truth, rate, 50.0, &rng, &labels);
    std::vector<bool> flat_labels;
    for (const auto& l : labels) {
      flat_labels.insert(flat_labels.end(), l.begin(), l.end());
    }
    const auto records = spiked.AllRecords();

    const outlier::StNeighborhoodDetector neighborhood;
    const auto nb_flags = neighborhood.Detect(records);
    const auto nb_q = outlier::EvaluateDetection(nb_flags, flat_labels);

    // ST-DBSCAN: records outside any cluster are outliers. delta_value
    // binds the thematic attribute; spikes break it.
    outlier::StDbscan::Options dopts;
    dopts.eps_space_m = 900.0;
    dopts.eps_time_ms = 180'000;
    dopts.delta_value = 25.0;
    dopts.min_pts = 4;
    const auto clusters = outlier::StDbscan(dopts).Cluster(records);
    std::vector<bool> db_flags(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      db_flags[i] = clusters.labels[i] < 0;
    }
    const auto db_q = outlier::EvaluateDetection(db_flags, flat_labels);

    table.AddRow({bench::F2(rate), bench::F3(nb_q.f1), bench::F3(db_q.f1)});
  }
  table.Print();

  std::printf("-- spatiotemporal clustering sanity (2 plumes, noise "
              "records) --\n");
  // A direct ST-DBSCAN exhibit: two dense space-time clusters plus isolated
  // records; report cluster recovery.
  std::vector<StRecord> records;
  for (int i = 0; i < 40; ++i) {
    records.emplace_back(i, i * 1000,
                         geometry::Point(rng.Gaussian(500, 50),
                                         rng.Gaussian(500, 50)),
                         10.0 + rng.Gaussian(0, 1));
    records.emplace_back(100 + i, i * 1000,
                         geometry::Point(rng.Gaussian(2500, 50),
                                         rng.Gaussian(2500, 50)),
                         14.0 + rng.Gaussian(0, 1));
  }
  for (int i = 0; i < 6; ++i) {
    records.emplace_back(200 + i, i * 5000,
                         geometry::Point(rng.Uniform(1200, 1800),
                                         rng.Uniform(1200, 1800)),
                         12.0);
  }
  outlier::StDbscan::Options opts;
  opts.eps_space_m = 200.0;
  opts.eps_time_ms = 30'000;
  opts.delta_value = 6.0;
  opts.min_pts = 4;
  const auto result = outlier::StDbscan(opts).Cluster(records);
  size_t noise = 0;
  for (int l : result.labels) noise += l < 0 ? 1 : 0;
  std::printf("clusters found: %d (expected 2), noise records: %zu "
              "(expected ~6)\n",
              result.num_clusters, noise);
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

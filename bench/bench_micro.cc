// M1 -- substrate micro-benchmarks (google-benchmark): index queries,
// coder throughput, and filter throughput. These quantify the building
// blocks the experiment harness stands on.

#include <benchmark/benchmark.h>

#include "core/random.h"
#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/rtree.h"
#include "reduce/coding.h"
#include "reduce/simplify.h"
#include "refine/kalman.h"
#include "sim/noise.h"

namespace sidq {
namespace {

std::vector<geometry::Point> MakePoints(size_t n) {
  Rng rng(1);
  std::vector<geometry::Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.emplace_back(rng.Uniform(0, 10000), rng.Uniform(0, 10000));
  }
  return pts;
}

void BM_GridIndexRange(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0));
  index::GridIndex idx(100.0);
  for (size_t i = 0; i < pts.size(); ++i) idx.Insert(i, pts[i]);
  Rng rng(2);
  for (auto _ : state) {
    const double x = rng.Uniform(0, 9000);
    const double y = rng.Uniform(0, 9000);
    benchmark::DoNotOptimize(
        idx.RangeQuery(geometry::BBox(x, y, x + 500, y + 500)));
  }
}
BENCHMARK(BM_GridIndexRange)->Arg(10'000)->Arg(100'000);

void BM_KdTreeKnn(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0));
  std::vector<index::KdTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) items.push_back({i, pts[i]});
  const index::KdTree tree(items);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Knn(
        geometry::Point(rng.Uniform(0, 10000), rng.Uniform(0, 10000)), 10));
  }
}
BENCHMARK(BM_KdTreeKnn)->Arg(10'000)->Arg(100'000);

void BM_RTreeRange(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0));
  std::vector<index::RTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) {
    items.push_back({i, geometry::BBox(pts[i], pts[i])});
  }
  index::RTree tree;
  tree.BulkLoad(items);
  Rng rng(4);
  for (auto _ : state) {
    const double x = rng.Uniform(0, 9000);
    const double y = rng.Uniform(0, 9000);
    benchmark::DoNotOptimize(
        tree.RangeQuery(geometry::BBox(x, y, x + 500, y + 500)));
  }
}
BENCHMARK(BM_RTreeRange)->Arg(10'000)->Arg(100'000);

void BM_GolombRiceEncode(benchmark::State& state) {
  Rng rng(5);
  std::vector<int64_t> values;
  int64_t v = 0;
  for (int i = 0; i < 10'000; ++i) {
    v += rng.UniformInt(-100, 120);
    values.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce::EncodeIntegerSeries(values));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_GolombRiceEncode);

void BM_GolombRiceDecode(benchmark::State& state) {
  Rng rng(6);
  std::vector<int64_t> values;
  int64_t v = 0;
  for (int i = 0; i < 10'000; ++i) {
    v += rng.UniformInt(-100, 120);
    values.push_back(v);
  }
  const auto bytes = reduce::EncodeIntegerSeries(values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce::DecodeIntegerSeries(bytes));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_GolombRiceDecode);

Trajectory MakeNoisyTrajectory(size_t n) {
  Rng rng(7);
  Trajectory tr(1);
  for (size_t i = 0; i < n; ++i) {
    tr.AppendUnordered(TrajectoryPoint(
        static_cast<Timestamp>(i) * 1000,
        geometry::Point(i * 10.0 + rng.Gaussian(0, 10),
                        rng.Gaussian(0, 10))));
  }
  return tr;
}

void BM_KalmanSmooth(benchmark::State& state) {
  const Trajectory tr = MakeNoisyTrajectory(state.range(0));
  const refine::KalmanFilter2D kf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kf.Smooth(tr));
  }
  state.SetItemsProcessed(state.iterations() * tr.size());
}
BENCHMARK(BM_KalmanSmooth)->Arg(1'000)->Arg(10'000);

void BM_DouglasPeuckerSed(benchmark::State& state) {
  const Trajectory tr = MakeNoisyTrajectory(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce::DouglasPeuckerSed(tr, 15.0));
  }
  state.SetItemsProcessed(state.iterations() * tr.size());
}
BENCHMARK(BM_DouglasPeuckerSed)->Arg(1'000)->Arg(10'000);

void BM_SquishE(benchmark::State& state) {
  const Trajectory tr = MakeNoisyTrajectory(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce::SquishE(tr, 15.0));
  }
  state.SetItemsProcessed(state.iterations() * tr.size());
}
BENCHMARK(BM_SquishE)->Arg(1'000)->Arg(10'000);

}  // namespace
}  // namespace sidq

BENCHMARK_MAIN();

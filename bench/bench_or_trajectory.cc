// E7 -- Trajectory point Outlier Removal (Section 2.2.3): constraint-based
// vs statistics-based vs prediction-based detection swept over the outlier
// rate, plus repair error; verifies the tutorial's stated trade-offs.

#include "bench/bench_util.h"
#include "core/random.h"
#include "outlier/trajectory_outliers.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner(
      "E7", "trajectory point outlier removal",
      "constraint methods struggle on dynamic/noisy data; statistics need "
      "clean context; prediction methods repair but rely on trustworthy "
      "history");

  Rng rng(7);
  const sim::Fleet fleet = sim::MakeFleet(10, 10, 160.0, 8, 24, &rng);

  const outlier::SpeedConstraintDetector constraint;
  const outlier::StatisticalDetector statistical;
  const outlier::PredictiveDetector predictive;

  std::printf("-- F1 vs outlier rate (gps sigma 5 m) --\n");
  bench::Table table({"outlier rate", "constraint F1", "statistics F1",
                      "prediction F1", "repair gain"});
  for (double rate : {0.01, 0.05, 0.10, 0.15, 0.20}) {
    double f1c = 0, f1s = 0, f1p = 0, gain = 0;
    for (const Trajectory& truth : fleet.trajectories) {
      const Trajectory noisy = sim::AddGpsNoise(truth, 5.0, &rng);
      std::vector<bool> labels;
      const Trajectory dirty =
          sim::AddOutliers(noisy, rate, 150, 400, &rng, &labels);
      f1c += outlier::EvaluateDetection(constraint.Detect(dirty).value(),
                                        labels)
                 .f1;
      f1s += outlier::EvaluateDetection(statistical.Detect(dirty).value(),
                                        labels)
                 .f1;
      f1p += outlier::EvaluateDetection(predictive.Detect(dirty).value(),
                                        labels)
                 .f1;
      const auto repaired = predictive.Repair(dirty).value();
      gain += RmseBetween(truth, dirty).value() /
              std::max(1e-9, RmseBetween(truth, repaired).value());
    }
    const double n = fleet.trajectories.size();
    table.AddRow({bench::F2(rate), bench::F3(f1c / n), bench::F3(f1s / n),
                  bench::F3(f1p / n), bench::F1(gain / n)});
  }
  table.Print();

  std::printf("-- F1 vs gps noise (outlier rate 0.05): constraint methods "
              "degrade on noisy, dynamic data --\n");
  bench::Table table2({"gps sigma (m)", "constraint F1", "statistics F1",
                       "prediction F1"});
  for (double sigma : {2.0, 10.0, 25.0, 50.0}) {
    double f1c = 0, f1s = 0, f1p = 0;
    for (const Trajectory& truth : fleet.trajectories) {
      const Trajectory noisy = sim::AddGpsNoise(truth, sigma, &rng);
      std::vector<bool> labels;
      const Trajectory dirty =
          sim::AddOutliers(noisy, 0.05, 200, 500, &rng, &labels);
      f1c += outlier::EvaluateDetection(constraint.Detect(dirty).value(),
                                        labels)
                 .f1;
      f1s += outlier::EvaluateDetection(statistical.Detect(dirty).value(),
                                        labels)
                 .f1;
      f1p += outlier::EvaluateDetection(predictive.Detect(dirty).value(),
                                        labels)
                 .f1;
    }
    const double n = fleet.trajectories.size();
    table2.AddRow({bench::F1(sigma), bench::F3(f1c / n), bench::F3(f1s / n),
                   bench::F3(f1p / n)});
  }
  table2.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

// E2 -- Ensemble Location Refinement (Section 2.2.1): single-source WkNN
// fingerprinting vs plain NN, WLS trilateration, and multi-source fusion,
// swept over RSSI shadowing noise.

#include "bench/bench_util.h"
#include "core/random.h"
#include "refine/least_squares.h"
#include "refine/wknn.h"
#include "sim/fingerprint.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E2", "ensemble location refinement",
                "WkNN beats NN; fusing independent sources beats every "
                "single source");

  Rng rng(2);
  const geometry::BBox bounds(0, 0, 150, 150);
  const sim::RssiWorld world = sim::RssiWorld::MakeRandom(bounds, 10, &rng);
  const auto db =
      sim::BuildFingerprintDatabase(world, bounds, 15, 15, 8, 2.0, &rng);
  const refine::WknnLocalizer localizer(db);
  const refine::WlsTrilaterator trilaterator;

  bench::Table table({"rssi sigma (dB)", "NN err (m)", "WkNN err (m)",
                      "WLS range err (m)", "fused err (m)"});

  for (double sigma : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    auto estimate_pair = [&](const geometry::Point& truth,
                             geometry::Point* wknn_est,
                             geometry::Point* wls_est) {
      const auto rssi = world.Measure(truth, sigma, &rng);
      *wknn_est = localizer.Estimate(rssi).value();
      // Independent source: ranging to the same APs (noise scales with the
      // RSSI noise level to keep sources comparable).
      std::vector<refine::RangeMeasurement> ranges;
      for (size_t a = 0; a < world.num_aps(); ++a) {
        refine::RangeMeasurement m;
        m.anchor = world.aps()[a].p;
        m.sigma = 1.5 * sigma;
        m.range = world.MeasureRange(a, truth, m.sigma, &rng);
        ranges.push_back(m);
      }
      *wls_est = trilaterator.Solve(ranges).value();
    };

    // Offline calibration: estimate each source's error variance at this
    // noise level from survey points with known positions.
    double var_wknn = 0.0, var_wls = 0.0;
    const int kCalib = 60;
    for (int i = 0; i < kCalib; ++i) {
      const geometry::Point truth(rng.Uniform(15, 135),
                                  rng.Uniform(15, 135));
      geometry::Point wk, wl;
      estimate_pair(truth, &wk, &wl);
      var_wknn += geometry::DistanceSq(wk, truth) / 2.0;  // per axis
      var_wls += geometry::DistanceSq(wl, truth) / 2.0;
    }
    var_wknn /= kCalib;
    var_wls /= kCalib;

    double nn = 0.0, wknn = 0.0, wls = 0.0, fused = 0.0;
    const int trials = 150;
    for (int i = 0; i < trials; ++i) {
      const geometry::Point truth(rng.Uniform(15, 135),
                                  rng.Uniform(15, 135));
      const auto rssi = world.Measure(truth, sigma, &rng);
      const geometry::Point nn_est = localizer.EstimateNn(rssi).value();
      geometry::Point wknn_est, wls_est;
      estimate_pair(truth, &wknn_est, &wls_est);
      const auto fused_est = refine::FuseEstimates(
          {{wknn_est, var_wknn}, {wls_est, var_wls}});
      nn += geometry::Distance(nn_est, truth);
      wknn += geometry::Distance(wknn_est, truth);
      wls += geometry::Distance(wls_est, truth);
      fused += geometry::Distance(fused_est->p, truth);
    }
    table.AddRow({bench::F1(sigma), bench::F2(nn / trials),
                  bench::F2(wknn / trials), bench::F2(wls / trials),
                  bench::F2(fused / trials)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

// BENCH exec: parallel fleet cleaning throughput (serial vs. FleetRunner).
//
// Two honest workloads over the same synthetic 10k-trajectory fleet:
//
//   cpu_bound      pure cleaning arithmetic (jitter -> speed-outlier repair
//                  -> Kalman smoothing -> DP-SED simplification). Speedup
//                  here tracks physical cores; on a 1-core container it is
//                  ~1x by construction.
//   latency_bound  each trajectory first pays a simulated sensor-gateway
//                  fetch (50 us sleep) before the same smoothing step --
//                  the IoT regime where cleaning stalls on ingest I/O. The
//                  pool overlaps the stalls, so speedup survives even a
//                  single core.
//
// Every parallel configuration is checked bit-identical to the serial
// reference; a mismatch is a hard failure (exit 1), so this bench doubles
// as a determinism gate. scripts/bench_json.py scrapes the BENCH_JSON line
// into BENCH_exec.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>  // std::this_thread::sleep_for models gateway fetch
#include <vector>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "core/random.h"
#include "core/trajectory.h"
#include "exec/fleet_runner.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "outlier/trajectory_outliers.h"
#include "reduce/simplify.h"
#include "refine/kalman.h"

namespace sidq {
namespace {

constexpr size_t kFleetSize = 10'000;
constexpr size_t kPointsEach = 64;
constexpr uint64_t kSeed = 4242;

std::vector<Trajectory> MakeFleet() {
  Rng rng(kSeed);
  std::vector<Trajectory> fleet;
  fleet.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    Trajectory t(static_cast<ObjectId>(i));
    double x = rng.Uniform(0.0, 5000.0);
    double y = rng.Uniform(0.0, 5000.0);
    double vx = rng.Gaussian(0.0, 8.0);
    double vy = rng.Gaussian(0.0, 8.0);
    for (size_t k = 0; k < kPointsEach; ++k) {
      t.AppendUnordered(TrajectoryPoint(static_cast<Timestamp>(k) * 1000,
                                        geometry::Point(x, y), 8.0));
      vx += rng.Gaussian(0.0, 1.0);
      vy += rng.Gaussian(0.0, 1.0);
      x += vx;
      y += vy;
    }
    fleet.push_back(std::move(t));
  }
  return fleet;
}

TrajectoryPipeline MakeCpuPipeline() {
  TrajectoryPipeline pipeline;
  pipeline.AddSeeded("gps_jitter",
                     [](const Trajectory& in, Rng& rng) -> StatusOr<Trajectory> {
                       Trajectory out(in.object_id());
                       for (const TrajectoryPoint& pt : in.points()) {
                         TrajectoryPoint moved = pt;
                         moved.p.x += rng.Gaussian(0.0, 6.0);
                         moved.p.y += rng.Gaussian(0.0, 6.0);
                         out.AppendUnordered(moved);
                       }
                       return out;
                     });
  pipeline.Add(std::make_unique<outlier::SpeedOutlierRepairStage>());
  pipeline.Add("kalman_smooth",
               [](const Trajectory& in) -> StatusOr<Trajectory> {
                 return refine::KalmanFilter2D().Smooth(in);
               });
  pipeline.Add("dp_sed_simplify",
               [](const Trajectory& in) -> StatusOr<Trajectory> {
                 return reduce::DouglasPeuckerSed(in, 3.0);
               });
  return pipeline;
}

TrajectoryPipeline MakeLatencyPipeline() {
  TrajectoryPipeline pipeline;
  pipeline.Add("gateway_fetch",
               [](const Trajectory& in) -> StatusOr<Trajectory> {
                 // Stand-in for the per-device ingest round trip.
                 // sidq: allow-wallclock(bench measures real latency hiding)
                 std::this_thread::sleep_for(std::chrono::microseconds(50));
                 return in;
               });
  pipeline.Add("kalman_smooth",
               [](const Trajectory& in) -> StatusOr<Trajectory> {
                 return refine::KalmanFilter2D().Smooth(in);
               });
  return pipeline;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Process CPU seconds (all threads). The observability gate compares CPU
// cost, not wall time: determinism makes plain and instrumented runs do
// identical pipeline work, and CPU time is robust to co-tenant preemption
// that makes a ~5% wall-clock effect unmeasurable on a shared box.
double CpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// FNV-1a over the raw bit patterns: any single-bit divergence shows.
uint64_t FleetChecksum(const std::vector<Trajectory>& fleet) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const Trajectory& t : fleet) {
    mix(static_cast<uint64_t>(t.object_id()));
    for (const TrajectoryPoint& pt : t.points()) {
      mix(static_cast<uint64_t>(pt.t));
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(pt.p.x));
      std::memcpy(&bits, &pt.p.x, sizeof(bits));
      mix(bits);
      std::memcpy(&bits, &pt.p.y, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

struct RunPoint {
  int threads = 0;  // 0 = serial reference
  double seconds = 0.0;
  double traj_per_s = 0.0;
  double speedup = 1.0;
};

// Benchmarks one pipeline serial vs. parallel; exits on nondeterminism.
std::vector<RunPoint> BenchPipeline(const char* label,
                                    const TrajectoryPipeline& pipeline,
                                    const std::vector<Trajectory>& fleet,
                                    size_t shard_size) {
  std::vector<RunPoint> points;

  auto t0 = std::chrono::steady_clock::now();
  auto serial = pipeline.RunBatch(fleet, kSeed);
  const double serial_s = SecondsSince(t0);
  if (!serial.ok()) {
    std::fprintf(stderr, "%s: serial run failed: %s\n", label,
                 serial.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t golden = FleetChecksum(*serial);
  points.push_back(
      {0, serial_s, static_cast<double>(fleet.size()) / serial_s, 1.0});

  for (const int threads : {1, 2, 4, 8}) {
    exec::FleetRunner::Options options;
    options.num_threads = threads;
    options.shard_size = shard_size;
    options.base_seed = kSeed;
    const exec::FleetRunner runner(&pipeline, options);
    t0 = std::chrono::steady_clock::now();
    const exec::FleetResult result = runner.Run(fleet);
    const double secs = SecondsSince(t0);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %d-thread run failed: %s\n", label, threads,
                   result.first_error.ToString().c_str());
      std::exit(1);
    }
    if (FleetChecksum(result.cleaned) != golden) {
      std::fprintf(stderr,
                   "%s: DETERMINISM VIOLATION at %d threads: parallel output "
                   "differs from serial reference\n",
                   label, threads);
      std::exit(1);
    }
    points.push_back({threads, secs,
                      static_cast<double>(fleet.size()) / secs,
                      serial_s / secs});
  }

  // Resilience-disarmed gate: with the full resilience machinery switched
  // on (best-effort policy, retries, per-object virtual-clock deadlines)
  // but no FailPoint armed, the output must STILL be bit-identical to the
  // plain serial reference -- the machinery may cost nothing when idle.
  {
    exec::FleetRunner::Options options;
    options.num_threads = 8;
    options.shard_size = shard_size;
    options.base_seed = kSeed;
    options.failure_policy = exec::FailurePolicy::kBestEffort;
    options.retry.max_retries = 2;
    options.virtual_time = true;
    options.deadline_ms = 60'000;
    const exec::FleetRunner runner(&pipeline, options);
    const exec::FleetResult result = runner.Run(fleet);
    if (!result.ok() || !result.annotations.empty() ||
        FleetChecksum(result.cleaned) != golden) {
      std::fprintf(stderr,
                   "%s: RESILIENCE GATE FAILED: disarmed best-effort run is "
                   "not bit-identical to the serial reference\n",
                   label);
      std::exit(1);
    }
  }
  return points;
}

struct ObsOverhead {
  double plain_s = 0.0;
  double instrumented_s = 0.0;
  double slowdown = 1.0;
  size_t spans = 0;
};

// Instrumentation overhead gate: the same resilient run (best-effort,
// retries armed, virtual-time deadlines) with and without obs sinks
// attached, best-of-8 each. The instrumented output must stay bit-identical
// to the plain run -- observation may cost time (budgeted <= 5%, enforced
// against the recorded artifact by scripts/bench_compare.py on the
// obs_slowdown ratio) but must never perturb results. Optionally exports
// the instrumented run's metrics snapshot to `metrics_out`.
ObsOverhead BenchObsOverhead(const TrajectoryPipeline& pipeline,
                             const std::vector<Trajectory>& fleet,
                             const std::string& metrics_out) {
  auto make_options = [] {
    exec::FleetRunner::Options options;
    options.num_threads = 4;
    options.shard_size = 64;
    options.base_seed = kSeed;
    options.failure_policy = exec::FailurePolicy::kBestEffort;
    options.retry.max_retries = 2;
    options.virtual_time = true;
    options.deadline_ms = 60'000;
    return options;
  };

  // Interleaved plain/instrumented reps with best-of on each side: noise
  // on a shared box is additive, so the minimum of enough reps converges
  // to the true cost of each configuration. The pair order alternates each
  // rep so drifting background load cannot systematically hand one side
  // the quiet windows.
  constexpr int kObsReps = 8;
  ObsOverhead o;
  o.plain_s = 1e300;
  o.instrumented_s = 1e300;
  uint64_t plain_checksum = 0;
  uint64_t instrumented_checksum = 0;

  auto run_plain = [&] {
    const exec::FleetRunner runner(&pipeline, make_options());
    const double cpu0 = CpuSeconds();
    const exec::FleetResult result = runner.Run(fleet);
    o.plain_s = std::min(o.plain_s, CpuSeconds() - cpu0);
    if (!result.ok()) {
      std::fprintf(stderr, "obs_overhead: plain run failed: %s\n",
                   result.first_error.ToString().c_str());
      std::exit(1);
    }
    plain_checksum = FleetChecksum(result.cleaned);
  };
  auto run_instrumented = [&](bool export_metrics) {
    // Fresh sinks per rep so the exported snapshot covers exactly one run.
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    obs::ObsSinks sinks;
    sinks.metrics = &registry;
    sinks.tracer = &tracer;
    auto options = make_options();
    options.obs = &sinks;
    const exec::FleetRunner runner(&pipeline, options);
    const double cpu0 = CpuSeconds();
    const exec::FleetResult result = runner.Run(fleet);
    o.instrumented_s = std::min(o.instrumented_s, CpuSeconds() - cpu0);
    if (!result.ok()) {
      std::fprintf(stderr, "obs_overhead: instrumented run failed: %s\n",
                   result.first_error.ToString().c_str());
      std::exit(1);
    }
    instrumented_checksum = FleetChecksum(result.cleaned);
    o.spans = tracer.num_spans();
    if (export_metrics && !metrics_out.empty()) {
      auto json = obs::MetricsToJson(registry.Snapshot());
      Status st = json.ok() ? obs::WriteTextFile(metrics_out, json.value())
                            : json.status();
      if (!st.ok()) {
        std::fprintf(stderr, "obs_overhead: metrics export failed: %s\n",
                     st.ToString().c_str());
        std::exit(1);
      }
    }
  };

  for (int rep = 0; rep < kObsReps; ++rep) {
    const bool export_now = rep == kObsReps - 1;
    if (rep % 2 == 0) {
      run_plain();
      run_instrumented(export_now);
    } else {
      run_instrumented(export_now);
      run_plain();
    }
  }
  if (instrumented_checksum != plain_checksum) {
    std::fprintf(stderr,
                 "obs_overhead: OBSERVER EFFECT: instrumented run is not "
                 "bit-identical to the plain run\n");
    std::exit(1);
  }
  o.slowdown = o.instrumented_s / o.plain_s;
  return o;
}

void PrintTable(const char* label, const std::vector<RunPoint>& points) {
  std::printf("workload: %s\n", label);
  bench::Table table({"config", "seconds", "traj/s", "speedup"});
  for (const RunPoint& p : points) {
    table.AddRow({p.threads == 0 ? "serial" : std::to_string(p.threads) + " threads",
                  bench::F3(p.seconds), bench::FInt(p.traj_per_s),
                  bench::F2(p.speedup)});
  }
  table.Print();
}

std::string JsonPoints(const std::vector<RunPoint>& points) {
  std::string out = "[";
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\":%d,\"seconds\":%.4f,\"traj_per_s\":%.0f,"
                  "\"speedup\":%.2f}",
                  i == 0 ? "" : ",", points[i].threads, points[i].seconds,
                  points[i].traj_per_s, points[i].speedup);
    out += buf;
  }
  return out + "]";
}

}  // namespace
}  // namespace sidq

int main(int argc, char** argv) {
  using namespace sidq;

  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--metrics-out FILE]\n", argv[0]);
      return 2;
    }
  }

  bench::Banner("BENCH exec", "parallel fleet cleaning",
                "DQ management must keep up with high-velocity multi-source "
                "IoT streams (Zubair et al.; Karkouch et al.); sharded "
                "parallel cleaning with deterministic replay");

  const auto fleet = MakeFleet();
  std::printf("fleet: %zu trajectories x %zu points, %u hardware threads\n\n",
              fleet.size(), static_cast<size_t>(kPointsEach),
              std::thread::hardware_concurrency());

  const auto cpu_pipeline = MakeCpuPipeline();
  const auto cpu =
      BenchPipeline("cpu_bound", cpu_pipeline, fleet, /*shard_size=*/64);
  PrintTable("cpu_bound (jitter -> outlier repair -> Kalman -> DP-SED)", cpu);

  const auto io = BenchPipeline("latency_bound", MakeLatencyPipeline(), fleet,
                                /*shard_size=*/16);
  PrintTable("latency_bound (50us gateway fetch -> Kalman)", io);

  const ObsOverhead obs = BenchObsOverhead(cpu_pipeline, fleet, metrics_out);
  std::printf(
      "observability: %.4fs plain -> %.4fs instrumented "
      "(CPU, %.2fx slowdown, %zu spans), output bit-identical\n",
      obs.plain_s, obs.instrumented_s, obs.slowdown, obs.spans);

  std::printf(
      "determinism: all parallel configurations bit-identical to serial, "
      "including disarmed best-effort resilience options and the fully "
      "instrumented run\n\n");

  std::printf(
      "BENCH_JSON: {\"bench\":\"exec_fleet\",\"fleet_size\":%zu,"
      "\"points_per_trajectory\":%zu,\"hardware_threads\":%u,"
      "\"determinism\":\"bit-identical\",\"workloads\":{"
      "\"cpu_bound\":%s,\"latency_bound\":%s},"
      "\"obs\":{\"plain_s\":%.4f,\"instrumented_s\":%.4f,"
      "\"obs_slowdown\":%.3f,\"spans\":%zu}}\n",
      fleet.size(), static_cast<size_t>(kPointsEach),
      std::thread::hardware_concurrency(), JsonPoints(cpu).c_str(),
      JsonPoints(io).c_str(), obs.plain_s, obs.instrumented_s, obs.slowdown,
      obs.spans);
  return 0;
}

// E6 -- STID Uncertainty Elimination (Section 2.2.2): spatiotemporal
// interpolation (IDW / kernel / trend clusters) vs sensor density, the
// degradation as the queried range expands beyond the instrumented region,
// and measurement-fusion gains.

#include "bench/bench_util.h"
#include "core/logging.h"
#include "core/random.h"
#include "sim/sensor_field.h"
#include "uncertainty/cotraining.h"
#include "uncertainty/fusion.h"
#include "uncertainty/interpolation.h"

namespace sidq {
namespace {

int Run() {
  bench::Banner("E6", "STID uncertainty elimination",
                "interpolation improves with sensor density and degrades as "
                "the spatiotemporal range expands; fusing a second source "
                "reduces measurement uncertainty");

  Rng rng(6);
  const geometry::BBox region(0, 0, 4000, 4000);
  const auto field = sim::ScalarField::MakeRandom(region, 5, 12.0, 30.0, 400,
                                                  900, 3600, &rng);

  // Part A: error vs sensor density.
  std::printf("-- interpolation error vs sensor count (probes inside the "
              "instrumented region) --\n");
  bench::Table table(
      {"sensors", "IDW err", "kernel err", "trend-cluster err"});
  for (int sensors : {15, 30, 60, 120, 240}) {
    const auto locs = sim::DeploySensors(region, sensors, &rng);
    const StDataset truth =
        sim::SampleField(field, locs, 0, 60'000, 40, "pm25");
    const StDataset data = sim::AddValueNoise(truth, 1.0, &rng);
    uncertainty::IdwInterpolator idw(&data);
    uncertainty::KernelInterpolator kern(&data);
    uncertainty::TrendClusterInterpolator tc(&data);
    double idw_err = 0, kern_err = 0, tc_err = 0;
    const int probes = 200;
    int used = 0;
    Rng prng(99);
    for (int i = 0; i < probes; ++i) {
      const geometry::Point p(prng.Uniform(400, 3600),
                              prng.Uniform(400, 3600));
      const Timestamp t = 60'000 * prng.UniformInt(1, 38);
      const double tv = field.Value(p, t);
      // A probe every estimator can answer; a failed estimate must not
      // silently count as zero error (it would inflate accuracy).
      const auto ie = idw.Estimate(p, t);
      const auto ke = kern.Estimate(p, t);
      const auto te = tc.Estimate(p, t);
      if (!ie.ok() || !ke.ok() || !te.ok()) continue;
      idw_err += std::abs(ie.value() - tv);
      kern_err += std::abs(ke.value() - tv);
      tc_err += std::abs(te.value() - tv);
      ++used;
    }
    SIDQ_CHECK(used > 0) << "no usable interpolation probes at " << sensors
                         << " sensors";
    if (used < probes) {
      SIDQ_WARN() << "skipped " << (probes - used) << "/" << probes
                  << " probes without coverage at " << sensors << " sensors";
    }
    table.AddRow({std::to_string(sensors), bench::F2(idw_err / used),
                  bench::F2(kern_err / used), bench::F2(tc_err / used)});
  }
  table.Print();

  // Part B: degradation with spatial range expansion (probes farther and
  // farther outside the instrumented core).
  std::printf("-- interpolation error vs distance outside the instrumented "
              "core (60 sensors) --\n");
  const geometry::BBox core(1500, 1500, 2500, 2500);
  const auto core_locs = sim::DeploySensors(core, 60, &rng);
  const StDataset core_truth =
      sim::SampleField(field, core_locs, 0, 60'000, 40, "pm25");
  const StDataset core_data = sim::AddValueNoise(core_truth, 1.0, &rng);
  uncertainty::IdwInterpolator idw(&core_data);
  bench::Table table2({"probe offset (m)", "IDW err"});
  for (double offset : {0.0, 300.0, 600.0, 1200.0, 1800.0}) {
    double err = 0.0;
    const int probes = 200;
    int used = 0;
    Rng prng(77);
    for (int i = 0; i < probes; ++i) {
      // Random direction at the given distance from the core boundary.
      const double ang = prng.Uniform(0, 2 * M_PI);
      const geometry::Point p(
          2000.0 + std::cos(ang) * (500.0 + offset),
          2000.0 + std::sin(ang) * (500.0 + offset));
      const Timestamp t = 60'000 * prng.UniformInt(1, 38);
      const double tv = field.Value(p, t);
      const auto est = idw.Estimate(p, t);
      if (!est.ok()) continue;
      err += std::abs(est.value() - tv);
      ++used;
    }
    SIDQ_CHECK(used > 0) << "no usable probes at offset " << offset;
    if (used < probes) {
      SIDQ_WARN() << "skipped " << (probes - used) << "/" << probes
                  << " probes without coverage at offset " << offset;
    }
    table2.AddRow({bench::FInt(offset), bench::F2(err / used)});
  }
  table2.Print();

  // Part B2: semi-supervised co-training vs plain IDW when labels are
  // scarce (the "semi-supervised learning" bucket of the technique
  // taxonomy).
  std::printf("-- co-training vs IDW at scarce, noisy sensor labels "
              "(label sigma 2.0) --\n");
  bench::Table tablec({"sensors", "IDW err", "co-training err",
                       "pseudo-labeled frac"});
  for (int sensors : {10, 20, 40}) {
    const auto locs = sim::DeploySensors(region, sensors, &rng);
    const StDataset labeled = sim::AddValueNoise(
        sim::SampleField(field, locs, 0, 60'000, 40, "pm25"), 2.0, &rng);
    uncertainty::IdwInterpolator idw_only(&labeled);
    std::vector<uncertainty::CoTrainingEstimator::Query> queries;
    std::vector<double> truth_vals;
    Rng prng(55);
    for (int loc = 0; loc < 20; ++loc) {
      const geometry::Point p(prng.Uniform(400, 3600),
                              prng.Uniform(400, 3600));
      for (int k = 1; k < 39; ++k) {
        queries.push_back({p, k * 60'000});
        truth_vals.push_back(field.Value(p, k * 60'000));
      }
    }
    const auto ct =
        uncertainty::CoTrainingEstimator().Run(labeled, queries).value();
    double idw_err = 0.0, ct_err = 0.0, pseudo = 0.0;
    size_t compared = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      pseudo += ct[i].pseudo_labeled ? 1.0 : 0.0;
      // Compare the two estimators only on queries both can answer; a
      // failed IDW estimate must not silently count as a 0.0 estimate.
      const auto est = idw_only.Estimate(queries[i].p, queries[i].t);
      if (!est.ok()) continue;
      idw_err += std::abs(est.value() - truth_vals[i]);
      ct_err += std::abs(ct[i].value - truth_vals[i]);
      ++compared;
    }
    SIDQ_CHECK(compared > 0) << "no comparable queries at " << sensors
                             << " sensors";
    if (compared < queries.size()) {
      SIDQ_WARN() << "skipped " << (queries.size() - compared) << "/"
                  << queries.size() << " queries IDW could not answer at "
                  << sensors << " sensors";
    }
    tablec.AddRow({std::to_string(sensors),
                   bench::F2(idw_err / compared),
                   bench::F2(ct_err / compared),
                   bench::F3(pseudo / queries.size())});
  }
  tablec.Print();

  // Part C: data fusion reduces per-record uncertainty.
  std::printf("-- measurement fusion (co-located primary + auxiliary) --\n");
  const auto locs = sim::DeploySensors(region, 50, &rng);
  const StDataset truth =
      sim::SampleField(field, locs, 0, 60'000, 30, "pm25");
  bench::Table table3({"aux sigma", "primary RMSE", "fused RMSE"});
  auto rmse = [&](const StDataset& ds) {
    double acc = 0.0;
    size_t n = 0;
    for (size_t s = 0; s < ds.num_sensors(); ++s) {
      for (size_t i = 0; i < ds.series()[s].size(); ++i) {
        const double e =
            ds.series()[s][i].value - truth.series()[s][i].value;
        acc += e * e;
        ++n;
      }
    }
    return std::sqrt(acc / n);
  };
  for (double aux_sigma : {2.0, 4.0, 8.0}) {
    const StDataset primary = sim::AddValueNoise(truth, 4.0, &rng);
    const StDataset aux = sim::AddValueNoise(truth, aux_sigma, &rng);
    uncertainty::StidFusionOptions fopts;
    fopts.radius_m = 1.0;
    fopts.window_ms = 1000;
    const auto fused = uncertainty::FuseStid(primary, aux, fopts).value();
    table3.AddRow({bench::F1(aux_sigma), bench::F2(rmse(primary)),
                   bench::F2(rmse(fused))});
  }
  table3.Print();
  return 0;
}

}  // namespace
}  // namespace sidq

int main() { return sidq::Run(); }

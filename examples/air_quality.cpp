// Air-quality monitoring with low-cost sensors: the STID side of the
// library. A city deploys cheap, drifting, occasionally-spiking PM2.5
// sensors; we repair faults, interpolate the field at unsampled places,
// fuse a second source, compress the archives, and compute a commuter's
// exposure along a trajectory.

#include <cstdio>

#include "core/logging.h"
#include "core/random.h"
#include "fault/value_repair.h"
#include "integrate/attachment.h"
#include "integrate/stid_fusion.h"
#include "outlier/stid_outliers.h"
#include "reduce/stid_compression.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/interpolation.h"

int main() {
  using namespace sidq;

  Rng rng(11);
  const geometry::BBox city(0, 0, 4000, 4000);
  const auto field = sim::ScalarField::MakeRandom(
      city, /*num_plumes=*/5, /*base=*/12.0, /*max_amplitude=*/35.0,
      /*min_sigma=*/400.0, /*max_sigma=*/900.0, /*period_s=*/3600.0, &rng);
  const auto sensors = sim::DeploySensors(city, 80, &rng);
  const StDataset truth =
      sim::SampleField(field, sensors, 0, 60'000, 60, "pm25");

  // Cheap sensors: noise + spikes + drift.
  StDataset observed = sim::AddValueNoise(truth, 2.0, &rng);
  observed = sim::AddValueSpikes(observed, 0.02, 60.0, &rng);
  observed = sim::AddSensorDrift(observed, 0.15, 0.3, &rng);

  auto rmse = [&](const StDataset& ds) {
    double acc = 0.0;
    size_t n = 0;
    for (size_t s = 0; s < ds.num_sensors(); ++s) {
      for (size_t i = 0; i < ds.series()[s].size() &&
                         i < truth.series()[s].size();
           ++i) {
        const double e = ds.series()[s][i].value - truth.series()[s][i].value;
        acc += e * e;
        ++n;
      }
    }
    return std::sqrt(acc / n);
  };

  std::printf("air_quality: %zu sensors, %zu records, field '%s'\n\n",
              observed.num_sensors(), observed.TotalRecords(),
              observed.field_name().c_str());
  std::printf("fault correction\n");
  std::printf("  raw RMSE vs truth:        %5.2f\n", rmse(observed));

  // 1. Fault correction: consensus value repair, then drift correction.
  fault::ConsensusValueRepairer::Options ropts;
  ropts.max_deviation = 12.0;
  auto repaired = fault::ConsensusValueRepairer(ropts).Repair(observed);
  fault::DriftCorrector::Options dopts;
  dopts.neighbors = 8;
  auto corrected = fault::DriftCorrector(dopts).Repair(repaired.value());
  std::printf("  after spike repair:       %5.2f\n", rmse(repaired.value()));
  std::printf("  after drift correction:   %5.2f\n\n",
              rmse(corrected.value()));
  const StDataset& cleaned = corrected.value();

  // 2. Interpolation: estimate the field where there is no sensor.
  uncertainty::IdwInterpolator idw(&cleaned);
  double interp_err = 0.0;
  const int kProbes = 300;
  int answered = 0;
  for (int i = 0; i < kProbes; ++i) {
    const geometry::Point p(rng.Uniform(200, 3800), rng.Uniform(200, 3800));
    const Timestamp t = 60'000 * rng.UniformInt(1, 58);
    // A probe without coverage must be reported, not counted as a 0.0
    // reading (that would corrupt the mean-error stat).
    const auto est = idw.Estimate(p, t);
    if (!est.ok()) continue;
    interp_err += std::abs(est.value() - field.Value(p, t));
    ++answered;
  }
  SIDQ_CHECK(answered > 0) << "IDW answered none of the probes";
  if (answered < kProbes) {
    SIDQ_WARN() << "IDW could not answer " << (kProbes - answered) << "/"
                << kProbes << " probes";
  }
  std::printf("spatiotemporal interpolation (IDW)\n");
  std::printf("  mean error at %d answered probes (of %d): %.2f\n\n",
              answered, kProbes, interp_err / answered);

  // 3. Fusion with a mobile second source (e.g. bus-mounted sensors).
  const auto mobile_sensors = sim::DeploySensors(city, 40, &rng);
  const StDataset mobile = sim::AddValueNoise(
      sim::SampleField(field, mobile_sensors, 0, 120'000, 30, "pm25"), 5.0,
      &rng);
  integrate::GridFuser fuser;
  auto fused = fuser.Fuse({cleaned, mobile, truth});
  std::printf("multi-source fusion (truth-discovery weights)\n");
  for (size_t i = 0; i < fused->source_weights.size(); ++i) {
    static const char* kNames[] = {"fixed net", "mobile net", "reference"};
    std::printf("  source %zu (%s): weight %.2f\n", i, kNames[i],
                fused->source_weights[i]);
  }

  // 4. Archive compression.
  size_t raw = 0, lossless = 0, lossy = 0;
  for (const StSeries& s : cleaned.series()) {
    raw += s.size() * 16;
    lossless += reduce::LosslessCompress(s, 0.01).TotalBytes();
    lossy += reduce::LtcCompress(s, 1.0)->TotalBytes();
  }
  std::printf("\narchive compression\n");
  std::printf("  raw:              %zu bytes\n", raw);
  std::printf("  lossless (GR):    %zu bytes (%.1fx)\n", lossless,
              static_cast<double>(raw) / lossless);
  std::printf("  lossy (LTC e=1):  %zu bytes (%.1fx)\n\n", lossy,
              static_cast<double>(raw) / lossy);

  // 5. Exploitation: commuter exposure along a trajectory.
  sim::TrajectorySimulator simulator({}, &rng);
  const Trajectory commute = simulator.RandomWaypoint(city, 600, 1);
  auto enriched = integrate::AttachStid(commute, idw);
  auto exposure = integrate::MeanAttachedValue(
      enriched.value(), commute.front().t, commute.back().t);
  SIDQ_CHECK(exposure.ok()) << "exposure computation failed: "
                            << exposure.status();
  std::printf("commuter exposure\n");
  std::printf("  %zu trajectory points, %.0f%% attached, mean PM2.5 along "
              "route: %.1f\n",
              commute.size(), 100.0 * enriched->AttachmentRate(),
              exposure.value());
  return 0;
}

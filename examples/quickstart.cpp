// Quickstart: clean a noisy GPS trajectory with a sidq quality pipeline and
// watch the DQ dimensions move after every stage.
//
// This is the 60-second tour of the library: simulate ground truth, degrade
// it the way real IoT feeds degrade, compose cleaning stages, and profile.

#include <cstdio>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/random.h"
#include "outlier/trajectory_outliers.h"
#include "refine/kalman.h"
#include "reduce/simplify.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/smoothing.h"

int main() {
  using namespace sidq;

  // 1. Simulate a delivery van on a city grid (ground truth)...
  Rng rng(2022);
  sim::Fleet fleet = sim::MakeFleet(/*cols=*/10, /*rows=*/10,
                                    /*spacing=*/150.0, /*num_objects=*/1,
                                    /*min_hops=*/20, &rng);
  const Trajectory& truth = fleet.trajectories.front();

  // 2. ...then degrade it the way a cheap GPS tracker would: noise plus
  // occasional gross outliers.
  Trajectory noisy = sim::AddGpsNoise(truth, 12.0, &rng);
  noisy = sim::AddOutliers(noisy, 0.03, 150.0, 400.0, &rng);

  // 3. Compose a quality-management pipeline: outlier repair -> Kalman
  // smoothing -> error-bounded simplification.
  TrajectoryPipeline pipeline;
  pipeline.Add(std::make_unique<outlier::SpeedOutlierRepairStage>());
  pipeline.Add("kalman_smooth", [](const Trajectory& in) {
    refine::KalmanFilter2D::Options opts;
    opts.process_noise = 0.5;
    return refine::KalmanFilter2D(opts).Smooth(in);
  });
  pipeline.Add("simplify_sed_5m", [](const Trajectory& in) {
    return reduce::DouglasPeuckerSed(in, 5.0);
  });

  // 4. Run it with per-stage quality profiling against the ground truth.
  std::vector<StageReport> reports;
  TrajectoryProfiler profiler;
  auto cleaned = pipeline.RunProfiled(noisy, &truth, profiler, &reports);
  if (!cleaned.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 cleaned.status().ToString().c_str());
    return 1;
  }

  std::printf("sidq quickstart: cleaning a noisy vehicle trajectory\n");
  std::printf("ground truth: %zu points over %.1f km\n\n", truth.size(),
              truth.Length() / 1000.0);
  std::printf("%-22s %10s %10s %12s %8s\n", "stage", "accuracy_m",
              "precision", "consistency", "points");
  for (const StageReport& r : reports) {
    std::printf("%-22s %10.2f %10.2f %12.4f %8.0f\n", r.stage_name.c_str(),
                r.report.Get(DqDimension::kAccuracy),
                r.report.Get(DqDimension::kPrecision),
                r.report.Get(DqDimension::kConsistency),
                r.report.Get(DqDimension::kDataVolume));
  }

  std::printf("\nfinal trajectory: %zu points (%.1fx smaller), %.2f m mean "
              "error vs truth\n",
              cleaned->size(),
              static_cast<double>(noisy.size()) / cleaned->size(),
              reports.back().report.Get(DqDimension::kAccuracy));
  return 0;
}

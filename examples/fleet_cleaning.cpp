// Fleet telematics end-to-end, now executed by the parallel fleet engine:
// raw GPS from many vehicles is degraded per-vehicle (seeded substreams),
// then cleaned by a TrajectoryPipeline -- HMM map matching (Location
// Refinement), road-constrained gap completion (Uncertainty Elimination),
// DP-SED simplification (Data Reduction) -- run over the whole fleet by
// exec::FleetRunner on a work-stealing pool. A dispatcher's continuous
// range query consumes the cleaned streams (Exploitation).
//
//   fleet_cleaning [--threads N]       (default 0 = all hardware threads)
//                  [--deadline-ms D]   per-vehicle cleaning budget
//                  [--max-retries R]   retries for transient stage failures
//                  [--best-effort]     quarantine failing vehicles instead of
//                                      cancelling the fleet
//                  [--metrics-out F]   write the run's metrics snapshot to F
//                                      (canonical JSON)
//                  [--trace-out F]     write the run's span trace to F
//                                      (Chrome trace_event JSON -- load it
//                                      in chrome://tracing or Perfetto)
//
// The determinism contract means --threads changes only the wall clock:
// every vehicle's cleaned trajectory is bit-identical for any N. Map
// matching is a degradation ladder: when the HMM Viterbi rung misses the
// deadline, the vehicle falls to a geometric nearest-road snap and the
// result is annotated degraded rather than lost.
//
// --metrics-out / --trace-out switch the run to virtual time so the
// exported files are themselves deterministic: two invocations with the
// same flags produce byte-identical JSON, for any --threads value.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/random.h"
#include "exec/fleet_runner.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "query/continuous.h"
#include "reduce/simplify.h"
#include "refine/hmm_map_matcher.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/completion.h"

int main(int argc, char** argv) {
  using namespace sidq;

  int threads = 0;
  long deadline_ms = -1;
  int max_retries = 0;
  bool best_effort = false;
  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-retries") == 0 && i + 1 < argc) {
      max_retries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--best-effort") == 0) {
      best_effort = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--deadline-ms D] "
                   "[--max-retries R] [--best-effort] "
                   "[--metrics-out FILE] [--trace-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool observed_run = !metrics_out.empty() || !trace_out.empty();

  Rng rng(7);
  const int kVehicles = 24;
  const uint64_t kDegradeSeed = 99;
  sim::Fleet fleet = sim::MakeFleet(12, 12, 180.0, kVehicles, 24, &rng);
  std::printf("fleet_cleaning: %d vehicles on a %zu-edge road network, "
              "--threads %d\n\n",
              kVehicles, fleet.network.num_edges(), threads);

  // Degrade: GPS noise plus sparse reporting to save battery. Each vehicle
  // degrades under its own substream so the input fleet is reproducible
  // regardless of iteration or thread count.
  std::vector<Trajectory> observed;
  observed.reserve(fleet.trajectories.size());
  for (const Trajectory& truth : fleet.trajectories) {
    Rng vehicle_rng = Rng::ForKey(kDegradeSeed, truth.object_id());
    observed.push_back(
        sim::Resample(sim::AddGpsNoise(truth, 14.0, &vehicle_rng), 5000));
  }

  // The cleaning pipeline. Stages are shared read-only across workers, so
  // each map-match call builds its own matcher: HmmMapMatcher keeps a
  // per-instance Dijkstra cache that is not safe to share between threads.
  const sim::RoadNetwork* network = &fleet.network;
  TrajectoryPipeline pipeline;
  // Map matching is a degradation ladder: the HMM Viterbi rung observes the
  // per-vehicle deadline; a vehicle whose budget runs out falls to a cheap
  // geometric nearest-road snap instead of failing the fleet.
  auto map_match = std::make_unique<LadderStage>("map_match");
  map_match->AddRungCtx(
      "hmm_viterbi",
      [network](const Trajectory& in,
                const StageContext& ctx) -> StatusOr<Trajectory> {
        refine::HmmMapMatcher matcher(network);
        SIDQ_ASSIGN_OR_RETURN(auto match, matcher.Match(in, ctx.exec));
        return match.matched;
      });
  map_match->AddRung(
      "nearest_road_snap",
      [network](const Trajectory& in) -> StatusOr<Trajectory> {
        Trajectory out(in.object_id());
        for (const TrajectoryPoint& pt : in.points()) {
          SIDQ_ASSIGN_OR_RETURN(EdgeId e, network->NearestEdge(pt.p));
          TrajectoryPoint snapped = pt;
          snapped.p = network->ProjectToEdge(e, pt.p);
          out.AppendUnordered(snapped);
        }
        return out;
      });
  pipeline.Add(std::move(map_match));
  pipeline.Add("complete",
               [network](const Trajectory& in) -> StatusOr<Trajectory> {
                 return uncertainty::RoadCompleter(network).Complete(in);
               });
  pipeline.Add("simplify", [](const Trajectory& in) -> StatusOr<Trajectory> {
    return reduce::DouglasPeuckerSed(in, 2.0);
  });

  exec::FleetRunner::Options options;
  options.num_threads = threads;
  options.sharding = exec::ShardingMode::kSkewAware;
  options.skew_max_load = 4;
  options.base_seed = kDegradeSeed;
  options.deadline_ms = deadline_ms;
  options.retry.max_retries = max_retries;
  if (best_effort) options.failure_policy = exec::FailurePolicy::kBestEffort;

  // Observability sinks. An observed run switches to virtual time so the
  // exported metrics/trace JSON is a pure function of the inputs --
  // byte-identical across invocations and thread counts.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObsSinks sinks;
  if (observed_run) {
    sinks.metrics = &registry;
    sinks.tracer = &tracer;
    options.obs = &sinks;
    options.virtual_time = true;
  }
  // Record any chaos faults (none armed here, but the hook is part of the
  // workflow this example demonstrates).
  obs::ScopedFailPointObservation failpoint_observation(sinks);

  const exec::FleetRunner runner(&pipeline, options);

  const auto t0 = std::chrono::steady_clock::now();
  const exec::FleetResult result =
      runner.RunProfiled(observed, &fleet.trajectories, TrajectoryProfiler());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!result.ok() && !(best_effort && result.partial_ok())) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 result.first_error.ToString().c_str());
    return 1;
  }
  std::printf("cleaned %zu vehicles in %.3f s (%zu shards, skew-aware)\n",
              observed.size(), wall_s, result.shards_total);
  std::printf("%s\n", result.ResilienceSummary().c_str());
  for (const exec::ObjectAnnotation& a : result.annotations) {
    std::printf("  vehicle %llu: %s", static_cast<unsigned long long>(a.id),
                ExecQualityName(a.quality));
    if (a.retries > 0) std::printf(", %d retries", a.retries);
    for (const DegradeEvent& d : a.degraded) {
      std::printf(", %s fell to rung %d (%s): %s", d.stage.c_str(), d.rung,
                  d.rung_name.c_str(), d.cause.ToString().c_str());
    }
    if (!a.status.ok()) std::printf(": %s", a.status.ToString().c_str());
    std::printf("\n");
  }
  std::printf("\n");

  // Fleet-level DQ report: accuracy RMSE per stage, aggregated over the
  // whole fleet (the per-stage mean/p50/p99 merge of every StageReport).
  std::printf("fleet accuracy (m, vs. ground truth)   mean    p50    p99\n");
  for (const exec::FleetStageStats& stats : result.stage_stats) {
    const auto it = stats.metrics.find(DqDimension::kAccuracy);
    if (it == stats.metrics.end()) continue;
    std::printf("  %-36s %6.1f %6.1f %6.1f\n", stats.stage_name.c_str(),
                it->second.mean, it->second.p50, it->second.p99);
  }
  std::printf("\n");

  // Data reduction across the fleet.
  size_t observed_points = 0, cleaned_points = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    observed_points += observed[i].size();
    cleaned_points += result.cleaned[i].size();
  }
  std::printf("gap completion + simplification\n");
  std::printf("  sparse points:   %zu\n", observed_points);
  std::printf("  cleaned points:  %zu (%.1fx densification after DP-SED)\n\n",
              cleaned_points,
              static_cast<double>(cleaned_points) / observed_points);

  // Exploitation: feed the cleaned streams to the dispatcher's continuous
  // range query with safe regions.
  query::SafeRegionMonitor monitor(
      geometry::BBox(500, 500, 1400, 1400));  // dispatcher watches downtown
  for (size_t i = 0; i < result.cleaned.size(); ++i) {
    for (const auto& pt : result.cleaned[i].points()) {
      monitor.ProcessUpdate(result.cleaned[i].object_id(), pt.p);
    }
  }
  std::printf("continuous range monitoring (safe regions)\n");
  std::printf("  updates: %zu, messages: %zu (%.0f%% saved), %zu vehicles "
              "currently downtown\n",
              monitor.updates_processed(), monitor.messages_sent(),
              100.0 * monitor.MessageSavings(), monitor.inside().size());

  if (!metrics_out.empty()) {
    auto json = obs::MetricsToJson(registry.Snapshot());
    if (!json.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    Status st = obs::WriteTextFile(metrics_out, json.value());
    if (!st.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot -> %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    auto json = obs::TraceToChromeJson(tracer.CanonicalSpans());
    if (!json.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    Status st = obs::WriteTextFile(trace_out, json.value());
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace (%zu spans, chrome://tracing) -> %s\n",
                tracer.num_spans(), trace_out.c_str());
  }
  return 0;
}

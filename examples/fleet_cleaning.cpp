// Fleet telematics end-to-end: map matching, route completion, compression,
// and continuous monitoring over a simulated vehicle fleet.
//
// The scenario follows the tutorial's motivating pipeline: raw GPS from many
// vehicles is refined against the road network (Location Refinement),
// sparsified gaps are restored (Uncertainty Elimination), the cleaned
// trajectories are compressed for storage (Data Reduction), and a dispatcher
// runs a continuous range query with safe regions (Exploitation).

#include <cstdio>

#include "core/random.h"
#include "query/continuous.h"
#include "reduce/network_compression.h"
#include "reduce/simplify.h"
#include "refine/hmm_map_matcher.h"
#include "sim/noise.h"
#include "sim/trajectory_sim.h"
#include "uncertainty/completion.h"

int main() {
  using namespace sidq;

  Rng rng(7);
  const int kVehicles = 20;
  sim::Fleet fleet =
      sim::MakeFleet(12, 12, 180.0, kVehicles, 24, &rng);
  std::printf("fleet_cleaning: %d vehicles on a %zu-edge road network\n\n",
              kVehicles, fleet.network.num_edges());

  refine::HmmMapMatcher matcher(&fleet.network);
  uncertainty::RoadCompleter completer(&fleet.network);
  query::SafeRegionMonitor monitor(
      geometry::BBox(500, 500, 1400, 1400));  // dispatcher watches downtown

  double raw_err = 0.0, matched_err = 0.0;
  size_t raw_bytes = 0, compressed_bytes = 0;
  size_t completed_points = 0, sparse_points = 0;

  for (const Trajectory& truth : fleet.trajectories) {
    // Degrade: GPS noise plus sparse reporting to save battery.
    const Trajectory noisy = sim::AddGpsNoise(truth, 14.0, &rng);
    const Trajectory sparse = sim::Resample(noisy, 5000);

    // 1. Location refinement: HMM map matching onto the road network.
    auto matched = matcher.Match(sparse);
    if (!matched.ok()) {
      std::fprintf(stderr, "match failed: %s\n",
                   matched.status().ToString().c_str());
      continue;
    }
    // Compare at the sparse timestamps.
    double re = 0.0, me = 0.0;
    for (size_t i = 0; i < sparse.size(); ++i) {
      auto tp = truth.InterpolateAt(sparse[i].t);
      if (!tp.ok()) continue;
      re += geometry::Distance(sparse[i].p, tp.value());
      me += geometry::Distance(matched->matched[i].p, tp.value());
    }
    raw_err += re / sparse.size();
    matched_err += me / sparse.size();

    // 2. Uncertainty elimination: restore the path between sparse fixes.
    auto completed = completer.Complete(matched->matched);
    if (completed.ok()) {
      completed_points += completed->size();
      sparse_points += sparse.size();
    }

    // 3. Data reduction: store the map-matched ride as edge runs + deltas.
    std::vector<Timestamp> times;
    for (const auto& pt : matched->matched.points()) times.push_back(pt.t);
    auto compressed = reduce::CompressMatched(matched->edges, times);
    if (compressed.ok()) {
      raw_bytes += reduce::RawPointBytes(sparse.size());
      compressed_bytes += compressed->TotalBytes();
    }

    // 4. Exploitation: feed the cleaned stream to the dispatcher's
    // continuous range query.
    for (const auto& pt : matched->matched.points()) {
      monitor.ProcessUpdate(truth.object_id(), pt.p);
    }
  }

  std::printf("location refinement (HMM map matching)\n");
  std::printf("  mean GPS error:      %6.1f m\n", raw_err / kVehicles);
  std::printf("  mean matched error:  %6.1f m\n\n", matched_err / kVehicles);

  std::printf("gap completion (road inference)\n");
  std::printf("  sparse points:    %zu\n", sparse_points);
  std::printf("  restored points:  %zu (%.1fx densification)\n\n",
              completed_points,
              static_cast<double>(completed_points) / sparse_points);

  std::printf("network-constrained compression\n");
  std::printf("  raw (x,y,t):  %zu bytes\n", raw_bytes);
  std::printf("  compressed:   %zu bytes (%.1fx)\n\n", compressed_bytes,
              static_cast<double>(raw_bytes) / compressed_bytes);

  std::printf("continuous range monitoring (safe regions)\n");
  std::printf("  updates: %zu, messages: %zu (%.0f%% saved), %zu vehicles "
              "currently downtown\n",
              monitor.updates_processed(), monitor.messages_sent(),
              100.0 * monitor.MessageSavings(), monitor.inside().size());
  return 0;
}

// Fleet telematics end-to-end, now executed by the parallel fleet engine:
// raw GPS from many vehicles is degraded per-vehicle (seeded substreams),
// then cleaned by a TrajectoryPipeline -- HMM map matching (Location
// Refinement), road-constrained gap completion (Uncertainty Elimination),
// DP-SED simplification (Data Reduction) -- run over the whole fleet by
// exec::FleetRunner on a work-stealing pool. A dispatcher's continuous
// range query consumes the cleaned streams (Exploitation).
//
//   fleet_cleaning [--threads N]       (default 0 = all hardware threads)
//                  [--deadline-ms D]   per-vehicle cleaning budget
//                  [--max-retries R]   retries for transient stage failures
//                  [--best-effort]     quarantine failing vehicles instead of
//                                      cancelling the fleet
//                  [--metrics-out F]   write the run's metrics snapshot to F
//                                      (canonical JSON)
//                  [--trace-out F]     write the run's span trace to F
//                                      (Chrome trace_event JSON -- load it
//                                      in chrome://tracing or Perfetto)
//                  [--record-log F]    record a seeded dirty sensor fleet as
//                                      an arrival-ordered event log to F and
//                                      exit (deterministic: same bytes every
//                                      run)
//                  [--replay F]        replay event log F through the stream
//                                      engine (--threads workers), check it
//                                      against the batch reference, print a
//                                      summary; exit 1 on any divergence
//                  [--stream-out F2]   with --replay: write the canonical
//                                      stream-output JSON to F2
//                  [--store-dir D]     with --replay: persist the cleaned
//                                      stream records into the durable
//                                      segment store at D (recovery runs on
//                                      open; appends are committed before
//                                      exit)
//                  [--store-scan F]    with --store-dir: open the store
//                                      (running crash recovery), print the
//                                      recovery report, and write every
//                                      readable row as a canonical text
//                                      dump to F; exit
//                  [--cache-mb N]      block-cache byte budget for store
//                                      modes (decoded blocks held during
//                                      scans; 0 = unbounded; default 64).
//                                      Peak scan RSS is bounded by this,
//                                      not by the store size
//                  [--compact]         with --store-dir: run one
//                                      deterministic compaction pass
//                                      (rewrites quarantine-pocked rolled
//                                      segments, tombstoning dead blocks),
//                                      print the report, and exit
//
// The determinism contract means --threads changes only the wall clock:
// every vehicle's cleaned trajectory is bit-identical for any N. Map
// matching is a degradation ladder: when the HMM Viterbi rung misses the
// deadline, the vehicle falls to a geometric nearest-road snap and the
// result is annotated degraded rather than lost.
//
// --metrics-out / --trace-out switch the run to virtual time so the
// exported files are themselves deterministic: two invocations with the
// same flags produce byte-identical JSON, for any --threads value. The
// same contract covers --record-log / --replay: the recorded log is a pure
// function of the seed, and the replayed stream output is a pure function
// of (log, rules) for any worker count.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/quality.h"
#include "core/random.h"
#include "exec/fleet_runner.h"
#include "geometry/bbox.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "query/continuous.h"
#include "reduce/simplify.h"
#include "refine/hmm_map_matcher.h"
#include "sim/noise.h"
#include "sim/sensor_field.h"
#include "sim/trajectory_sim.h"
#include "stream/engine.h"
#include "stream/event_log.h"
#include "stream/replay.h"
#include "store/store.h"
#include "store/vfs.h"
#include "stream/rules.h"
#include "uncertainty/completion.h"

namespace {

// The streaming companion fleet: stationary air-quality sensors alongside
// the vehicles, with the arrival pathologies the stream engine exists to
// absorb (delay, stragglers past the lateness bound, duplicate delivery).
// Seeded end to end, so the recorded log is byte-identical every run.
sidq::stream::EventLog MakeSensorFleetLog() {
  using namespace sidq;
  Rng rng(4711);
  const geometry::BBox bounds(geometry::Point(0, 0),
                              geometry::Point(2000, 2000));
  const sim::ScalarField field = sim::ScalarField::MakeRandom(
      bounds, 3, 20.0, 30.0, 300.0, 900.0, 3600.0, &rng);
  const std::vector<geometry::Point> sensors =
      sim::DeploySensors(bounds, 16, &rng);
  StDataset truth = sim::SampleField(field, sensors, 0, 60'000, 120, "pm25");
  StDataset dirty = sim::AddValueNoise(truth, 0.8, &rng);
  dirty = sim::AddValueSpikes(dirty, 0.02, 400.0, &rng);

  stream::ArrivalOptions arrivals;
  arrivals.mean_delay_ms = 20'000;
  arrivals.straggler_probability = 0.05;
  arrivals.straggler_delay_ms = 400'000;
  arrivals.duplicate_probability = 0.05;
  return stream::RecordArrivals(dirty, arrivals, &rng);
}

sidq::stream::StreamConfig SensorFleetConfig() {
  sidq::stream::StreamConfig config;
  sidq::stream::SensorRule rule;
  rule.min_value = -50.0;
  rule.max_value = 500.0;
  rule.expected_interval_ms = 60'000;
  rule.max_lateness_ms = 120'000;
  rule.max_rate_per_s = 1.0;
  config.rules.set_default_rule(rule);
  config.window_ms = 300'000;
  config.window_capacity = 32;
  config.robust_z.z_threshold = 4.0;
  config.robust_z.min_samples = 6;
  return config;
}

int RecordLogMode(const std::string& path) {
  using namespace sidq;
  const stream::EventLog log = MakeSensorFleetLog();
  const Status st = stream::WriteEventLogFile(log, path);
  if (!st.ok()) {
    std::fprintf(stderr, "record-log failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("recorded %zu events (field=%s) -> %s\n", log.events.size(),
              log.field_name.c_str(), path.c_str());
  return 0;
}

// Persists the cleaned stream output into the durable segment store at
// `store_dir`. Opening runs crash recovery first, so ingest composes with
// whatever an earlier (possibly interrupted) run left behind; appends are
// committed (data fsync'd, manifest published atomically) before returning.
int IngestIntoStore(const sidq::stream::StreamOutput& streamed,
                    const std::string& field_name,
                    const std::string& store_dir, long cache_mb) {
  using namespace sidq;
  store::StoreOptions options;
  options.field_name = field_name;
  options.cache_bytes = static_cast<size_t>(cache_mb) << 20;
  StatusOr<std::unique_ptr<store::Store>> opened =
      store::Store::Open(nullptr, store_dir, std::move(options));
  if (!opened.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  store::Store& db = **opened;
  std::printf("  store %s: %s\n", store_dir.c_str(),
              db.recovery().Summary().c_str());
  uint64_t appended = 0;
  for (const StSeries& s : streamed.cleaned.series()) {
    for (const StRecord& rec : s.records()) {
      const Status st = db.Append(rec);
      if (!st.ok()) {
        std::fprintf(stderr, "store append failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      ++appended;
    }
  }
  const Status st = db.Close();
  if (!st.ok()) {
    std::fprintf(stderr, "store commit failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("  store ingest: %llu rows appended -> gen %llu "
              "(%llu rows readable)\n",
              static_cast<unsigned long long>(appended),
              static_cast<unsigned long long>(db.manifest_gen()),
              static_cast<unsigned long long>(db.rows_readable()));
  return 0;
}

// Opens the store (recovery runs unconditionally), reports what recovery
// found, and dumps every readable row as canonical text -- the same
// FormatDouble the JSON exporters use, so two scans of equal stores are
// byte-identical and `cmp` is a valid gate.
int StoreScanMode(const std::string& store_dir, const std::string& out,
                  long cache_mb) {
  using namespace sidq;
  store::StoreOptions options;
  options.cache_bytes = static_cast<size_t>(cache_mb) << 20;
  StatusOr<std::unique_ptr<store::Store>> opened =
      store::Store::Open(nullptr, store_dir, std::move(options));
  if (!opened.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  store::Store& db = **opened;
  const store::RecoveryReport& r = db.recovery();
  std::printf("store %s: gen %llu, %s\n", store_dir.c_str(),
              static_cast<unsigned long long>(db.manifest_gen()),
              r.Summary().c_str());
  stream::QuarantineLedger ledger;
  db.AppendQuarantineTo(&ledger);
  for (const auto& [reason, count] : ledger.CountsByReason()) {
    std::printf("  quarantine %-18s %lld\n", reason.c_str(),
                static_cast<long long>(count));
  }

  std::string dump;
  uint64_t rows = 0;
  const Status scan = db.Scan([&](uint64_t row, const StRecord& rec) {
    dump += std::to_string(row);
    dump += ' ';
    dump += std::to_string(rec.sensor);
    dump += ' ';
    dump += std::to_string(rec.t);
    dump += ' ';
    dump += obs::internal_json::FormatDouble(rec.loc.x);
    dump += ' ';
    dump += obs::internal_json::FormatDouble(rec.loc.y);
    dump += ' ';
    dump += obs::internal_json::FormatDouble(rec.value);
    dump += ' ';
    dump += obs::internal_json::FormatDouble(rec.stddev);
    dump += '\n';
    ++rows;
  });
  if (!scan.ok()) {
    std::fprintf(stderr, "store scan failed: %s\n", scan.ToString().c_str());
    return 1;
  }
  std::string text = "# sidq-store-scan v1 field=" + db.field_name() +
                     " rows=" + std::to_string(rows) + "\n";
  text += dump;
  const Status st = store::AtomicWriteFile(nullptr, out, text);
  if (!st.ok()) {
    std::fprintf(stderr, "store scan write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const store::BlockCache::Stats cache = db.cache_stats();
  std::printf("  %llu readable rows -> %s (cache: %llu hits, %llu misses, "
              "%llu resident bytes)\n",
              static_cast<unsigned long long>(rows), out.c_str(),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.resident_bytes));
  return 0;
}

// One deterministic maintenance pass: rewrites every rolled segment that
// holds quarantined bytes (dropping the dead blocks, tombstoning their
// verdicts so row-id gaps and loss accounting survive) and commits the
// result as a new manifest generation. Safe to interrupt: recovery serves
// either the pre- or the post-compaction generation, never a blend.
int CompactMode(const std::string& store_dir, long cache_mb) {
  using namespace sidq;
  store::StoreOptions options;
  options.cache_bytes = static_cast<size_t>(cache_mb) << 20;
  StatusOr<std::unique_ptr<store::Store>> opened =
      store::Store::Open(nullptr, store_dir, std::move(options));
  if (!opened.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  store::Store& db = **opened;
  std::printf("store %s: gen %llu, %s\n", store_dir.c_str(),
              static_cast<unsigned long long>(db.manifest_gen()),
              db.recovery().Summary().c_str());
  store::CompactionReport report;
  Status st = db.Compact(&report);
  if (!st.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = db.Close();
  if (!st.ok()) {
    std::fprintf(stderr, "store close failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (report.segments_compacted == 0) {
    std::printf("  nothing to compact: no rolled segment holds quarantined "
                "bytes\n");
  } else {
    std::printf("  compacted %u segment(s): %llu live blocks rewritten, "
                "%llu dead blocks tombstoned, %llu bytes reclaimed "
                "-> gen %llu\n",
                report.segments_compacted,
                static_cast<unsigned long long>(report.blocks_rewritten),
                static_cast<unsigned long long>(report.blocks_dropped),
                static_cast<unsigned long long>(report.bytes_reclaimed),
                static_cast<unsigned long long>(report.manifest_gen));
  }
  return 0;
}

int ReplayMode(const std::string& path, const std::string& stream_out,
               const std::string& store_dir, int threads, long cache_mb) {
  using namespace sidq;
  const StatusOr<stream::EventLog> log = stream::ReadEventLogFile(path);
  if (!log.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }
  const stream::StreamConfig config = SensorFleetConfig();

  stream::ReplayOptions options;
  options.num_threads = threads;
  const StatusOr<stream::StreamOutput> streamed =
      stream::Replay(*log, config, options);
  if (!streamed.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 streamed.status().ToString().c_str());
    return 1;
  }

  // The differential gate: the incremental engine must agree with the
  // order-insensitive batch reference bit for bit.
  const stream::StreamOutput batch = stream::BatchReference(*log, config);
  const std::string stream_json = stream::StreamOutputToJson(*streamed);
  if (stream_json != stream::StreamOutputToJson(batch)) {
    std::fprintf(stderr,
                 "REPLAY DIVERGENCE: stream output differs from the batch "
                 "reference (threads=%d)\n",
                 threads);
    return 1;
  }

  std::printf("replayed %zu events through %d worker(s): stream == batch "
              "(checksum %llu)\n",
              log->events.size(), threads,
              static_cast<unsigned long long>(
                  stream::OutputChecksum(*streamed)));
  size_t cleaned = 0;
  for (const StSeries& s : streamed->cleaned.series()) cleaned += s.size();
  std::printf("  cleaned records: %zu, quarantined: %zu, windows: %zu, "
              "alerts: %zu\n",
              cleaned, streamed->ledger.size(), streamed->kpis.size(),
              streamed->alerts.size());
  for (const auto& [reason, count] : streamed->ledger.CountsByReason()) {
    std::printf("    quarantine %-15s %lld\n", reason.c_str(),
                static_cast<long long>(count));
  }

  if (!stream_out.empty()) {
    const Status st = obs::WriteTextFile(stream_out, stream_json);
    if (!st.ok()) {
      std::fprintf(stderr, "stream-out write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("  stream output -> %s\n", stream_out.c_str());
  }
  if (!store_dir.empty()) {
    return IngestIntoStore(*streamed, log->field_name, store_dir, cache_mb);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sidq;

  int threads = 0;
  long deadline_ms = -1;
  int max_retries = 0;
  bool best_effort = false;
  std::string metrics_out;
  std::string trace_out;
  std::string record_log;
  std::string replay_log;
  std::string stream_out;
  std::string store_dir;
  std::string store_scan;
  long cache_mb = 64;
  bool compact = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-retries") == 0 && i + 1 < argc) {
      max_retries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--best-effort") == 0) {
      best_effort = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--record-log") == 0 && i + 1 < argc) {
      record_log = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_log = argv[++i];
    } else if (std::strcmp(argv[i], "--stream-out") == 0 && i + 1 < argc) {
      stream_out = argv[++i];
    } else if (std::strcmp(argv[i], "--store-dir") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--store-scan") == 0 && i + 1 < argc) {
      store_scan = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      cache_mb = std::atol(argv[++i]);
      if (cache_mb < 0) {
        std::fprintf(stderr, "--cache-mb must be >= 0 (0 = unbounded)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--compact") == 0) {
      compact = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--deadline-ms D] "
                   "[--max-retries R] [--best-effort] "
                   "[--metrics-out FILE] [--trace-out FILE] "
                   "[--record-log FILE] "
                   "[--replay FILE [--stream-out FILE] [--store-dir DIR]] "
                   "[--store-dir DIR --store-scan FILE] "
                   "[--store-dir DIR --compact] [--cache-mb N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!record_log.empty()) return RecordLogMode(record_log);
  if (compact) {
    if (store_dir.empty()) {
      std::fprintf(stderr, "--compact requires --store-dir\n");
      return 2;
    }
    return CompactMode(store_dir, cache_mb);
  }
  if (!store_scan.empty()) {
    if (store_dir.empty()) {
      std::fprintf(stderr, "--store-scan requires --store-dir\n");
      return 2;
    }
    return StoreScanMode(store_dir, store_scan, cache_mb);
  }
  if (!replay_log.empty()) {
    return ReplayMode(replay_log, stream_out, store_dir, threads, cache_mb);
  }
  const bool observed_run = !metrics_out.empty() || !trace_out.empty();

  Rng rng(7);
  const int kVehicles = 24;
  const uint64_t kDegradeSeed = 99;
  sim::Fleet fleet = sim::MakeFleet(12, 12, 180.0, kVehicles, 24, &rng);
  std::printf("fleet_cleaning: %d vehicles on a %zu-edge road network, "
              "--threads %d\n\n",
              kVehicles, fleet.network.num_edges(), threads);

  // Degrade: GPS noise plus sparse reporting to save battery. Each vehicle
  // degrades under its own substream so the input fleet is reproducible
  // regardless of iteration or thread count.
  std::vector<Trajectory> observed;
  observed.reserve(fleet.trajectories.size());
  for (const Trajectory& truth : fleet.trajectories) {
    Rng vehicle_rng = Rng::ForKey(kDegradeSeed, truth.object_id());
    observed.push_back(
        sim::Resample(sim::AddGpsNoise(truth, 14.0, &vehicle_rng), 5000));
  }

  // The cleaning pipeline. Stages are shared read-only across workers, so
  // each map-match call builds its own matcher: HmmMapMatcher keeps a
  // per-instance Dijkstra cache that is not safe to share between threads.
  const sim::RoadNetwork* network = &fleet.network;
  TrajectoryPipeline pipeline;
  // Map matching is a degradation ladder: the HMM Viterbi rung observes the
  // per-vehicle deadline; a vehicle whose budget runs out falls to a cheap
  // geometric nearest-road snap instead of failing the fleet.
  auto map_match = std::make_unique<LadderStage>("map_match");
  map_match->AddRungCtx(
      "hmm_viterbi",
      [network](const Trajectory& in,
                const StageContext& ctx) -> StatusOr<Trajectory> {
        refine::HmmMapMatcher matcher(network);
        SIDQ_ASSIGN_OR_RETURN(auto match, matcher.Match(in, ctx.exec));
        return match.matched;
      });
  map_match->AddRung(
      "nearest_road_snap",
      [network](const Trajectory& in) -> StatusOr<Trajectory> {
        Trajectory out(in.object_id());
        for (const TrajectoryPoint& pt : in.points()) {
          SIDQ_ASSIGN_OR_RETURN(EdgeId e, network->NearestEdge(pt.p));
          TrajectoryPoint snapped = pt;
          snapped.p = network->ProjectToEdge(e, pt.p);
          out.AppendUnordered(snapped);
        }
        return out;
      });
  pipeline.Add(std::move(map_match));
  pipeline.Add("complete",
               [network](const Trajectory& in) -> StatusOr<Trajectory> {
                 return uncertainty::RoadCompleter(network).Complete(in);
               });
  pipeline.Add("simplify", [](const Trajectory& in) -> StatusOr<Trajectory> {
    return reduce::DouglasPeuckerSed(in, 2.0);
  });

  exec::FleetRunner::Options options;
  options.num_threads = threads;
  options.sharding = exec::ShardingMode::kSkewAware;
  options.skew_max_load = 4;
  options.base_seed = kDegradeSeed;
  options.deadline_ms = deadline_ms;
  options.retry.max_retries = max_retries;
  if (best_effort) options.failure_policy = exec::FailurePolicy::kBestEffort;

  // Observability sinks. An observed run switches to virtual time so the
  // exported metrics/trace JSON is a pure function of the inputs --
  // byte-identical across invocations and thread counts.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObsSinks sinks;
  if (observed_run) {
    sinks.metrics = &registry;
    sinks.tracer = &tracer;
    options.obs = &sinks;
    options.virtual_time = true;
  }
  // Record any chaos faults (none armed here, but the hook is part of the
  // workflow this example demonstrates).
  obs::ScopedFailPointObservation failpoint_observation(sinks);

  const exec::FleetRunner runner(&pipeline, options);

  const auto t0 = std::chrono::steady_clock::now();
  const exec::FleetResult result =
      runner.RunProfiled(observed, &fleet.trajectories, TrajectoryProfiler());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!result.ok() && !(best_effort && result.partial_ok())) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 result.first_error.ToString().c_str());
    return 1;
  }
  std::printf("cleaned %zu vehicles in %.3f s (%zu shards, skew-aware)\n",
              observed.size(), wall_s, result.shards_total);
  std::printf("%s\n", result.ResilienceSummary().c_str());
  for (const exec::ObjectAnnotation& a : result.annotations) {
    std::printf("  vehicle %llu: %s", static_cast<unsigned long long>(a.id),
                ExecQualityName(a.quality));
    if (a.retries > 0) std::printf(", %d retries", a.retries);
    for (const DegradeEvent& d : a.degraded) {
      std::printf(", %s fell to rung %d (%s): %s", d.stage.c_str(), d.rung,
                  d.rung_name.c_str(), d.cause.ToString().c_str());
    }
    if (!a.status.ok()) std::printf(": %s", a.status.ToString().c_str());
    std::printf("\n");
  }
  std::printf("\n");

  // Fleet-level DQ report: accuracy RMSE per stage, aggregated over the
  // whole fleet (the per-stage mean/p50/p99 merge of every StageReport).
  std::printf("fleet accuracy (m, vs. ground truth)   mean    p50    p99\n");
  for (const exec::FleetStageStats& stats : result.stage_stats) {
    const auto it = stats.metrics.find(DqDimension::kAccuracy);
    if (it == stats.metrics.end()) continue;
    std::printf("  %-36s %6.1f %6.1f %6.1f\n", stats.stage_name.c_str(),
                it->second.mean, it->second.p50, it->second.p99);
  }
  std::printf("\n");

  // Data reduction across the fleet.
  size_t observed_points = 0, cleaned_points = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    observed_points += observed[i].size();
    cleaned_points += result.cleaned[i].size();
  }
  std::printf("gap completion + simplification\n");
  std::printf("  sparse points:   %zu\n", observed_points);
  std::printf("  cleaned points:  %zu (%.1fx densification after DP-SED)\n\n",
              cleaned_points,
              static_cast<double>(cleaned_points) / observed_points);

  // Exploitation: feed the cleaned streams to the dispatcher's continuous
  // range query with safe regions.
  query::SafeRegionMonitor monitor(
      geometry::BBox(500, 500, 1400, 1400));  // dispatcher watches downtown
  for (size_t i = 0; i < result.cleaned.size(); ++i) {
    for (const auto& pt : result.cleaned[i].points()) {
      monitor.ProcessUpdate(result.cleaned[i].object_id(), pt.p);
    }
  }
  std::printf("continuous range monitoring (safe regions)\n");
  std::printf("  updates: %zu, messages: %zu (%.0f%% saved), %zu vehicles "
              "currently downtown\n",
              monitor.updates_processed(), monitor.messages_sent(),
              100.0 * monitor.MessageSavings(), monitor.inside().size());

  if (!metrics_out.empty()) {
    auto json = obs::MetricsToJson(registry.Snapshot());
    if (!json.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    Status st = obs::WriteTextFile(metrics_out, json.value());
    if (!st.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nmetrics snapshot -> %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    auto json = obs::TraceToChromeJson(tracer.CanonicalSpans());
    if (!json.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    Status st = obs::WriteTextFile(trace_out, json.value());
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace (%zu spans, chrome://tracing) -> %s\n",
                tracer.num_spans(), trace_out.c_str());
  }
  return 0;
}

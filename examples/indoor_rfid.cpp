// Indoor RFID tracking: symbolic trajectory cleaning and exploitation.
// A warehouse corridor is instrumented with RFID readers; tags are missed
// (false negatives) and cross-read by neighbouring antennas (false
// positives). We clean the streams three ways, then mine movement patterns
// and annotate mobility semantics on the repaired data.

#include <cstdio>
#include <set>

#include "analytics/pattern_mining.h"
#include "core/random.h"
#include "fault/rfid_cleaning.h"
#include "query/symbolic_range.h"
#include "sim/rfid.h"

int main() {
  using namespace sidq;

  Rng rng(5);
  const auto deployment = sim::RfidDeployment::Corridor(16);
  const int kTags = 25;
  std::vector<SymbolicTrajectory> truth_streams, dirty_streams,
      cleaned_streams;

  std::printf("indoor_rfid: %zu readers, %d tags\n\n",
              deployment.num_readers(), kTags);

  fault::SmoothingWindowCleaner smoothing;
  fault::ConstraintCleaner constraints(&deployment);
  fault::HmmCleaner hmm(&deployment);

  double acc_dirty = 0.0, acc_smooth = 0.0, acc_constraint = 0.0,
         acc_hmm = 0.0;
  std::vector<analytics::UncertainSequence> cleaned_sequences;

  for (int tag = 0; tag < kTags; ++tag) {
    const SymbolicTrajectory truth =
        deployment.SimulateWalk(tag, 50, 4, 1000, &rng);
    const SymbolicTrajectory dirty =
        deployment.Degrade(truth, /*fn_rate=*/0.25, /*fp_rate=*/0.15, &rng);

    acc_dirty += fault::TickAccuracy(dirty, truth, 1000);
    acc_smooth +=
        fault::TickAccuracy(smoothing.Clean(dirty).value(), truth, 1000);
    acc_constraint +=
        fault::TickAccuracy(constraints.Clean(dirty).value(), truth, 1000);
    const SymbolicTrajectory repaired = hmm.Clean(dirty).value();
    acc_hmm += fault::TickAccuracy(repaired, truth, 1000);

    cleaned_sequences.push_back(
        analytics::FromSymbolic(repaired, /*confidence=*/0.95));
    truth_streams.push_back(truth);
    dirty_streams.push_back(dirty);
    cleaned_streams.push_back(repaired);
  }

  std::printf("per-tick region accuracy (fn=0.25, fp=0.15)\n");
  std::printf("  dirty stream:        %.3f\n", acc_dirty / kTags);
  std::printf("  smoothing window:    %.3f\n", acc_smooth / kTags);
  std::printf("  adjacency constraints: %.3f\n", acc_constraint / kTags);
  std::printf("  HMM (Viterbi):       %.3f\n\n", acc_hmm / kTags);

  // Mine frequent movement patterns over the *cleaned* symbolic streams.
  analytics::PatternMiner::Options mopts;
  mopts.min_expected_support = kTags * 0.25;
  mopts.min_length = 3;
  mopts.max_length = 4;
  const auto patterns =
      analytics::PatternMiner(mopts).Mine(cleaned_sequences);
  std::printf("frequent movement patterns (expected support >= %.1f)\n",
              mopts.min_expected_support);
  const size_t show = std::min<size_t>(5, patterns.size());
  for (size_t i = 0; i < show; ++i) {
    std::printf("  #%zu: ", i + 1);
    for (size_t j = 0; j < patterns[i].symbols.size(); ++j) {
      std::printf("%sR%u", j ? " -> " : "", patterns[i].symbols[j]);
    }
    std::printf("   (support %.1f)\n", patterns[i].expected_support);
  }
  if (patterns.empty()) {
    std::printf("  (none above threshold)\n");
  }

  // Exploitation: a zone-occupancy query (how many tags are in the packing
  // area, readers 6-9?) answered from raw vs cleaned streams.
  const std::set<RegionId> packing_area{6, 7, 8, 9};
  const double dirty_err = query::CountError(
      truth_streams, dirty_streams, packing_area, 1000, 8000);
  const double cleaned_err = query::CountError(
      truth_streams, cleaned_streams, packing_area, 1000, 8000);
  std::printf("\nzone occupancy query (readers 6-9)\n");
  std::printf("  mean count error on raw streams:     %.2f tags\n",
              dirty_err);
  std::printf("  mean count error on cleaned streams: %.2f tags\n",
              cleaned_err);
  return 0;
}

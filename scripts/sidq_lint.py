#!/usr/bin/env python3
"""sidq-lint: repo-specific invariants the compiler cannot enforce.

v2: a tokenizing multi-pass engine. Pass 1 strips comments/strings and
collects suppression annotations; pass 2 runs line rules; pass 3 runs
file-scope rules that need cross-line structure (range-for scanning,
class-body capability checks); pass 4 flags suppressions that matched
nothing; pass 5 applies the checked-in baseline and formats output.

Rules
-----
  R1  ignored-status     `(void)` cast of a call expression needs an
                         explicit `// sidq: allow-ignored-status(<reason>)`
                         annotation. A swallowed Status is
                         indistinguishable from success; the annotation
                         forces a written reason.
  R2  banned-rand        `rand()` / `srand()` are banned; use the seeded,
                         reproducible `sidq::Rng` from src/core/random.h.
                         No suppression: there is no legitimate use.
  R3  using-namespace    `using namespace` in a header leaks into every
                         includer; banned in *.h. No suppression.
  R4  pragma-once        every header starts with `#pragma once` as its
                         first non-comment line. Fixable with --fix.
  R5  naked-new          `new` / `delete` outside index internals; use
                         std::make_unique / containers. Index node pools
                         (src/index/) are the one sanctioned exception.
  R6  stray-thread       `std::thread` / `std::jthread` / `std::async`
                         outside src/exec/; ad-hoc threads bypass the
                         pool's determinism and shutdown guarantees. Go
                         through exec::ThreadPool / exec::FleetRunner.
                         (`std::thread::hardware_concurrency` is fine.)
  R7  scalar-haversine   per-point `HaversineDistance` inside a loop in
                         the hot-path layers (src/query/, src/outlier/,
                         src/refine/). Project once through
                         geometry::LocalProjection (or
                         kernels::SoaBuffer::FromLatLon) and use the
                         planar kernels.
  R8  wallclock          `std::this_thread::sleep_for` / `sleep_until` and
                         `std::chrono::system_clock::now` outside
                         src/exec/. All timing goes through the Clock
                         abstraction (core/clock.h) so tests run on
                         VirtualClock instantly and deterministically.
  R9  obs-own-timing     any `std::chrono` clock inside src/obs/. The
                         observability layer takes every timestamp from an
                         injected Clock (core/clock.h); that is the whole
                         determinism contract. No suppression.
  R10 raw-mutex          raw `std::mutex` / `std::lock_guard` /
                         `std::unique_lock` / `std::condition_variable`
                         (and friends) outside src/core/mutex.h. The
                         sidq::Mutex wrappers carry the Clang Thread
                         Safety capability annotations; a raw primitive is
                         invisible to -Wthread-safety and silently opts
                         the code out of compile-time lock checking.
  R11 unordered-iter     range-for over a `std::unordered_map` /
                         `std::unordered_set` in the snapshot-, export-
                         and output-producing layers (src/obs/, src/core/,
                         src/analytics/, src/query/). Hash-order iteration
                         that feeds output breaks the bit-determinism
                         contract. Sort first, use an ordered container,
                         or justify with
                         `// sidq: allow-unordered-iter(<reason>)`.
                         A `sort(...)` later in the same enclosing block
                         sequence also clears the finding.
  R12 guarded-by-unknown-lock
                         every `SIDQ_GUARDED_BY(x)` / `SIDQ_PT_GUARDED_BY(x)`
                         must name a `Mutex` / `SharedMutex` member of the
                         same class or struct. A guard expression the
                         analysis cannot resolve locally is a contract
                         that cannot be checked.
  R13 stream-wallclock-watermark
                         any `std::chrono` clock or `SteadyClock` inside
                         src/stream/. Watermarks and window closes advance
                         on EVENT time (or an injected Clock/VirtualClock
                         via core/clock.h); a wall-clock reading would make
                         lateness depend on arrival wall time and break the
                         stream-vs-batch replay contract. No suppression.
  R14 hotloop-heap-alloc heap allocation inside a loop in src/kernels/:
                         `new`/`delete`, `malloc`/`free` and friends, or
                         `push_back`/`emplace_back` onto a container with
                         no `reserve` evidence in the same file. Kernel
                         hot-loop scratch comes from the arena
                         (core/arena.h ArenaScope / ArenaVec -- ArenaVec
                         growth is arena-backed and exempt); an allocator
                         round trip per iteration is exactly what the
                         arena exists to remove. Justified cold paths
                         (e.g. bulk-load construction) annotate with
                         `// sidq: allow-hotloop-heap-alloc(<reason>)`.
  R15 raw-io             raw `std::ofstream` / `fopen` anywhere outside
                         src/store/vfs.cc. Every persisted byte goes
                         through the store Vfs seam (store/vfs.h:
                         AtomicWriteFile, ReadFileToString, WritableFile)
                         so short writes, torn appends and lost fsyncs are
                         injectable and the durability tests mean
                         something; an ofstream bypass swallows short
                         writes and close errors silently. Reads via
                         std::ifstream are allowed (they cannot lose
                         data). Justified exceptions annotate with
                         `// sidq: allow-raw-io(<reason>)`.
  R16 raw-read           whole-file `Vfs::ReadFile(` inside src/store/
                         outside the Vfs implementation and the bounded
                         BlockReader. Segment data is read positionally
                         in block-sized chunks (store/block_reader.h) so
                         peak scan RSS is capped by the cache budget, not
                         the dataset; a whole-segment slurp silently
                         reintroduces O(segment) memory. Small bounded
                         control files (manifests, CURRENT) annotate with
                         `// sidq: allow-raw-read(<reason>)`.

Suppression syntax
------------------
One unified spelling, reason mandatory:

    // sidq: allow-<rule-slug>(<reason, may continue on following
    // comment lines>)

placed on the offending line or on the comment block directly above it.
Suppression-hygiene meta rules (not suppressible, not baselineable-away
by accident: they are ordinary findings):

  S1  legacy-suppression    old spellings (`ignore-status`, `allow-thread`)
                            are findings and do NOT suppress. --fix
                            rewrites them to the unified form.
  S2  unknown-suppression   `allow-<slug>` where <slug> is not a
                            suppressible rule.
  S3  missing-reason        `allow-<slug>` without a written reason.
  S4  unused-suppression    a suppression whose rule never matched the
                            covered line. Stale annotations rot.

Baseline
--------
`scripts/sidq_lint_baseline.json` holds grandfathered findings as
{file, line, rule} triples. Baselined findings do not fail the run but
are counted. `--write-baseline` regenerates the file from the current
findings. The checked-in baseline is empty and must stay free of
src/exec/ and src/obs/ entries.

Usage: scripts/sidq_lint.py [--root DIR] [--format {text,json}]
                            [--fix] [--write-baseline]
                            [--baseline FILE] [paths...]
Exits 0 when the tree is clean (baselined findings allowed), 1 with
findings otherwise, 2 on usage errors.

Registered as the tier-1 `sidq_lint` ctest; `lint_selftest` runs the
engine against the fixture corpus in tests/lint_fixtures/.
"""

import argparse
import bisect
import json
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = {".h", ".cc", ".cpp"}
# The fixture corpus is deliberately dirty; never lint it as repo code.
EXCLUDED_PART = "lint_fixtures"

# ---------------------------------------------------------------------------
# Rule registry

RULES = {
    "R1": "ignored-status",
    "R2": "banned-rand",
    "R3": "using-namespace",
    "R4": "pragma-once",
    "R5": "naked-new",
    "R6": "stray-thread",
    "R7": "scalar-haversine",
    "R8": "wallclock",
    "R9": "obs-own-timing",
    "R10": "raw-mutex",
    "R11": "unordered-iter",
    "R12": "guarded-by-unknown-lock",
    "R13": "stream-wallclock-watermark",
    "R14": "hotloop-heap-alloc",
    "R15": "raw-io",
    "R16": "raw-read",
    "S1": "legacy-suppression",
    "S2": "unknown-suppression",
    "S3": "missing-reason",
    "S4": "unused-suppression",
}
SLUG_TO_RULE = {v: k for k, v in RULES.items()}
# Rules whose findings may be waived with // sidq: allow-<slug>(<reason>).
SUPPRESSIBLE = {
    "ignored-status", "stray-thread", "scalar-haversine", "wallclock",
    "raw-mutex", "unordered-iter", "guarded-by-unknown-lock",
    "hotloop-heap-alloc", "raw-io", "raw-read",
}
LEGACY_SPELLINGS = {
    "ignore-status": "allow-ignored-status",
    "allow-thread": "allow-stray-thread",
}

# ---------------------------------------------------------------------------
# Patterns

VOID_CAST_CALL_RE = re.compile(r"\(void\)\s*[\w:\->.\[\]]+\s*\(")
RAND_RE = re.compile(r"\b(?:srand|rand)\s*\(")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (ptr) T` placement incl.
DELETE_RE = re.compile(r"\bdelete(\[\])?\b")
NAKED_NEW_ALLOWED = re.compile(r"(^|/)src/index/|arena")

THREAD_RE = re.compile(
    r"\bstd::(?:jthread\b|async\b|thread\b(?!::hardware_concurrency))")
THREAD_ALLOWED = re.compile(r"(^|/)src/exec/")

HAVERSINE_RE = re.compile(r"\bHaversineDistance\s*\(")
LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")
HAVERSINE_SCOPED = re.compile(r"(^|/)src/(?:query|outlier|refine)/")

WALLCLOCK_RE = re.compile(
    r"\bstd::this_thread::sleep_(?:for|until)\b"
    r"|\bstd::chrono::system_clock::now\b")
WALLCLOCK_ALLOWED = re.compile(r"(^|/)src/exec/")

OBS_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:steady_clock|high_resolution_clock|system_clock)\b")
OBS_SCOPED = re.compile(r"(^|/)src/obs/")

# R10: every raw standard synchronization primitive. sidq::Mutex and
# friends (src/core/mutex.h) are the only sanctioned users.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
    r"|recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock"
    r"|shared_lock|scoped_lock|condition_variable|condition_variable_any)\b")
RAW_MUTEX_ALLOWED_FILE = "src/core/mutex.h"

# R13 scope: the streaming layer. Watermarks advance on event time (or an
# injected Clock), never on a wall-clock reading -- otherwise lateness
# depends on when an event arrived, and replay stops being a pure function
# of the recorded log.
STREAM_SCOPED = re.compile(r"(^|/)src/stream/")
STREAM_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:steady_clock|high_resolution_clock|system_clock)\b"
    r"|\bSteadyClock\b")

# R14 scope: the kernel layer's hot loops. Kernel scratch comes from the
# bump arena (core/arena.h); a heap allocation inside a kernel loop is an
# allocator round trip per iteration. ArenaVec (arena-backed growth) and
# vectors with `reserve` evidence in the same file are the sanctioned
# growth paths.
KERNEL_HOT_SCOPED = re.compile(r"(^|/)src/kernels/")
HEAP_CALL_RE = re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\(")
PUSH_BACK_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*[A-Za-z_]\w*)\s*(?:\.|->)\s*"
    r"(?:push_back|emplace_back)\s*\(")
RESERVE_CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*[A-Za-z_]\w*)\s*(?:\.|->)\s*"
    r"reserve\s*\(")
ARENA_VEC_DECL_RE = re.compile(
    r"\bArenaVec<[^;{}]*?>\s*[*&]?\s*([A-Za-z_]\w*)")

# R15: writer-side raw file I/O. The store Vfs (src/store/vfs.h) is the
# single seam all persistence goes through -- that is what makes short
# writes, torn appends and lost fsyncs injectable. Only the seam's own
# implementation may touch the raw APIs. std::ifstream (read-only) is
# deliberately NOT matched.
RAW_IO_RE = re.compile(r"\b(?:std::)?ofstream\b|\b(?:std::)?fopen\s*\(")
RAW_IO_ALLOWED_FILE = "src/store/vfs.cc"

# R16: whole-file reads inside the store. Segment bytes flow through
# NewRandomAccessFile + the BlockReader in block-sized chunks so peak
# read RSS is bounded by the cache budget; a Vfs::ReadFile of a segment
# silently reintroduces the load-everything scan path. Only the seam
# itself and the bounded reader may call it unannotated.
# Member-access call sites only (vfs->ReadFile(...)), so interface and
# override declarations do not fire.
RAW_READ_RE = re.compile(r"(?:\.|->)\s*ReadFile\s*\(")
RAW_READ_SCOPED = re.compile(r"(^|/)src/store/")
RAW_READ_ALLOWED_FILES = {
    "src/store/vfs.cc", "src/store/vfs.h", "src/store/block_reader.cc",
}

# R11 scope: layers whose iteration order can reach snapshots, exports,
# serialized traces or query/analytics results.
UNORDERED_ITER_SCOPED = re.compile(
    r"(^|/)src/(?:obs|core|analytics|query|stream)/")
UNORDERED_CONTAINER_RE = re.compile(r"\bunordered_(?:map|set)\b")
SORT_CALL_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")

GUARDED_BY_RE = re.compile(r"\bSIDQ_(?:PT_)?GUARDED_BY\s*\(([^)]*)\)")
# The macro definitions themselves are the one legitimate out-of-class use.
GUARDED_BY_DEFINITION_FILE = "src/core/thread_annotations.h"
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:SIDQ_\w+\s*(?:\([^)]*\))?\s*)*"
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{")

# Suppression comments. Only recognized when `sidq:` directly follows the
# first `//` on the line, so prose that *mentions* the syntax (docs) does
# not register as an annotation.
SUPPRESSION_RE = re.compile(
    r"^\s*sidq:\s*(allow-[a-z0-9-]+|ignore-status)(?:\s*\((.*))?")

CPP_KEYWORDS = {
    "auto", "const", "constexpr", "static", "mutable", "volatile",
    "struct", "class", "new", "delete", "true", "false", "nullptr",
    "this", "sizeof", "if", "else", "return", "std",
}


# ---------------------------------------------------------------------------
# Tokenizing front-end

def strip_comments_and_strings(text):
    """Returns text with comments and string/char literals blanked out
    (newlines kept) so pattern passes never fire inside prose."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    __slots__ = ("file", "line", "rule", "message", "fix", "baselined")

    def __init__(self, file, line, rule, message, fix=None):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message
        self.fix = fix  # None | ("insert_pragma_once",) | ("replace", old, new)
        self.baselined = False

    def key(self):
        return (self.file, self.line, self.rule)

    def to_json(self):
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "slug": RULES.get(self.rule, "?"),
            "message": self.message,
            "baselined": self.baselined,
            "fixable": self.fix is not None,
        }


class Suppression:
    __slots__ = ("line", "slug", "covered", "used")

    def __init__(self, line, slug, covered):
        self.line = line      # 1-based line of the `// sidq:` comment
        self.slug = slug
        self.covered = covered  # set of 1-based line numbers it waives
        self.used = False


class FileContext:
    """Everything pass 1 extracts from one translation unit."""

    def __init__(self, path, rel, root):
        self.path = path
        self.rel = rel
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.code_text = strip_comments_and_strings(self.raw)
        self.code_lines = self.code_text.splitlines()
        self.is_header = path.suffix == ".h"
        self.findings = []
        self.suppressions = []
        self._line_offsets = [0]
        for m in re.finditer(r"\n", self.code_text):
            self._line_offsets.append(m.end())
        self._scan_suppressions()
        self._depths = self._line_start_depths()
        # For R11, member containers are usually declared in the paired
        # header: src/foo/bar.cc reads src/foo/bar.h next to it.
        self.header_code = ""
        if not self.is_header:
            paired = path.with_suffix(".h")
            if paired.is_file():
                self.header_code = strip_comments_and_strings(
                    paired.read_text(encoding="utf-8", errors="replace"))

    # -- geometry helpers ---------------------------------------------------

    def line_of(self, offset):
        """1-based line number of a character offset in code_text."""
        return bisect.bisect_right(self._line_offsets, offset)

    def _line_start_depths(self):
        depths = []
        d = 0
        for ln in self.code_lines:
            depths.append(d)
            d += ln.count("{") - ln.count("}")
        return depths

    # -- suppression collection --------------------------------------------

    def _scan_suppressions(self):
        for idx, raw_line in enumerate(self.raw_lines):
            lineno = idx + 1
            pos = raw_line.find("//")
            if pos < 0:
                continue
            m = SUPPRESSION_RE.match(raw_line[pos + 2 :])
            if not m:
                continue
            spelled, reason = m.group(1), m.group(2)
            if spelled in LEGACY_SPELLINGS:
                new = LEGACY_SPELLINGS[spelled]
                self.findings.append(Finding(
                    self.rel, lineno, "S1",
                    f"legacy suppression spelling 'sidq: {spelled}(...)'; "
                    f"write 'sidq: {new}(...)' (legacy spellings do not "
                    "suppress; --fix rewrites them)",
                    fix=("replace", f"sidq: {spelled}(", f"sidq: {new}(")))
                continue
            slug = spelled[len("allow-"):]
            if slug not in SUPPRESSIBLE:
                known = "" if slug not in SLUG_TO_RULE else (
                    f"; rule {SLUG_TO_RULE[slug]} ({slug}) does not accept "
                    "suppressions")
                self.findings.append(Finding(
                    self.rel, lineno, "S2",
                    f"unknown suppression 'allow-{slug}'{known}"))
                continue
            if reason is None or not reason.strip():
                self.findings.append(Finding(
                    self.rel, lineno, "S3",
                    f"suppression 'allow-{slug}' needs a written reason: "
                    f"'// sidq: allow-{slug}(<reason>)'"))
                continue
            self.suppressions.append(
                Suppression(lineno, slug, self._covered_lines(idx)))

    def _covered_lines(self, idx):
        """A suppression waives its own line (same-line annotation) or the
        next code-bearing line below a comment-block annotation."""
        code = self.code_lines[idx] if idx < len(self.code_lines) else ""
        if code.strip():
            return {idx + 1}
        j = idx + 1
        while j < len(self.code_lines):
            if self.code_lines[j].strip():
                return {j + 1}
            j += 1
        return set()

    def suppressed(self, lineno, slug):
        """True (and marks the annotation used) when `slug` is waived on
        `lineno`."""
        hit = False
        for s in self.suppressions:
            if s.slug == slug and lineno in s.covered:
                s.used = True
                hit = True
        return hit

    def add(self, lineno, rule, message, fix=None):
        self.findings.append(Finding(self.rel, lineno, rule, message, fix))


# ---------------------------------------------------------------------------
# Pass 2: line rules

def run_line_rules(ctx):
    rel = ctx.rel
    # R4: #pragma once first non-comment line of every header.
    if ctx.is_header:
        first_code = next(
            (ln.strip() for ln in ctx.code_lines if ln.strip()), "")
        if first_code != "#pragma once":
            ctx.add(1, "R4", "header must start with '#pragma once'",
                    fix=("insert_pragma_once",))

    haversine_scoped = bool(HAVERSINE_SCOPED.search(rel))
    raw_mutex_exempt = rel == RAW_MUTEX_ALLOWED_FILE
    kernel_hot_scoped = bool(KERNEL_HOT_SCOPED.search(rel))
    # R14 pre-scan: ArenaVec-declared names grow out of the arena, and any
    # receiver chain with a `reserve` call somewhere in the file is treated
    # as capacity-managed (the reserve conventionally precedes the loop).
    arena_vec_names = set()
    reserved_chains = set()
    if kernel_hot_scoped:
        all_code = "\n".join(ctx.code_lines)
        for m in ARENA_VEC_DECL_RE.finditer(all_code):
            arena_vec_names.add(m.group(1))
        for m in RESERVE_CALL_RE.finditer(all_code):
            reserved_chains.add(
                re.sub(r"\s+", "", m.group(1)).replace("->", "."))
    depth = 0
    loop_depths = []

    for idx, code in enumerate(ctx.code_lines):
        lineno = idx + 1

        # R1: (void)-cast of a call expression without an annotation.
        if VOID_CAST_CALL_RE.search(code):
            if not ctx.suppressed(lineno, "ignored-status"):
                ctx.add(lineno, "R1",
                        "discarded call result via (void) cast without "
                        "'// sidq: allow-ignored-status(<reason>)' "
                        "annotation")

        # R2: rand()/srand() banned outside the Rng implementation.
        if rel != "src/core/random.h" and RAND_RE.search(code):
            ctx.add(lineno, "R2",
                    "rand()/srand() banned; use sidq::Rng "
                    "(src/core/random.h)")

        # R3: using namespace in a header.
        if ctx.is_header and USING_NAMESPACE_RE.search(code):
            ctx.add(lineno, "R3", "'using namespace' is banned in headers")

        # R5: naked new/delete outside index internals.
        if not NAKED_NEW_ALLOWED.search(rel):
            if NEW_RE.search(code) or DELETE_RE.search(
                    re.sub(r"=\s*delete", "", code)):
                ctx.add(lineno, "R5",
                        "naked new/delete outside src/index/; use "
                        "std::make_unique or a container")

        # R6: thread spawning outside src/exec/ without an annotation.
        if not THREAD_ALLOWED.search(rel) and THREAD_RE.search(code):
            if not ctx.suppressed(lineno, "stray-thread"):
                ctx.add(lineno, "R6",
                        "std::thread/jthread/async outside src/exec/; use "
                        "exec::ThreadPool or annotate with "
                        "'// sidq: allow-stray-thread(<reason>)'")

        # R7: per-point HaversineDistance inside a loop in hot layers.
        if haversine_scoped and HAVERSINE_RE.search(code):
            in_loop = bool(loop_depths) or LOOP_HEADER_RE.search(code)
            if in_loop and not ctx.suppressed(lineno, "scalar-haversine"):
                ctx.add(lineno, "R7",
                        "per-point HaversineDistance in a loop; project "
                        "once (geometry::LocalProjection / "
                        "SoaBuffer::FromLatLon) and use the planar "
                        "kernels, or annotate with "
                        "'// sidq: allow-scalar-haversine(<reason>)'")

        # R8: wall-clock sleeps/reads outside src/exec/.
        if not WALLCLOCK_ALLOWED.search(rel) and WALLCLOCK_RE.search(code):
            if not ctx.suppressed(lineno, "wallclock"):
                ctx.add(lineno, "R8",
                        "wall-clock sleep_for/sleep_until/"
                        "system_clock::now outside src/exec/; time goes "
                        "through core/clock.h (ExecContext::Stall, "
                        "VirtualClock in tests), or annotate with "
                        "'// sidq: allow-wallclock(<reason>)'")

        # R9: std::chrono clocks inside src/obs/ -- no annotation escape.
        if OBS_SCOPED.search(rel) and OBS_CLOCK_RE.search(code):
            ctx.add(lineno, "R9",
                    "std::chrono clock inside src/obs/; observability "
                    "timestamps must come from the injected Clock "
                    "(core/clock.h) so traces stay deterministic under "
                    "VirtualClock")

        # R13: wall-clock sources inside src/stream/ -- no annotation
        # escape. Event time or an injected Clock only.
        if STREAM_SCOPED.search(rel) and STREAM_CLOCK_RE.search(code):
            ctx.add(lineno, "R13",
                    "wall-clock source inside src/stream/; watermarks "
                    "advance on event time (or an injected Clock / "
                    "VirtualClock from core/clock.h), never on arrival "
                    "wall time, or stream-vs-batch replay diverges")

        # R10: raw standard sync primitives outside the sidq wrappers.
        if not raw_mutex_exempt and RAW_MUTEX_RE.search(code):
            if not ctx.suppressed(lineno, "raw-mutex"):
                ctx.add(lineno, "R10",
                        "raw std synchronization primitive; use "
                        "sidq::Mutex / sidq::MutexLock / sidq::CondVar "
                        "(src/core/mutex.h) so -Wthread-safety sees the "
                        "capability, or annotate with "
                        "'// sidq: allow-raw-mutex(<reason>)'")

        # R15: raw writer-side file I/O outside the Vfs seam.
        if rel != RAW_IO_ALLOWED_FILE and RAW_IO_RE.search(code):
            if not ctx.suppressed(lineno, "raw-io"):
                ctx.add(lineno, "R15",
                        "raw std::ofstream/fopen outside src/store/vfs.cc; "
                        "persist through the store Vfs "
                        "(store::AtomicWriteFile / WritableFile) so "
                        "durability faults stay injectable, or annotate "
                        "with '// sidq: allow-raw-io(<reason>)'")

        # R16: whole-file ReadFile inside src/store/ outside the Vfs seam
        # and the bounded block reader.
        if (RAW_READ_SCOPED.search(rel)
                and rel not in RAW_READ_ALLOWED_FILES
                and RAW_READ_RE.search(code)):
            if not ctx.suppressed(lineno, "raw-read"):
                ctx.add(lineno, "R16",
                        "whole-file Vfs::ReadFile inside src/store/; read "
                        "segment data positionally through the BlockReader "
                        "(store/block_reader.h) so peak RSS stays bounded "
                        "by the cache budget, or annotate a bounded "
                        "control-file read with "
                        "'// sidq: allow-raw-read(<reason>)'")

        # R14: heap allocation inside a kernel-layer hot loop. Scratch
        # belongs in the arena; the sanctioned growth paths are ArenaVec
        # and vectors reserved before the loop.
        if kernel_hot_scoped and (bool(loop_depths)
                                  or LOOP_HEADER_RE.search(code)):
            if not ctx.suppressed(lineno, "hotloop-heap-alloc"):
                hit = bool(HEAP_CALL_RE.search(code))
                hit = hit or bool(NEW_RE.search(code)) or bool(
                    DELETE_RE.search(re.sub(r"=\s*delete", "", code)))
                if not hit:
                    for m in PUSH_BACK_RE.finditer(code):
                        chain = re.sub(r"\s+", "",
                                       m.group(1)).replace("->", ".")
                        if chain in arena_vec_names:
                            continue
                        if chain in reserved_chains:
                            continue
                        hit = True
                        break
                if hit:
                    ctx.add(lineno, "R14",
                            "heap allocation in a kernel hot loop; draw "
                            "scratch from the arena (core/arena.h "
                            "ArenaScope / ArenaVec), reserve before the "
                            "loop, or annotate with "
                            "'// sidq: allow-hotloop-heap-alloc(<reason>)'")

        # Loop/brace tracking AFTER checking the line, so a loop header
        # and its body both count as inside the loop.
        if LOOP_HEADER_RE.search(code):
            loop_depths.append(depth)
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while loop_depths and depth <= loop_depths[-1]:
                    loop_depths.pop()


# ---------------------------------------------------------------------------
# Pass 3a: R11 -- unordered-container iteration in ordering-sensitive code

def unordered_decl_names(code_text):
    """Identifiers declared with an unordered_{map,set} type, including
    pointer/reference declarations; template arguments are skipped with a
    balanced angle-bracket scan so nested types do not confuse it."""
    names = set()
    n = len(code_text)
    for m in UNORDERED_CONTAINER_RE.finditer(code_text):
        i = m.end()
        while i < n and code_text[i].isspace():
            i += 1
        if i >= n or code_text[i] != "<":
            continue
        depth = 0
        while i < n:
            c = code_text[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    i += 1
                    break
            i += 1
        while i < n and (code_text[i].isspace() or code_text[i] in "*&"):
            i += 1
        ident = re.match(r"[A-Za-z_]\w*", code_text[i:])
        if ident and ident.group(0) not in CPP_KEYWORDS:
            names.add(ident.group(0))
    return names


def range_for_sites(ctx):
    """(lineno, range_expression) for every range-based for statement."""
    sites = []
    text = ctx.code_text
    n = len(text)
    for m in re.finditer(r"\bfor\s*\(", text):
        j = m.end() - 1
        depth = 0
        colon = -1
        while j < n:
            c = text[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == ":" and depth == 1 and colon < 0:
                if text[j + 1 : j + 2] == ":":   # `::` qualifier
                    j += 2
                    continue
                if text[j - 1 : j] == ":":
                    j += 1
                    continue
                colon = j
            j += 1
        if colon >= 0 and j < n:
            sites.append((ctx.line_of(m.start()), text[colon + 1 : j]))
    return sites


def sort_follows(ctx, for_lineno):
    """True when a sort() call appears after the loop, before its
    enclosing block sequence closes -- the canonical fix pattern of
    'collect from the hash map, then sort before use'."""
    start = for_lineno - 1
    if start >= len(ctx.code_lines):
        return False
    d0 = ctx._depths[start]
    for i in range(start + 1, len(ctx.code_lines)):
        if ctx._depths[i] < d0:
            return False
        if SORT_CALL_RE.search(ctx.code_lines[i]):
            return True
    return False


def run_unordered_iter_rule(ctx):
    if not UNORDERED_ITER_SCOPED.search(ctx.rel):
        return
    declared = unordered_decl_names(ctx.code_text)
    declared |= unordered_decl_names(ctx.header_code)
    if not declared:
        return
    for lineno, expr in range_for_sites(ctx):
        tokens = set(re.findall(r"[A-Za-z_]\w*", expr)) - CPP_KEYWORDS
        if not (tokens & declared):
            continue
        # The suppression is consulted (and marked used) against the raw
        # match, BEFORE sort-clearing -- an annotated loop that is also
        # followed by a sort must not count the annotation as stale.
        if ctx.suppressed(lineno, "unordered-iter"):
            continue
        if sort_follows(ctx, lineno):
            continue
        ctx.add(lineno, "R11",
                "range-for over unordered container "
                f"({', '.join(sorted(tokens & declared))}) in an "
                "ordering-sensitive layer; hash order must not reach "
                "output. Sort first, use an ordered container, or "
                "annotate with '// sidq: allow-unordered-iter(<reason>)'")


# ---------------------------------------------------------------------------
# Pass 3b: R12 -- GUARDED_BY must name a lock member of the same class

def class_spans(code_text):
    """[(open_brace_pos, close_brace_pos, name)] for every class/struct
    body, nested bodies included."""
    spans = []
    n = len(code_text)
    for m in CLASS_HEAD_RE.finditer(code_text):
        open_pos = m.end() - 1
        depth = 0
        j = open_pos
        while j < n:
            c = code_text[j]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        spans.append((open_pos, j, m.group(1)))
    return spans


def run_guarded_by_rule(ctx):
    if "SIDQ_" not in ctx.code_text:
        return
    if ctx.rel == GUARDED_BY_DEFINITION_FILE:
        return
    spans = class_spans(ctx.code_text)
    for m in GUARDED_BY_RE.finditer(ctx.code_text):
        lineno = ctx.line_of(m.start())
        arg = m.group(1).strip()
        if arg.startswith("this->"):
            arg = arg[len("this->"):].strip()
        enclosing = None
        for start, end, name in spans:
            if start < m.start() < end:
                if enclosing is None or start > enclosing[0]:
                    enclosing = (start, end, name)
        if enclosing is None:
            if not ctx.suppressed(lineno, "guarded-by-unknown-lock"):
                ctx.add(lineno, "R12",
                        "SIDQ_GUARDED_BY outside any class/struct body; "
                        "the capability has no owner the analysis can "
                        "resolve")
            continue
        if not re.fullmatch(r"[A-Za-z_]\w*", arg):
            if not ctx.suppressed(lineno, "guarded-by-unknown-lock"):
                ctx.add(lineno, "R12",
                        f"SIDQ_GUARDED_BY({arg}): guard must be a plain "
                        "member name the analysis can resolve locally")
            continue
        body = ctx.code_text[enclosing[0] : enclosing[1]]
        decl = re.search(
            r"\b(?:sidq::)?(?:Mutex|SharedMutex)\s+" + re.escape(arg)
            + r"\b", body)
        if not decl:
            if not ctx.suppressed(lineno, "guarded-by-unknown-lock"):
                ctx.add(lineno, "R12",
                        f"SIDQ_GUARDED_BY({arg}): '{arg}' is not declared "
                        "as a Mutex/SharedMutex member of "
                        f"'{enclosing[2]}'; the guard relation cannot be "
                        "checked")


# ---------------------------------------------------------------------------
# Pass 4: stale suppressions

def run_unused_suppression_pass(ctx):
    for s in ctx.suppressions:
        if not s.used:
            ctx.add(s.line, "S4",
                    f"suppression 'allow-{s.slug}' matched nothing on the "
                    "line it covers; delete the stale annotation")


# ---------------------------------------------------------------------------
# Baseline

def load_baseline(path):
    if not path.is_file():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as e:
        print(f"sidq-lint: bad baseline {path}: {e}", file=sys.stderr)
        sys.exit(2)
    entries = data["entries"] if isinstance(data, dict) else data
    return {(e["file"], e["line"], e["rule"]) for e in entries}


def write_baseline(path, findings):
    entries = [
        {"file": f.file, "line": f.line, "rule": f.rule}
        for f in findings
    ]
    path.write_text(
        json.dumps({"version": 1, "entries": entries}, indent=2) + "\n",
        encoding="utf-8")


# ---------------------------------------------------------------------------
# --fix

def apply_fixes(root, findings):
    """Applies every mechanical fix; returns the number applied."""
    by_file = {}
    for f in findings:
        if f.fix is not None:
            by_file.setdefault(f.file, []).append(f)
    applied = 0
    for rel, file_findings in by_file.items():
        path = root / rel
        text = path.read_text(encoding="utf-8", errors="replace")
        for f in file_findings:
            kind = f.fix[0]
            if kind == "insert_pragma_once":
                text = "#pragma once\n" + text
                applied += 1
            elif kind == "replace":
                _, old, new = f.fix
                if old in text:
                    text = text.replace(old, new)
                    applied += 1
        path.write_text(text, encoding="utf-8")
    return applied


# ---------------------------------------------------------------------------
# Driver

def collect_files(root, paths):
    if paths:
        return [Path(p).resolve() for p in paths]
    files = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*"))
                if p.suffix in EXTENSIONS
                and EXCLUDED_PART not in p.relative_to(root).parts)
    return files


def lint_tree(root, files):
    findings = []
    for f in files:
        if not f.is_file():
            print(f"sidq-lint: no such file: {f}", file=sys.stderr)
            sys.exit(2)
        try:
            rel = f.relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        ctx = FileContext(f, rel, root)
        run_line_rules(ctx)
        run_unordered_iter_rule(ctx)
        run_guarded_by_rule(ctx)
        run_unused_suppression_pass(ctx)
        findings.extend(ctx.findings)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (R4, S1) in place")
    parser.add_argument("--baseline", default=None,
                        help="baseline file "
                             "(default: <root>/scripts/sidq_lint_baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: whole tree)")
    args = parser.parse_args()

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parent.parent)
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / "scripts" / "sidq_lint_baseline.json")

    files = collect_files(root, args.paths)
    findings = lint_tree(root, files)

    if args.fix:
        applied = apply_fixes(root, findings)
        if applied:
            print(f"sidq-lint: applied {applied} fix(es); re-linting",
                  file=sys.stderr)
            findings = lint_tree(root, files)

    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"sidq-lint: wrote {len(findings)} entr(ies) to "
              f"{baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    live = []
    for f in findings:
        if f.key() in baseline:
            f.baselined = True
        else:
            live.append(f)

    if args.format == "json":
        print(json.dumps({
            "files_scanned": len(files),
            "findings": [f.to_json() for f in findings],
            "clean": not live,
        }, indent=2))
    else:
        for f in findings:
            tag = " (baselined)" if f.baselined else ""
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}{tag}",
                  file=sys.stderr)
        n_base = sum(1 for f in findings if f.baselined)
        if live:
            print(f"sidq-lint: {len(live)} finding(s) "
                  f"({n_base} baselined) in {len(files)} files",
                  file=sys.stderr)
        else:
            extra = f", {n_base} baselined" if n_base else ""
            print(f"sidq-lint: OK ({len(files)} files clean{extra})")

    return 1 if live else 0


if __name__ == "__main__":
    sys.exit(main())

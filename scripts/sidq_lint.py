#!/usr/bin/env python3
"""sidq-lint: repo-specific invariants the compiler cannot enforce.

Rules
-----
  R1 ignored-status      `(void)` cast of a call expression needs an
                         explicit `// sidq: ignore-status(<reason>)`
                         annotation on the same or the preceding line.
                         A swallowed Status is indistinguishable from
                         success; the annotation forces a written reason.
  R2 banned-rand         `rand()` / `srand()` are banned; use the seeded,
                         reproducible `sidq::Rng` from src/core/random.h.
  R3 using-namespace     `using namespace` in a header leaks into every
                         includer; banned in *.h.
  R4 pragma-once         every header starts with `#pragma once` as its
                         first non-comment line.
  R5 naked-new-delete    `new` / `delete` outside index internals; use
                         std::make_unique / containers. Index node pools
                         (src/index/) are the one sanctioned exception.
  R6 stray-thread        `std::thread` / `std::jthread` / `std::async`
                         outside src/exec/; ad-hoc threads bypass the
                         pool's determinism and shutdown guarantees. Go
                         through exec::ThreadPool / exec::FleetRunner, or
                         annotate the line (or the one before it) with
                         `// sidq: allow-thread(<reason>)` -- e.g. tests
                         that deliberately stress the pool's MPMC path.
                         (`std::thread::hardware_concurrency` is fine.)
  R7 scalar-haversine    per-point `HaversineDistance` inside a loop in
                         the hot-path layers (src/query/, src/outlier/,
                         src/refine/). Trig per point is the slow lane:
                         project once through geometry::LocalProjection
                         (or kernels::SoaBuffer::FromLatLon) and use the
                         planar kernels. Annotate the line (or the one
                         before it) with
                         `// sidq: allow-scalar-haversine` when the loop
                         is genuinely cold (setup, diagnostics).
  R8 wallclock           `std::this_thread::sleep_for` / `sleep_until` and
                         `std::chrono::system_clock::now` outside
                         src/exec/. All timing goes through the Clock
                         abstraction (core/clock.h): deadlines and backoff
                         use an ExecContext clock so tests run on
                         VirtualClock instantly and deterministically.
                         exec::SteadyClock (src/exec/) is the one wall
                         adapter. Annotate the line (or the one before it)
                         with `// sidq: allow-wallclock(<reason>)` -- e.g.
                         a test that really must block a thread.
  R9 obs-own-timing      any `std::chrono` clock (`steady_clock`,
                         `high_resolution_clock`, `system_clock`) inside
                         src/obs/. The observability layer must take every
                         timestamp from an injected Clock (core/clock.h) --
                         that is the whole determinism contract: under
                         VirtualClock a trace is a pure function of the
                         inputs and can be golden-tested byte-for-byte. An
                         observability layer that smuggles in wall time
                         silently breaks every golden trace downstream.
                         No annotation escape: src/obs/ has no legitimate
                         wall-clock use; wall-backed runs inject
                         exec::SteadyClock from outside.

Usage: scripts/sidq_lint.py [--root DIR] [paths...]
Exits 0 when the tree is clean, 1 with findings on stderr otherwise.

Registered as the tier-1 `sidq_lint` ctest; CI runs it on every PR.
"""

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = {".h", ".cc", ".cpp"}

IGNORE_STATUS_RE = re.compile(r"//\s*sidq:\s*ignore-status\([^)]+\)")
VOID_CAST_CALL_RE = re.compile(r"\(void\)\s*[\w:\->.\[\]]+\s*\(")
RAND_RE = re.compile(r"\b(?:srand|rand)\s*\(")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (ptr) T` placement incl.
DELETE_RE = re.compile(r"\bdelete(\[\])?\b")

# Files allowed to use naked new/delete: index node pools and arenas.
NAKED_NEW_ALLOWED = re.compile(r"(^|/)src/index/|arena")

ALLOW_THREAD_RE = re.compile(r"//\s*sidq:\s*allow-thread\([^)]+\)")
# hardware_concurrency is a pure query, not a spawn -- exempt it.
THREAD_RE = re.compile(
    r"\bstd::(?:jthread\b|async\b|thread\b(?!::hardware_concurrency))")
# Directory that owns threading primitives.
THREAD_ALLOWED = re.compile(r"(^|/)src/exec/")

ALLOW_HAVERSINE_RE = re.compile(r"//\s*sidq:\s*allow-scalar-haversine")
HAVERSINE_RE = re.compile(r"\bHaversineDistance\s*\(")
LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")
# Hot-path layers where per-point trig in a loop is a perf bug.
HAVERSINE_SCOPED = re.compile(r"(^|/)src/(?:query|outlier|refine)/")

ALLOW_WALLCLOCK_RE = re.compile(r"//\s*sidq:\s*allow-wallclock\([^)]+\)")
WALLCLOCK_RE = re.compile(
    r"\bstd::this_thread::sleep_(?:for|until)\b"
    r"|\bstd::chrono::system_clock::now\b")
# Directory that owns the wall-clock adapter (exec::SteadyClock).
WALLCLOCK_ALLOWED = re.compile(r"(^|/)src/exec/")

# R9: the observability layer may not read any std::chrono clock itself;
# timestamps come exclusively through the injected core/clock.h Clock.
OBS_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:steady_clock|high_resolution_clock|system_clock)\b")
OBS_SCOPED = re.compile(r"(^|/)src/obs/")


def strip_comments_and_strings(text: str):
    """Returns text with comments and string/char literals blanked out
    (newlines kept), plus the original lines for annotation lookups."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path: Path, rel: str):
    findings = []
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()
    is_header = path.suffix == ".h"

    # R4: #pragma once first non-comment line of every header.
    if is_header:
        first_code = next((ln.strip() for ln in code_lines if ln.strip()), "")
        if first_code != "#pragma once":
            findings.append((1, "R4", "header must start with '#pragma once'"))

    # Brace-depth loop tracking for R7: a stack of the depths at which a
    # for/while header appeared; any line while the stack is non-empty is
    # inside (or on) a loop. Heuristic -- blind to macros, good enough for
    # this codebase's formatting.
    haversine_scoped = bool(HAVERSINE_SCOPED.search(rel))
    depth = 0
    loop_depths = []

    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        raw_line = raw_lines[idx] if idx < len(raw_lines) else ""
        prev_raw = raw_lines[idx - 1] if idx > 0 else ""

        # R1: (void)-cast of a call expression without an annotation.
        if VOID_CAST_CALL_RE.search(code):
            annotated = IGNORE_STATUS_RE.search(raw_line) or IGNORE_STATUS_RE.search(prev_raw)
            if not annotated:
                findings.append(
                    (lineno, "R1",
                     "discarded call result via (void) cast without "
                     "'// sidq: ignore-status(<reason>)' annotation"))

        # R2: rand()/srand() banned outside the Rng implementation.
        if rel != "src/core/random.h" and RAND_RE.search(code):
            findings.append(
                (lineno, "R2",
                 "rand()/srand() banned; use sidq::Rng (src/core/random.h)"))

        # R3: using namespace in a header.
        if is_header and USING_NAMESPACE_RE.search(code):
            findings.append(
                (lineno, "R3", "'using namespace' is banned in headers"))

        # R5: naked new/delete outside index internals.
        if not NAKED_NEW_ALLOWED.search(rel):
            if NEW_RE.search(code) or DELETE_RE.search(
                    re.sub(r"=\s*delete", "", code)):
                findings.append(
                    (lineno, "R5",
                     "naked new/delete outside src/index/; use "
                     "std::make_unique or a container"))

        # R6: thread spawning outside src/exec/ without an annotation.
        if not THREAD_ALLOWED.search(rel) and THREAD_RE.search(code):
            annotated = (ALLOW_THREAD_RE.search(raw_line)
                         or ALLOW_THREAD_RE.search(prev_raw))
            if not annotated:
                findings.append(
                    (lineno, "R6",
                     "std::thread/jthread/async outside src/exec/; use "
                     "exec::ThreadPool or annotate with "
                     "'// sidq: allow-thread(<reason>)'"))

        # R7: per-point HaversineDistance inside a loop in hot-path layers.
        if haversine_scoped and HAVERSINE_RE.search(code):
            in_loop = bool(loop_depths) or LOOP_HEADER_RE.search(code)
            annotated = (ALLOW_HAVERSINE_RE.search(raw_line)
                         or ALLOW_HAVERSINE_RE.search(prev_raw))
            if in_loop and not annotated:
                findings.append(
                    (lineno, "R7",
                     "per-point HaversineDistance in a loop; project once "
                     "(geometry::LocalProjection / SoaBuffer::FromLatLon) "
                     "and use the planar kernels, or annotate with "
                     "'// sidq: allow-scalar-haversine'"))

        # R8: wall-clock sleeps/reads outside src/exec/ without annotation.
        if not WALLCLOCK_ALLOWED.search(rel) and WALLCLOCK_RE.search(code):
            annotated = (ALLOW_WALLCLOCK_RE.search(raw_line)
                         or ALLOW_WALLCLOCK_RE.search(prev_raw))
            if not annotated:
                findings.append(
                    (lineno, "R8",
                     "wall-clock sleep_for/sleep_until/system_clock::now "
                     "outside src/exec/; time goes through core/clock.h "
                     "(ExecContext::Stall, VirtualClock in tests), or "
                     "annotate with '// sidq: allow-wallclock(<reason>)'"))

        # R9: std::chrono clocks inside src/obs/ -- no annotation escape.
        if OBS_SCOPED.search(rel) and OBS_CLOCK_RE.search(code):
            findings.append(
                (lineno, "R9",
                 "std::chrono clock inside src/obs/; observability "
                 "timestamps must come from the injected Clock "
                 "(core/clock.h) so traces stay deterministic under "
                 "VirtualClock"))

        # Update loop/brace tracking AFTER checking the line, so a loop
        # header and its body both count as inside the loop.
        if LOOP_HEADER_RE.search(code):
            loop_depths.append(depth)
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while loop_depths and depth <= loop_depths[-1]:
                    loop_depths.pop()

    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: whole tree)")
    args = parser.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
    else:
        files = []
        for d in SCAN_DIRS:
            base = root / d
            if base.is_dir():
                files.extend(p for p in sorted(base.rglob("*"))
                             if p.suffix in EXTENSIONS)

    total = 0
    for f in files:
        if not f.is_file():
            print(f"sidq-lint: no such file: {f}", file=sys.stderr)
            return 2
        try:
            rel = str(f.relative_to(root))
        except ValueError:
            rel = str(f)
        for lineno, rule, msg in lint_file(f, rel):
            print(f"{rel}:{lineno}: [{rule}] {msg}", file=sys.stderr)
            total += 1

    if total:
        print(f"sidq-lint: {total} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"sidq-lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Self-test for scripts/sidq_lint.py against the fixture corpus.

Three passes over tests/lint_fixtures/fake_root/:

  1. Exactness: the engine's findings must equal the `// expect-lint:`
     markers -- every marked line flagged with exactly the marked rules,
     nothing extra anywhere (false positives fail as loudly as false
     negatives; the corpus mixes in clean patterns for that reason).
  2. --fix roundtrip: in a scratch copy, mechanical fixes must insert
     `#pragma once` (R4) and rewrite legacy suppressions (S1) such that
     the rewritten suppression actually suppresses on re-lint.
  3. Baseline: `--write-baseline` followed by a baselined run must exit
     0 with every finding marked baselined.

Registered as the tier-1 `lint_selftest` ctest.
"""

import json
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINT = ROOT / "scripts" / "sidq_lint.py"
FIXTURES = ROOT / "tests" / "lint_fixtures" / "fake_root"
MARKER_RE = re.compile(r"//\s*expect-lint:\s*([A-Z0-9, ]+)")
EXTENSIONS = {".h", ".cc", ".cpp"}


def expected_findings(fixture_root):
    expected = set()
    for path in sorted(fixture_root.rglob("*")):
        if path.suffix not in EXTENSIONS:
            continue
        rel = path.relative_to(fixture_root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, 1):
            m = MARKER_RE.search(line)
            if not m:
                continue
            for rule in m.group(1).replace(" ", "").split(","):
                if rule:
                    expected.add((rel, lineno, rule))
    return expected


def run_lint(fixture_root, extra=()):
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(fixture_root),
         "--format=json", *extra],
        capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        raise RuntimeError(
            f"lint crashed (exit {proc.returncode}):\n{proc.stderr}")
    return proc.returncode, json.loads(proc.stdout)


def main():
    failures = []

    # Pass 1: the finding set matches the markers exactly.
    rc, report = run_lint(FIXTURES)
    got = {(f["file"], f["line"], f["rule"]) for f in report["findings"]}
    expected = expected_findings(FIXTURES)
    for missing in sorted(expected - got):
        failures.append(f"expected but not reported: {missing}")
    for extra in sorted(got - expected):
        failures.append(f"reported but not expected: {extra}")
    if rc != 1:
        failures.append(f"dirty corpus must exit 1, got {rc}")
    covered = {rule for _, _, rule in expected}
    for rule in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
                 "R10", "R11", "R12", "R13", "R14", "R15", "R16",
                 "S1", "S2", "S3", "S4"):
        if rule not in covered:
            failures.append(f"fixture corpus has no case for {rule}")

    # Pass 2: --fix inserts #pragma once and migrates legacy spellings.
    with tempfile.TemporaryDirectory() as td:
        scratch = Path(td) / "fake_root"
        shutil.copytree(FIXTURES, scratch)
        subprocess.run(
            [sys.executable, str(LINT), "--root", str(scratch), "--fix"],
            capture_output=True, text=True)
        header = (scratch / "src/core/bad_header.h").read_text(
            encoding="utf-8")
        if not header.startswith("#pragma once\n"):
            failures.append("--fix did not insert #pragma once (R4)")
        suppress = (scratch / "src/core/bad_suppress.cc").read_text(
            encoding="utf-8")
        if "sidq: allow-ignored-status(old spelling)" not in suppress:
            failures.append("--fix did not migrate the legacy "
                            "suppression spelling (S1)")
        _, fixed_report = run_lint(scratch)
        fixed_rules = {f["rule"] for f in fixed_report["findings"]}
        for gone in ("R4", "S1"):
            if gone in fixed_rules:
                failures.append(f"{gone} still reported after --fix")
        legacy_line = {(f["file"], f["rule"])
                       for f in fixed_report["findings"]}
        if ("src/core/bad_suppress.cc", "R1") in legacy_line and \
                "Legacy" in suppress.split("allow-ignored-status"
                                           "(old spelling)")[0]:
            # The migrated annotation sits on the (void)Run() line, so
            # after --fix it must suppress the R1 it documents.
            lines = suppress.splitlines()
            for i, ln in enumerate(lines, 1):
                if "old spelling" in ln:
                    if any(f["file"] == "src/core/bad_suppress.cc"
                           and f["line"] == i and f["rule"] == "R1"
                           for f in fixed_report["findings"]):
                        failures.append(
                            "migrated suppression does not suppress R1")

    # Pass 3: a written baseline swallows every finding.
    with tempfile.TemporaryDirectory() as td:
        baseline = Path(td) / "baseline.json"
        subprocess.run(
            [sys.executable, str(LINT), "--root", str(FIXTURES),
             "--baseline", str(baseline), "--write-baseline"],
            capture_output=True, text=True)
        rc3, report3 = run_lint(FIXTURES, ("--baseline", str(baseline)))
        if rc3 != 0:
            failures.append(f"fully baselined run must exit 0, got {rc3}")
        if not all(f["baselined"] for f in report3["findings"]):
            failures.append("baselined run left live findings")
        if not report3["clean"]:
            failures.append("baselined run not reported clean")

    if failures:
        for f in failures:
            print(f"lint-selftest: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"lint-selftest: OK ({len(expected)} expected findings "
          "matched; --fix and baseline behave)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

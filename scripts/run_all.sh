#!/usr/bin/env bash
# Builds everything, runs the full test suite (incl. sidq-lint and the
# nodiscard compile probe), regenerates every experiment table, and runs the
# examples. Mirrors EXPERIMENTS.md's provenance.
#
# A failing binary fails the whole run, loudly and by name: a bench that
# dies halfway must never be mistaken for one that was merely skipped (the
# same silent-drop failure mode sidq exists to prevent in sensor data).
set -euo pipefail
shopt -s nullglob
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Lint engine self-test against the fixture corpus (also a ctest, but run
# explicitly so a broken linter is named here, not buried in a ctest list),
# then the repo lint with the machine-readable report CI publishes.
python3 scripts/sidq_lint_selftest.py
python3 scripts/sidq_lint.py --format=json > /dev/null

# Runs every executable in a directory; aborts naming the first failure.
run_dir() {
  local dir="$1" ran=0
  for bin in "$dir"/*; do
    [[ -f "$bin" && -x "$bin" ]] || continue  # skip CMake droppings
    echo "== running ${bin} =="
    local rc=0
    "$bin" || rc=$?
    if [[ "$rc" -ne 0 ]]; then
      echo "FAILED: ${bin} (exit ${rc})" >&2
      exit 1
    fi
    ran=$((ran + 1))
  done
  if [[ "$ran" -eq 0 ]]; then
    echo "FAILED: no executables found in ${dir}" >&2
    exit 1
  fi
}

run_dir build/bench
run_dir build/examples

# Observability determinism gate: the same seeded run exported twice, at
# different worker counts, must produce byte-identical metrics and trace
# JSON (DESIGN.md "Observability"). cmp, not a parser: the contract is
# bytes.
obs_tmp="$(mktemp -d)"
trap 'rm -rf "${obs_tmp}"' EXIT
build/examples/fleet_cleaning --threads 1 \
  --metrics-out "${obs_tmp}/m1.json" --trace-out "${obs_tmp}/t1.json" \
  > /dev/null
build/examples/fleet_cleaning --threads 8 \
  --metrics-out "${obs_tmp}/m8.json" --trace-out "${obs_tmp}/t8.json" \
  > /dev/null
cmp "${obs_tmp}/m1.json" "${obs_tmp}/m8.json" || {
  echo "FAILED: metrics export differs across worker counts" >&2; exit 1; }
cmp "${obs_tmp}/t1.json" "${obs_tmp}/t8.json" || {
  echo "FAILED: trace export differs across worker counts" >&2; exit 1; }
echo "obs determinism gate: OK"

# Stream replay determinism gate: record an event log once, replay it at 1
# and 8 workers, and require byte-identical stream-output JSON (each replay
# also self-checks against the batch reference and exits nonzero on
# divergence). Again cmp, not a parser: the contract is bytes.
build/examples/fleet_cleaning --record-log "${obs_tmp}/events.log" > /dev/null
build/examples/fleet_cleaning --replay "${obs_tmp}/events.log" --threads 1 \
  --stream-out "${obs_tmp}/stream1.json" > /dev/null
build/examples/fleet_cleaning --replay "${obs_tmp}/events.log" --threads 8 \
  --stream-out "${obs_tmp}/stream8.json" > /dev/null
cmp "${obs_tmp}/stream1.json" "${obs_tmp}/stream8.json" || {
  echo "FAILED: stream replay differs across worker counts" >&2; exit 1; }
echo "stream determinism gate: OK"

# Durable-store recovery gate: ingest the cleaned stream into the segment
# store, take a canonical scan, tear the segment tail the way a power cut
# would (partial append past the committed manifest), and require that
# recovery (a) serves a byte-identical scan -- the torn bytes were never
# committed, so nothing readable may change -- and (b) is idempotent: a
# second reopen finds a clean store and scans identically. cmp, not a
# parser: the contract is bytes.
build/examples/fleet_cleaning --replay "${obs_tmp}/events.log" --threads 4 \
  --store-dir "${obs_tmp}/store" > /dev/null
build/examples/fleet_cleaning --store-dir "${obs_tmp}/store" \
  --store-scan "${obs_tmp}/scan_clean.txt" > /dev/null
tail_seg="$(ls "${obs_tmp}/store"/*.seg | sort | tail -1)"
printf 'torn-append-garbage' >> "${tail_seg}"
build/examples/fleet_cleaning --store-dir "${obs_tmp}/store" \
  --store-scan "${obs_tmp}/scan_torn.txt" > /dev/null
cmp "${obs_tmp}/scan_clean.txt" "${obs_tmp}/scan_torn.txt" || {
  echo "FAILED: store scan after torn-tail recovery differs" >&2; exit 1; }
build/examples/fleet_cleaning --store-dir "${obs_tmp}/store" \
  --store-scan "${obs_tmp}/scan_again.txt" > /dev/null
cmp "${obs_tmp}/scan_torn.txt" "${obs_tmp}/scan_again.txt" || {
  echo "FAILED: store recovery is not idempotent" >&2; exit 1; }
echo "store recovery gate: OK"

# Compaction gate: grow a multi-segment store (repeated ingests of the same
# log compose by append), corrupt an interior block of the first rolled
# segment the way bad media would, and require that (a) compaction rewrites
# that segment smaller, (b) the readable rows before and after compaction
# are byte-identical -- maintenance reclaims space, it never touches data --
# and (c) a second pass finds nothing to do. cmp, not a parser: the
# contract is bytes.
for _ in $(seq 1 10); do
  build/examples/fleet_cleaning --replay "${obs_tmp}/events.log" --threads 4 \
    --store-dir "${obs_tmp}/cstore" > /dev/null
done
first_seg="${obs_tmp}/cstore/000000.seg"
printf 'CORRUPTION' | dd of="${first_seg}" bs=1 seek=40 conv=notrunc \
  2> /dev/null
build/examples/fleet_cleaning --store-dir "${obs_tmp}/cstore" \
  --store-scan "${obs_tmp}/cscan_pocked.txt" > /dev/null
pre_size="$(stat -c %s "${first_seg}")"
build/examples/fleet_cleaning --store-dir "${obs_tmp}/cstore" --compact \
  | grep -q "compacted 1 segment" || {
  echo "FAILED: compaction did not rewrite the pocked segment" >&2; exit 1; }
post_size="$(stat -c %s "${first_seg}")"
if [[ "${post_size}" -ge "${pre_size}" ]]; then
  echo "FAILED: compaction reclaimed no bytes" \
       "(${pre_size} -> ${post_size})" >&2
  exit 1
fi
build/examples/fleet_cleaning --store-dir "${obs_tmp}/cstore" \
  --store-scan "${obs_tmp}/cscan_compacted.txt" > /dev/null
cmp "${obs_tmp}/cscan_pocked.txt" "${obs_tmp}/cscan_compacted.txt" || {
  echo "FAILED: compaction changed the readable rows" >&2; exit 1; }
build/examples/fleet_cleaning --store-dir "${obs_tmp}/cstore" --compact \
  | grep -q "nothing to compact" || {
  echo "FAILED: compaction is not idempotent" >&2; exit 1; }
echo "store compaction gate: OK"

# Refresh the recorded parallel-execution perf artifact (also re-checks the
# serial-vs-parallel determinism gate and the <=5% instrumentation-overhead
# gate baked into the bench). The instrumented run's metrics snapshot rides
# along inside the artifact.
python3 scripts/bench_json.py --out BENCH_exec.json \
  --attach obs_metrics="${obs_tmp}/bench_metrics.json" \
  build/bench/bench_exec_fleet --metrics-out "${obs_tmp}/bench_metrics.json"

# Kernel dispatch gate: the runtime-dispatched tiers (whatever this CPU
# offers) and the forced-scalar reference tier must produce byte-identical
# per-primitive checksums. cmp, not a parser: the contract is bytes.
build/bench/bench_kernels --quick \
  --checksums-out "${obs_tmp}/ck_dispatch.txt" > /dev/null
SIDQ_FORCE_ISA=scalar build/bench/bench_kernels --quick \
  --checksums-out "${obs_tmp}/ck_scalar.txt" > /dev/null
cmp "${obs_tmp}/ck_dispatch.txt" "${obs_tmp}/ck_scalar.txt" || {
  echo "FAILED: dispatched kernel checksums differ from forced-scalar" >&2
  exit 1
}
echo "kernel dispatch gate: OK"

# Refresh the columnar-kernel perf artifact (the bench itself enforces the
# kernel-vs-scalar bit-identity gate and exits nonzero on any mismatch).
python3 scripts/bench_json.py --out BENCH_kernels.json build/bench/bench_kernels

# Refresh the streaming-ingestion perf artifact (the bench enforces the
# serial-engine == batch-reference == parallel-replay checksum gate).
python3 scripts/bench_json.py --out BENCH_stream.json build/bench/bench_stream

# Refresh the durable-store perf artifact (the bench enforces the
# store-backed scan == in-memory path checksum gate and exits nonzero on
# any mismatch or failed recovery).
python3 scripts/bench_json.py --out BENCH_store.json build/bench/bench_store

echo "run_all: OK"

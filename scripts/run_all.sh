#!/usr/bin/env bash
# Builds everything, runs the full test suite, regenerates every experiment
# table, and runs the examples. Mirrors EXPERIMENTS.md's provenance.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b"; done
for e in build/examples/*; do "$e"; done

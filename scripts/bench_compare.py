#!/usr/bin/env python3
"""bench_compare: fail when a recorded bench artifact regresses.

Compares two BENCH_*.json files (as written by scripts/bench_json.py) by
walking both documents in parallel and checking every numeric metric leaf:

  time keys     (higher is worse): seconds, scalar_s, kernel_s
  ratio keys    (lower is worse):  speedup, traj_per_s
  slowdown keys (higher is worse): obs_slowdown

A metric that moved in the bad direction by more than --tolerance
(default 0.15, i.e. >15%) is a regression. Structural drift (a metric
present on one side only, list length changes) is reported but tolerated:
benches grow new rows; they must not silently lose performance.

--ratios-only restricts the check to ratio and slowdown keys (both are
machine-independent quotients of two same-machine timings, so they stay
comparable across hosts -- the observability overhead budget is enforced
this way). Absolute times are
machine-dependent, so CI compares a fresh run against the committed
artifact with --ratios-only and a loose tolerance; nightly same-machine
runs can compare everything.

Independent of the baseline comparison, ABSOLUTE per-primitive speedup
floors are enforced on kernel-bench rows shaped
{"primitive": <name>, "speedup": <x>}: the dispatched kernel layer must
beat the scalar reference by at least SPEEDUP_FLOORS[name]. Floors always
bind on the BASELINE document -- the committed artifact is a full
same-machine run, so a below-floor artifact can never land, and the gate
cannot be ratcheted away by a slowly regressing baseline. The NEW
document is additionally floor-checked in full mode only: under
--ratios-only the fresh run is a --quick smoke (2 rounds, cold caches)
whose speedups are structurally below steady state. A small measurement
grace (--floor-grace, default 5%) absorbs same-machine timing noise.

Usage: scripts/bench_compare.py BASELINE.json NEW.json [--tolerance F]
       [--ratios-only] [--floor-grace F]

Exit codes: 0 ok; 1 regression(s); 2 usage/IO.
"""

import argparse
import json
import sys
from pathlib import Path

TIME_KEYS = {"seconds", "scalar_s", "kernel_s"}
RATIO_KEYS = {"speedup", "traj_per_s"}
# Quotients where growth is the bad direction (e.g. instrumented/plain).
SLOWDOWN_KEYS = {"obs_slowdown", "scan_slowdown_vs_ram",
                 "cached_scan_slowdown_vs_ram"}
# Run metadata that legitimately differs between two recordings.
SKIP_KEYS = {"recorded_utc"}

# Absolute speedup floors per kernel primitive (dispatched kernel vs the
# scalar reference, same machine, same run). pairwise and packed_range are
# the vectorization/batching headline wins. dtw_row is bounded by a
# loop-carried DP recurrence, so its floor is parity -- the kernel lane may
# never be SLOWER than the scalar one it replaced. frechet_row runs the
# anti-diagonal wavefront (frechet_full), which breaks that recurrence;
# its floor catches a silent fallback to the row-serial form (~1.0x).
SPEEDUP_FLOORS = {
    "pairwise": 3.5,
    "packed_range": 2.5,
    "dtw_row": 1.0,
    "frechet_row": 1.3,
}


def walk(base, new, path, metrics, drift):
    if isinstance(base, dict) and isinstance(new, dict):
        for key in sorted(set(base) | set(new)):
            if key in SKIP_KEYS:
                continue
            sub = f"{path}.{key}" if path else key
            if key not in base or key not in new:
                drift.append(f"{sub}: only in "
                             f"{'new' if key in new else 'baseline'}")
                continue
            walk(base[key], new[key], sub, metrics, drift)
    elif isinstance(base, list) and isinstance(new, list):
        if len(base) != len(new):
            drift.append(f"{path}: length {len(base)} -> {len(new)}")
        for i, (b, n) in enumerate(zip(base, new)):
            walk(b, n, f"{path}[{i}]", metrics, drift)
    else:
        key = path.rsplit(".", 1)[-1].split("[")[0]
        if (key in TIME_KEYS or key in RATIO_KEYS or
                key in SLOWDOWN_KEYS) and \
                isinstance(base, (int, float)) and \
                isinstance(new, (int, float)):
            metrics.append((path, key, float(base), float(new)))


def floor_violations(doc, grace, out, path=""):
    """Collects kernel-bench primitive rows below their absolute speedup
    floor. Walks the whole document so the floors hold wherever the rows
    are nested (top-level artifact or an --attach'ed sub-document)."""
    if isinstance(doc, dict):
        name = doc.get("primitive")
        speedup = doc.get("speedup")
        if name in SPEEDUP_FLOORS and isinstance(speedup, (int, float)):
            floor = SPEEDUP_FLOORS[name]
            if float(speedup) < floor * (1.0 - grace):
                out.append(
                    f"{path or name}: primitive '{name}' speedup "
                    f"{float(speedup):g} below floor {floor:g} "
                    f"(grace {grace * 100.0:.0f}%)")
        for key, val in sorted(doc.items()):
            floor_violations(val, grace, out,
                             f"{path}.{key}" if path else key)
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            floor_violations(item, grace, out, f"{path}[{i}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="recorded baseline BENCH_*.json")
    parser.add_argument("new", help="fresh BENCH_*.json to check")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slip (default 0.15)")
    parser.add_argument("--ratios-only", action="store_true",
                        help="compare only ratio/slowdown metrics "
                        "(speedup, traj_per_s, obs_slowdown); use when "
                        "machines differ")
    parser.add_argument("--floor-grace", type=float, default=0.05,
                        help="fractional grace below the absolute "
                        "per-primitive speedup floors (default 0.05)")
    args = parser.parse_args()

    docs = []
    for name in (args.baseline, args.new):
        p = Path(name)
        if not p.is_file():
            print(f"bench_compare: no such file: {p}", file=sys.stderr)
            return 2
        try:
            docs.append(json.loads(p.read_text(encoding="utf-8")))
        except json.JSONDecodeError as err:
            print(f"bench_compare: invalid JSON in {p}: {err}",
                  file=sys.stderr)
            return 2

    metrics, drift = [], []
    walk(docs[0], docs[1], "", metrics, drift)
    for note in drift:
        print(f"bench_compare: note: {note}")

    regressions = []
    checked = 0
    for path, key, base, new in metrics:
        if args.ratios_only and key not in RATIO_KEYS | SLOWDOWN_KEYS:
            continue
        checked += 1
        if key in TIME_KEYS or key in SLOWDOWN_KEYS:
            bad = new > base * (1.0 + args.tolerance)
            change = (new - base) / base if base else 0.0
        else:
            bad = new < base * (1.0 - args.tolerance)
            change = (base - new) / base if base else 0.0
        if bad:
            regressions.append(
                f"{path}: {base:g} -> {new:g} "
                f"({change * 100.0:+.1f}% worse, tolerance "
                f"{args.tolerance * 100.0:.0f}%)")

    floors = []
    floor_violations(docs[0], args.floor_grace, floors, "baseline")
    if not args.ratios_only:
        floor_violations(docs[1], args.floor_grace, floors, "new")

    if regressions or floors:
        for line in regressions:
            print(f"bench_compare: REGRESSION {line}", file=sys.stderr)
        for line in floors:
            print(f"bench_compare: FLOOR {line}", file=sys.stderr)
        print(f"bench_compare: {len(regressions)} regression(s), "
              f"{len(floors)} floor violation(s) across "
              f"{checked} metric(s)", file=sys.stderr)
        return 1
    if checked == 0:
        print("bench_compare: no comparable metrics found", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({checked} metric(s) within "
          f"{args.tolerance * 100.0:.0f}%; speedup floors hold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

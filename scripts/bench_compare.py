#!/usr/bin/env python3
"""bench_compare: fail when a recorded bench artifact regresses.

Compares two BENCH_*.json files (as written by scripts/bench_json.py) by
walking both documents in parallel and checking every numeric metric leaf:

  time keys     (higher is worse): seconds, scalar_s, kernel_s
  ratio keys    (lower is worse):  speedup, traj_per_s
  slowdown keys (higher is worse): obs_slowdown

A metric that moved in the bad direction by more than --tolerance
(default 0.15, i.e. >15%) is a regression. Structural drift (a metric
present on one side only, list length changes) is reported but tolerated:
benches grow new rows; they must not silently lose performance.

--ratios-only restricts the check to ratio and slowdown keys (both are
machine-independent quotients of two same-machine timings, so they stay
comparable across hosts -- the observability overhead budget is enforced
this way). Absolute times are
machine-dependent, so CI compares a fresh run against the committed
artifact with --ratios-only and a loose tolerance; nightly same-machine
runs can compare everything.

Usage: scripts/bench_compare.py BASELINE.json NEW.json [--tolerance F]
       [--ratios-only]

Exit codes: 0 ok; 1 regression(s); 2 usage/IO.
"""

import argparse
import json
import sys
from pathlib import Path

TIME_KEYS = {"seconds", "scalar_s", "kernel_s"}
RATIO_KEYS = {"speedup", "traj_per_s"}
# Quotients where growth is the bad direction (e.g. instrumented/plain).
SLOWDOWN_KEYS = {"obs_slowdown"}
# Run metadata that legitimately differs between two recordings.
SKIP_KEYS = {"recorded_utc"}


def walk(base, new, path, metrics, drift):
    if isinstance(base, dict) and isinstance(new, dict):
        for key in sorted(set(base) | set(new)):
            if key in SKIP_KEYS:
                continue
            sub = f"{path}.{key}" if path else key
            if key not in base or key not in new:
                drift.append(f"{sub}: only in "
                             f"{'new' if key in new else 'baseline'}")
                continue
            walk(base[key], new[key], sub, metrics, drift)
    elif isinstance(base, list) and isinstance(new, list):
        if len(base) != len(new):
            drift.append(f"{path}: length {len(base)} -> {len(new)}")
        for i, (b, n) in enumerate(zip(base, new)):
            walk(b, n, f"{path}[{i}]", metrics, drift)
    else:
        key = path.rsplit(".", 1)[-1].split("[")[0]
        if (key in TIME_KEYS or key in RATIO_KEYS or
                key in SLOWDOWN_KEYS) and \
                isinstance(base, (int, float)) and \
                isinstance(new, (int, float)):
            metrics.append((path, key, float(base), float(new)))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="recorded baseline BENCH_*.json")
    parser.add_argument("new", help="fresh BENCH_*.json to check")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slip (default 0.15)")
    parser.add_argument("--ratios-only", action="store_true",
                        help="compare only ratio/slowdown metrics "
                        "(speedup, traj_per_s, obs_slowdown); use when "
                        "machines differ")
    args = parser.parse_args()

    docs = []
    for name in (args.baseline, args.new):
        p = Path(name)
        if not p.is_file():
            print(f"bench_compare: no such file: {p}", file=sys.stderr)
            return 2
        try:
            docs.append(json.loads(p.read_text(encoding="utf-8")))
        except json.JSONDecodeError as err:
            print(f"bench_compare: invalid JSON in {p}: {err}",
                  file=sys.stderr)
            return 2

    metrics, drift = [], []
    walk(docs[0], docs[1], "", metrics, drift)
    for note in drift:
        print(f"bench_compare: note: {note}")

    regressions = []
    checked = 0
    for path, key, base, new in metrics:
        if args.ratios_only and key not in RATIO_KEYS | SLOWDOWN_KEYS:
            continue
        checked += 1
        if key in TIME_KEYS or key in SLOWDOWN_KEYS:
            bad = new > base * (1.0 + args.tolerance)
            change = (new - base) / base if base else 0.0
        else:
            bad = new < base * (1.0 - args.tolerance)
            change = (base - new) / base if base else 0.0
        if bad:
            regressions.append(
                f"{path}: {base:g} -> {new:g} "
                f"({change * 100.0:+.1f}% worse, tolerance "
                f"{args.tolerance * 100.0:.0f}%)")

    if regressions:
        for line in regressions:
            print(f"bench_compare: REGRESSION {line}", file=sys.stderr)
        print(f"bench_compare: {len(regressions)} regression(s) across "
              f"{checked} metric(s)", file=sys.stderr)
        return 1
    if checked == 0:
        print("bench_compare: no comparable metrics found", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({checked} metric(s) within "
          f"{args.tolerance * 100.0:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

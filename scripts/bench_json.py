#!/usr/bin/env python3
"""bench_json: run a bench binary and record its BENCH_JSON line(s) to disk.

Bench binaries print human-readable markdown tables plus one machine-
readable line per experiment:

    BENCH_JSON: {"bench": "exec_fleet", ...}

This wrapper runs the binary (forwarding extra args), echoes its stdout so
provenance stays visible, validates every BENCH_JSON payload as JSON, and
writes them -- pretty-printed, wrapped with run metadata -- to --out. One
payload is written as an object, several as a list.

--attach NAME=FILE (repeatable) embeds another JSON file into the output
doc under "attachments" -- e.g. the metrics snapshot the bench exported via
--metrics-out, so one artifact carries both the timings and the
observability ledger of the same run. Attachments are parsed before
embedding: a missing or non-JSON file fails the run.

Usage: scripts/bench_json.py --out BENCH_exec.json build/bench/bench_exec_fleet [args...]

Exit codes: 0 ok; 1 bench failed or emitted no/invalid BENCH_JSON; 2 usage.
"""

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

PREFIX = "BENCH_JSON:"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", required=True, help="output JSON file")
    parser.add_argument("--attach", action="append", default=[],
                        metavar="NAME=FILE",
                        help="embed FILE (validated as JSON) under "
                             "attachments.NAME in the output doc")
    parser.add_argument("binary", help="bench binary to run")
    # REMAINDER, not "*": forwarded args may be flags (e.g. --quick), which
    # "*" would reject as unrecognized options of this wrapper.
    parser.add_argument("args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to it")
    opts = parser.parse_args()

    binary = Path(opts.binary)
    if not binary.is_file():
        print(f"bench_json: no such binary: {binary}", file=sys.stderr)
        return 2

    proc = subprocess.run([str(binary), *opts.args], capture_output=True,
                          text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"bench_json: {binary} exited {proc.returncode}",
              file=sys.stderr)
        return 1

    payloads = []
    for line in proc.stdout.splitlines():
        if not line.startswith(PREFIX):
            continue
        try:
            payloads.append(json.loads(line[len(PREFIX):].strip()))
        except json.JSONDecodeError as err:
            print(f"bench_json: invalid BENCH_JSON payload: {err}",
                  file=sys.stderr)
            return 1
    if not payloads:
        print(f"bench_json: {binary} printed no '{PREFIX}' line",
              file=sys.stderr)
        return 1

    # Attachments are read after the bench ran, so files the bench itself
    # writes (--metrics-out) can be attached.
    attachments = {}
    for spec in opts.attach:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"bench_json: --attach wants NAME=FILE, got: {spec}",
                  file=sys.stderr)
            return 2
        try:
            attachments[name] = json.loads(Path(path).read_text(
                encoding="utf-8"))
        except OSError as err:
            print(f"bench_json: cannot read attachment {path}: {err}",
                  file=sys.stderr)
            return 1
        except json.JSONDecodeError as err:
            print(f"bench_json: attachment {path} is not valid JSON: {err}",
                  file=sys.stderr)
            return 1

    doc = {
        "binary": binary.name,
        "recorded_utc": datetime.now(timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "results": payloads[0] if len(payloads) == 1 else payloads,
    }
    if attachments:
        doc["attachments"] = attachments
    out = Path(opts.out)
    out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"bench_json: wrote {out} ({len(payloads)} payload(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
